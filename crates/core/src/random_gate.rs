//! The Random Gate abstraction (paper §2.2.2–§2.2.3).
//!
//! A Random Gate (RG) is to gates what a random variable is to numbers:
//! its instances are cells drawn from the library with the probabilities
//! of the usage histogram. Its statistics (Eqs. 7–8) and cross-site
//! covariance kernel (Eqs. 9–11) are everything the chip-level estimators
//! need:
//!
//! ```text
//! μ_XI   = Σ αᵢ μᵢ
//! E[XI²] = Σ αᵢ (σᵢ² + μᵢ²)
//! C_XI(l₁,l₂) = F(ρ_L(l₁,l₂))   (l₁ ≠ l₂),  σ²_XI  (l₁ = l₂)
//! F(ρ)  = Σ_m Σ_n α_m α_n σ_m σ_n f_{m,n}(ρ)
//! ```
//!
//! The exact kernel `F` is tabulated once over a `ρ_L` grid (each knot is
//! a double sum of bivariate MGFs over cell/state pairs) and interpolated;
//! under the simplified assumption `f_{m,n}(ρ) = ρ` (§3.1.2) it collapses
//! to the closed form `F(ρ) = ρ·(Σ αᵢσ̄ᵢ)²`, where `σ̄ᵢ` is the
//! state-probability-weighted within-state standard deviation (the
//! between-state variance never correlates across sites).

use crate::error::CoreError;
use leakage_cells::corrmap::{cross_moment, CorrelationPolicy};
use leakage_cells::model::{CharacterizedLibrary, LeakageTriplet};
use leakage_cells::state::state_probabilities;
use leakage_cells::UsageHistogram;
use leakage_numeric::interp::LinearInterp;

/// The leakage statistics and covariance kernel of a Random Gate.
///
/// # Example
///
/// ```no_run
/// # use leakage_cells::charax::{CharMethod, Characterizer};
/// # use leakage_cells::library::CellLibrary;
/// # use leakage_cells::corrmap::CorrelationPolicy;
/// # use leakage_cells::UsageHistogram;
/// # use leakage_core::RandomGate;
/// # use leakage_process::Technology;
/// let tech = Technology::cmos90();
/// let lib = CellLibrary::standard_62();
/// let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
/// let hist = UsageHistogram::uniform(62)?;
/// let rg = RandomGate::new(&charlib, &hist, 0.5, CorrelationPolicy::Exact)?;
/// assert!(rg.mean() > 0.0);
/// assert!(rg.covariance(0.5) <= rg.variance());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct RandomGate {
    mean: f64,
    variance: f64,
    policy: CorrelationPolicy,
    /// Σ αᵢσᵢ — closed-form kernel scale for the simplified policy.
    sigma_bar: f64,
    /// Tabulated `F(ρ)` for the exact policy.
    kernel: Option<LinearInterp>,
    l_sigma: f64,
}

/// Number of `ρ_L` knots in the tabulated exact kernel.
const KERNEL_KNOTS: usize = 41;

impl RandomGate {
    /// Builds the RG for a characterized library, usage histogram, global
    /// signal probability, and correlation policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the histogram length does
    /// not match the library, and propagates cell-model failures (e.g.
    /// missing triplets under [`CorrelationPolicy::Exact`]).
    pub fn new(
        charlib: &CharacterizedLibrary,
        histogram: &UsageHistogram,
        signal_probability: f64,
        policy: CorrelationPolicy,
    ) -> Result<RandomGate, CoreError> {
        Self::with_state_probabilities(charlib, histogram, policy, |cell| {
            Ok(state_probabilities(cell.n_inputs, signal_probability)?)
        })
    }

    /// Builds the RG with caller-supplied per-cell input-state
    /// probabilities (e.g. from per-pin signal probabilities or logic
    /// simulation), instead of a single global signal probability.
    ///
    /// `state_probs` receives each cell in the histogram's support and
    /// must return a distribution over its `2^n_inputs` states.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] on a histogram/library
    /// mismatch or a malformed returned distribution, and propagates
    /// cell-model failures.
    pub fn with_state_probabilities<F>(
        charlib: &CharacterizedLibrary,
        histogram: &UsageHistogram,
        policy: CorrelationPolicy,
        state_probs: F,
    ) -> Result<RandomGate, CoreError>
    where
        F: Fn(&leakage_cells::model::CharacterizedCell) -> Result<Vec<f64>, CoreError>,
    {
        if histogram.len() != charlib.len() {
            return Err(CoreError::InvalidArgument {
                reason: format!(
                    "histogram covers {} cells, library has {}",
                    histogram.len(),
                    charlib.len()
                ),
            });
        }
        // Flatten (cell, state) pairs with joint weights α_i·π_s.
        let mut weights: Vec<f64> = Vec::new();
        let mut triplets: Vec<Option<LeakageTriplet>> = Vec::new();
        let mut mean = 0.0;
        let mut second = 0.0;
        let mut sigma_bar = 0.0;
        for (cell, alpha) in charlib.cells.iter().zip(histogram.probs()) {
            if *alpha == 0.0 {
                continue;
            }
            let probs = state_probs(cell)?;
            if probs.len() != cell.states.len() {
                return Err(CoreError::InvalidArgument {
                    reason: format!(
                        "{}: {} state probabilities for {} states",
                        cell.name,
                        probs.len(),
                        cell.states.len()
                    ),
                });
            }
            let (mu_i, sd_i) = cell.mixture_stats(&probs)?;
            mean += alpha * mu_i;
            second += alpha * (sd_i * sd_i + mu_i * mu_i);
            // Simplified-kernel scale: state-weighted *within-state* std —
            // between-state variance never correlates across sites.
            sigma_bar += alpha
                * cell
                    .states
                    .iter()
                    .zip(&probs)
                    .map(|(s, p)| p * s.std)
                    .sum::<f64>();
            for (sm, pi) in cell.states.iter().zip(&probs) {
                if *pi == 0.0 {
                    continue;
                }
                weights.push(alpha * pi);
                triplets.push(sm.triplet);
            }
        }
        if weights.is_empty() {
            return Err(CoreError::InvalidArgument {
                reason: "histogram has empty support".into(),
            });
        }
        let variance = (second - mean * mean).max(0.0);

        let kernel = match policy {
            CorrelationPolicy::Simplified => None,
            CorrelationPolicy::Exact => {
                let concrete: Vec<LeakageTriplet> = triplets
                    .iter()
                    .map(|t| {
                        t.ok_or_else(|| CoreError::InvalidArgument {
                            reason: "exact correlation policy requires fitted triplets for every \
                                 state in the histogram support; use the simplified policy \
                                 with monte-carlo characterization"
                                .into(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                Some(Self::tabulate_kernel(
                    &weights,
                    &concrete,
                    charlib.l_sigma,
                    mean,
                )?)
            }
        };

        Ok(RandomGate {
            mean,
            variance,
            policy,
            sigma_bar,
            kernel,
            l_sigma: charlib.l_sigma,
        })
    }

    fn tabulate_kernel(
        weights: &[f64],
        triplets: &[LeakageTriplet],
        l_sigma: f64,
        mean: f64,
    ) -> Result<LinearInterp, CoreError> {
        let mut knots = Vec::with_capacity(KERNEL_KNOTS);
        let mut values = Vec::with_capacity(KERNEL_KNOTS);
        for k in 0..KERNEL_KNOTS {
            let rho = k as f64 / (KERNEL_KNOTS - 1) as f64;
            // E[X(l₁)X(l₂)] at length correlation ρ — symmetric double sum.
            let mut cross = 0.0;
            for j in 0..weights.len() {
                // diagonal term
                cross += weights[j]
                    * weights[j]
                    * cross_moment(&triplets[j], &triplets[j], l_sigma, rho)?;
                for i in (j + 1)..weights.len() {
                    cross += 2.0
                        * weights[j]
                        * weights[i]
                        * cross_moment(&triplets[j], &triplets[i], l_sigma, rho)?;
                }
            }
            knots.push(rho);
            values.push(cross - mean * mean);
        }
        Ok(LinearInterp::new(knots, values)?)
    }

    /// Mean leakage `μ_XI` of the RG (A).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Variance `σ²_XI` (the same-site covariance, Eq. 11).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Standard deviation `σ_XI`.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }

    /// The correlation policy the kernel was built with.
    pub fn policy(&self) -> CorrelationPolicy {
        self.policy
    }

    /// Channel-length sigma (nm) of the underlying characterization.
    pub fn l_sigma(&self) -> f64 {
        self.l_sigma
    }

    /// Cross-site covariance `F(ρ_L)` for two *distinct* sites whose
    /// channel-length correlation is `ρ_L` (Eq. 10). The same-site value
    /// is [`RandomGate::variance`], not `F(1)` — the gate identities at
    /// two sites differ even at full length correlation.
    pub fn covariance(&self, rho_l: f64) -> f64 {
        let rho = rho_l.clamp(0.0, 1.0);
        match &self.kernel {
            Some(k) => k.eval(rho),
            None => rho * self.sigma_bar * self.sigma_bar,
        }
    }

    /// Normalized cross-site correlation `ρ_XI(ρ_L) = F(ρ_L)/σ²_XI`
    /// (used in Eqs. 15–20).
    pub fn rho_xi(&self, rho_l: f64) -> f64 {
        if self.variance == 0.0 {
            0.0
        } else {
            self.covariance(rho_l) / self.variance
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{CharacterizedCell, StateModel};

    const SIGMA: f64 = 4.5;

    fn toy_charlib() -> CharacterizedLibrary {
        // Two single-state "cells" with realistic triplet magnitudes.
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet, name: &str| CharacterizedCell {
            id: CellId(id),
            name: name.into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        CharacterizedLibrary {
            cells: vec![mk(0, t1, "a"), mk(1, t2, "b")],
            l_sigma: SIGMA,
        }
    }

    #[test]
    fn rg_moments_match_hand_formula() {
        let lib = toy_charlib();
        let hist = UsageHistogram::from_weights(vec![1.0, 3.0]).unwrap();
        let rg = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Simplified).unwrap();
        let (m1, s1) = (lib.cells[0].states[0].mean, lib.cells[0].states[0].std);
        let (m2, s2) = (lib.cells[1].states[0].mean, lib.cells[1].states[0].std);
        let mean = 0.25 * m1 + 0.75 * m2;
        let second = 0.25 * (s1 * s1 + m1 * m1) + 0.75 * (s2 * s2 + m2 * m2);
        assert!((rg.mean() - mean).abs() / mean < 1e-12);
        assert!((rg.variance() - (second - mean * mean)).abs() / rg.variance() < 1e-12);
    }

    #[test]
    fn simplified_kernel_is_linear_in_rho() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let rg = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Simplified).unwrap();
        let c_half = rg.covariance(0.5);
        let c_full = rg.covariance(1.0);
        assert!((c_full - 2.0 * c_half).abs() / c_full < 1e-12);
        assert_eq!(rg.covariance(0.0), 0.0);
    }

    #[test]
    fn exact_kernel_properties() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let rg = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).unwrap();
        // F(0) = 0 (independent lengths, independent gate draws).
        assert!(rg.covariance(0.0).abs() / rg.variance() < 1e-9);
        // F is increasing and bounded by the variance.
        let mut prev = -1.0;
        for k in 0..=10 {
            let c = rg.covariance(k as f64 / 10.0);
            assert!(c >= prev);
            assert!(c <= rg.variance() * (1.0 + 1e-12));
            prev = c;
        }
        // F(1) < σ²: same length, different gate identities.
        assert!(rg.covariance(1.0) < rg.variance());
    }

    #[test]
    fn exact_close_to_simplified() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let exact = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).unwrap();
        let simple = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Simplified).unwrap();
        for k in 1..10 {
            let rho = k as f64 / 10.0;
            let rel = (exact.covariance(rho) - simple.covariance(rho)).abs() / exact.variance();
            assert!(rel < 0.1, "rho {rho}: rel {rel}");
        }
    }

    #[test]
    fn rejects_histogram_mismatch() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(3).unwrap();
        assert!(RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Simplified).is_err());
    }

    #[test]
    fn exact_requires_triplets() {
        let mut lib = toy_charlib();
        lib.cells[0].states[0].triplet = None;
        let hist = UsageHistogram::uniform(2).unwrap();
        assert!(RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).is_err());
        assert!(RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Simplified).is_ok());
    }

    #[test]
    fn zero_weight_cells_do_not_need_triplets() {
        let mut lib = toy_charlib();
        lib.cells[1].states[0].triplet = None;
        let hist = UsageHistogram::from_weights(vec![1.0, 0.0]).unwrap();
        assert!(RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).is_ok());
    }

    #[test]
    fn rho_xi_is_normalized() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let rg = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).unwrap();
        for k in 0..=10 {
            let rho = k as f64 / 10.0;
            let r = rg.rho_xi(rho);
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn custom_state_probabilities_match_global_p() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let via_p = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).unwrap();
        let via_fn =
            RandomGate::with_state_probabilities(&lib, &hist, CorrelationPolicy::Exact, |cell| {
                Ok(leakage_cells::state::state_probabilities(cell.n_inputs, 0.5).unwrap())
            })
            .unwrap();
        assert_eq!(via_p.mean(), via_fn.mean());
        assert_eq!(via_p.variance(), via_fn.variance());
    }

    #[test]
    fn custom_state_probabilities_validated() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let bad = RandomGate::with_state_probabilities(
            &lib,
            &hist,
            CorrelationPolicy::Exact,
            |_cell| Ok(vec![0.5, 0.5]), // wrong length for 0-input cells
        );
        assert!(bad.is_err());
    }

    #[test]
    fn covariance_clamps_out_of_range_rho() {
        let lib = toy_charlib();
        let hist = UsageHistogram::uniform(2).unwrap();
        let rg = RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Simplified).unwrap();
        assert_eq!(rg.covariance(-0.5), 0.0);
        assert_eq!(rg.covariance(1.5), rg.covariance(1.0));
    }
}
