//! Error type for full-chip estimation.

use std::fmt;

/// Errors from Random-Gate construction or chip-level estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An input characteristic or argument was malformed.
    InvalidArgument {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The requested estimator's preconditions do not hold (e.g. the 1-D
    /// polar method with a correlation that never reaches zero within the
    /// die).
    MethodNotApplicable {
        /// Which estimator was requested.
        method: &'static str,
        /// Why it cannot be used.
        reason: String,
    },
    /// Every rung of the resilient fallback ladder was rejected: no
    /// estimator produced a valid result for this configuration.
    EstimationExhausted {
        /// Number of ladder stages attempted.
        attempts: usize,
        /// Rendered per-stage rejection reasons.
        summary: String,
    },
    /// A cell-model operation failed.
    Cells(leakage_cells::CellError),
    /// A process-model operation failed.
    Process(leakage_process::ProcessError),
    /// A numerical routine failed.
    Numeric(leakage_numeric::NumericError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            CoreError::MethodNotApplicable { method, reason } => {
                write!(f, "{method} not applicable: {reason}")
            }
            CoreError::EstimationExhausted { attempts, summary } => {
                write!(
                    f,
                    "all {attempts} fallback-ladder stages rejected: {summary}"
                )
            }
            CoreError::Cells(e) => write!(f, "cell model failure: {e}"),
            CoreError::Process(e) => write!(f, "process model failure: {e}"),
            CoreError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Cells(e) => Some(e),
            CoreError::Process(e) => Some(e),
            CoreError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_cells::CellError> for CoreError {
    fn from(e: leakage_cells::CellError) -> CoreError {
        CoreError::Cells(e)
    }
}

impl From<leakage_process::ProcessError> for CoreError {
    fn from(e: leakage_process::ProcessError) -> CoreError {
        CoreError::Process(e)
    }
}

impl From<leakage_numeric::NumericError> for CoreError {
    fn from(e: leakage_numeric::NumericError) -> CoreError {
        CoreError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = CoreError::MethodNotApplicable {
            method: "polar 1-d",
            reason: "correlation support exceeds die".into(),
        };
        assert!(e.to_string().contains("polar"));
        assert!(e.source().is_none());
        let e: CoreError = leakage_numeric::NumericError::Singular { pivot: 0 }.into();
        assert!(e.source().is_some());
    }
}
