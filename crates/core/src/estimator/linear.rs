//! The O(n) distance-multiplicity estimator (paper Eq. 17).
//!
//! The O(n²) lattice sum `Σ_a Σ_b C(d_ab)` collapses, on a `k × m`
//! rectangular grid, to a sum over index offsets `(i, j)` weighted by the
//! number of site pairs realizing each offset, `n_ij = (m−|i|)(k−|j|)`
//! (Eq. 16). The transformation is exact — no approximation is involved.

use crate::random_gate::RandomGate;
use leakage_numeric::stats::KahanSum;
use leakage_numeric::Instruments;
use leakage_process::field::GridGeometry;

/// Computes the full-chip leakage variance by the exact O(n) multiplicity
/// sum (Eq. 17). `rho_total` maps distance to *total* (D2D + WID) channel
/// length correlation.
///
/// The `(0, 0)` offset contributes `n · σ²_XI` (same-site covariance is
/// the RG variance, Eq. 11); every other offset contributes
/// `n_ij · F(ρ_total(d_ij))`.
pub fn linear_time_variance<R: Fn(f64) -> f64>(
    rg: &RandomGate,
    grid: &GridGeometry,
    rho_total: &R,
) -> f64 {
    linear_time_variance_instrumented(rg, grid, rho_total, Instruments::none())
}

/// [`linear_time_variance`] reporting to an injected [`Instruments`]: a
/// span over the multiplicity sum plus site / offset counters and the
/// resulting variance as a value observation.
pub fn linear_time_variance_instrumented<R: Fn(f64) -> f64>(
    rg: &RandomGate,
    grid: &GridGeometry,
    rho_total: &R,
    ins: Instruments<'_>,
) -> f64 {
    let span = ins.span("core.linear_time_variance");
    let m = grid.cols();
    let k = grid.rows();
    let n = grid.n_sites() as f64;
    // Same-site term.
    let mut var = KahanSum::new();
    var.add(n * rg.variance());
    // Distinct-site offsets: use symmetry (±i, ±j give the same distance);
    // multiplicity 2 per non-zero axis sign.
    for i in 0..m {
        for j in 0..k {
            if i == 0 && j == 0 {
                continue;
            }
            let mult = (m - i) as f64
                * (k - j) as f64
                * if i > 0 { 2.0 } else { 1.0 }
                * if j > 0 { 2.0 } else { 1.0 };
            let d = grid.offset_distance(i as i64, j as i64);
            var.add(mult * rg.covariance(rho_total(d)));
        }
    }
    ins.add("core.linear.sites", (m * k) as u64);
    ins.add("core.linear.offsets", (m * k) as u64 - 1);
    ins.record("core.linear.variance", var.sum());
    drop(span);
    var.sum()
}

/// Brute-force O(n²) lattice sum of the same quantity, for validating the
/// multiplicity transformation (tests and small grids only).
pub fn quadratic_lattice_variance<R: Fn(f64) -> f64>(
    rg: &RandomGate,
    grid: &GridGeometry,
    rho_total: &R,
) -> f64 {
    quadratic_lattice_variance_instrumented(rg, grid, rho_total, Instruments::none())
}

/// [`quadratic_lattice_variance`] reporting to an injected
/// [`Instruments`]: a span plus a term counter ((km)² covariance terms).
pub fn quadratic_lattice_variance_instrumented<R: Fn(f64) -> f64>(
    rg: &RandomGate,
    grid: &GridGeometry,
    rho_total: &R,
    ins: Instruments<'_>,
) -> f64 {
    let span = ins.span("core.quadratic_lattice_variance");
    let m = grid.cols();
    let k = grid.rows();
    let mut var = KahanSum::new();
    for a in 0..(k * m) {
        let (ra, ca) = (a / m, a % m);
        for b in 0..(k * m) {
            let (rb, cb) = (b / m, b % m);
            if a == b {
                var.add(rg.variance());
            } else {
                let d = grid.site_distance((ra, ca), (rb, cb));
                var.add(rg.covariance(rho_total(d)));
            }
        }
    }
    ins.add("core.quadratic.terms", ((k * m) * (k * m)) as u64);
    ins.record("core.quadratic.variance", var.sum());
    drop(span);
    var.sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::corrmap::CorrelationPolicy;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };
    use leakage_cells::UsageHistogram;

    const SIGMA: f64 = 4.5;

    fn rg(policy: CorrelationPolicy) -> RandomGate {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let lib = CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        };
        let hist = UsageHistogram::uniform(2).unwrap();
        RandomGate::new(&lib, &hist, 0.5, policy).unwrap()
    }

    fn tent(dmax: f64) -> impl Fn(f64) -> f64 {
        move |d: f64| (1.0 - d / dmax).max(0.0)
    }

    #[test]
    fn linear_equals_quadratic_exactly() {
        // Eq. 17 is an exact transformation of Eq. 15 — verify to
        // near machine precision on asymmetric grids.
        let rg = rg(CorrelationPolicy::Exact);
        for (rows, cols) in [(1, 1), (1, 7), (4, 4), (3, 9), (8, 5)] {
            let grid = GridGeometry::new(rows, cols, 3.0, 5.0).unwrap();
            let corr = tent(12.0);
            let lin = linear_time_variance(&rg, &grid, &corr);
            let quad = quadratic_lattice_variance(&rg, &grid, &corr);
            assert!(
                (lin - quad).abs() / quad < 1e-12,
                "{rows}x{cols}: {lin} vs {quad}"
            );
        }
    }

    #[test]
    fn uncorrelated_limit_is_n_sigma_squared() {
        let rg = rg(CorrelationPolicy::Simplified);
        let grid = GridGeometry::new(10, 10, 100.0, 100.0).unwrap();
        // correlation dies within one pitch
        let corr = tent(1.0);
        let var = linear_time_variance(&rg, &grid, &corr);
        let expect = 100.0 * rg.variance();
        assert!((var - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn fully_correlated_limit_simplified() {
        // With ρ ≡ 1 everywhere and the simplified kernel, the variance is
        // n σ² + n(n−1) σ̄² where σ̄ = Σασ. Check against direct formula.
        let rg = rg(CorrelationPolicy::Simplified);
        let grid = GridGeometry::new(5, 5, 1.0, 1.0).unwrap();
        let corr = |_d: f64| 1.0;
        let var = linear_time_variance(&rg, &grid, &corr);
        let n = 25.0;
        let cross = rg.covariance(1.0);
        let expect = n * rg.variance() + n * (n - 1.0) * cross;
        assert!((var - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn variance_grows_faster_than_n_under_correlation() {
        // Correlated variance scales between n and n²: doubling the die
        // (with correlation length comparable to die size) more than
        // doubles the variance.
        let rg = rg(CorrelationPolicy::Exact);
        let corr = tent(50.0);
        let g1 = GridGeometry::new(10, 10, 2.0, 2.0).unwrap();
        let g2 = GridGeometry::new(20, 20, 2.0, 2.0).unwrap();
        let v1 = linear_time_variance(&rg, &g1, &corr);
        let v2 = linear_time_variance(&rg, &g2, &corr);
        let n_ratio = (g2.n_sites() as f64) / (g1.n_sites() as f64);
        assert!(v2 / v1 > 1.5 * n_ratio, "super-linear growth: {}", v2 / v1);
        assert!(
            v2 / v1 < n_ratio * n_ratio,
            "sub-quadratic growth: {}",
            v2 / v1
        );
    }

    #[test]
    fn monotone_in_correlation_range() {
        let rg = rg(CorrelationPolicy::Exact);
        let grid = GridGeometry::new(8, 8, 5.0, 5.0).unwrap();
        let mut prev = 0.0;
        for dmax in [1.0, 10.0, 40.0, 200.0] {
            let var = linear_time_variance(&rg, &grid, &tent(dmax));
            assert!(var > prev, "longer correlation → larger variance");
            prev = var;
        }
    }
}
