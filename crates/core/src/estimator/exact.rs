//! The O(n²) pairwise reference on a placed design ("true leakage", §3).

use crate::estimator::{EstimatorMethod, LeakageEstimate};
use crate::pairwise::PairwiseCovariance;
use leakage_numeric::parallel::Parallelism;
use leakage_numeric::stats::KahanSum;
use leakage_numeric::Instruments;
use serde::{Deserialize, Serialize};

/// One placed cell instance: type and placement coordinates (µm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedGate {
    /// Library type of the instance.
    pub cell: leakage_cells::CellId,
    /// X coordinate of the instance centre (µm).
    pub x: f64,
    /// Y coordinate of the instance centre (µm).
    pub y: f64,
}

/// Mean total leakage of a placed design: `Σ μ_type(a)` (compensated sum).
pub fn exact_placed_mean(gates: &[PlacedGate], pairwise: &PairwiseCovariance) -> f64 {
    let mut acc = KahanSum::new();
    for g in gates {
        acc.add(pairwise.mean(g.cell));
    }
    acc.sum()
}

/// The paper's "true leakage": mean and variance of a *specific placed
/// design* by the full O(n²) pairwise covariance sum,
/// `σ² = Σ_a σ²_a + Σ_{a≠b} C_{ab}(ρ_L(d_ab))`.
///
/// `rho_total` maps instance distance to total length correlation. This is
/// the reference every Random-Gate estimate is validated against (Fig. 6,
/// Table 1); its cost is why the paper exists.
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats<R: Fn(f64) -> f64 + Sync>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
) -> LeakageEstimate {
    exact_placed_stats_with(gates, pairwise, rho_total, Parallelism::auto())
}

/// Target pair count per work chunk. Fixed (never derived from the thread
/// count) so the chunk decomposition — and therefore the bit pattern of the
/// result — is identical for serial and parallel runs.
const PAIRS_PER_CHUNK: u128 = 1 << 15;

/// Splits the lower-triangle row range `0..n` into `n_chunks` contiguous
/// spans of roughly equal pair count (row `a` owns `n - a` terms: its
/// diagonal term plus the pairs `(a, b)` for `b > a`). Returns the
/// `n_chunks + 1` row boundaries.
fn triangle_row_bounds(n: usize, n_chunks: usize) -> Vec<usize> {
    let total: u128 = n as u128 * (n as u128 + 1) / 2;
    let mut bounds = vec![0usize; n_chunks + 1];
    let mut cum: u128 = 0;
    let mut next = 1usize;
    for a in 0..n {
        cum += (n - a) as u128;
        while next < n_chunks && cum * n_chunks as u128 >= next as u128 * total {
            bounds[next] = a + 1;
            next += 1;
        }
    }
    bounds[n_chunks] = n;
    bounds
}

/// [`exact_placed_stats`] with an explicit thread budget.
///
/// The lower triangle is split into fixed, pair-balanced row chunks; each
/// chunk accumulates its variance contribution into a compensated
/// (Kahan–Neumaier) partial sum, and the partials are merged strictly in
/// chunk order. The decomposition depends only on `gates.len()`, so the
/// result is **bit-identical** for every thread budget, including
/// [`Parallelism::serial`].
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats_with<R: Fn(f64) -> f64 + Sync>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
    par: Parallelism,
) -> LeakageEstimate {
    exact_placed_stats_instrumented(gates, pairwise, rho_total, par, Instruments::none())
}

/// [`exact_placed_stats_with`] reporting to an injected
/// [`Instruments`]: a span over the whole O(n²) sum plus gate / pair /
/// chunk counters and the resulting moments as value observations. All
/// metrics are recorded from the calling thread after the chunk-ordered
/// reduction, so they are bit-identical for every thread budget.
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats_instrumented<R: Fn(f64) -> f64 + Sync>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
    par: Parallelism,
    ins: Instruments<'_>,
) -> LeakageEstimate {
    let span = ins.span("core.exact_placed_stats");
    let mean = exact_placed_mean(gates, pairwise);
    let n = gates.len();
    let total_work: u128 = n as u128 * (n as u128 + 1) / 2;
    let n_chunks = (total_work / PAIRS_PER_CHUNK + 1).min(n.max(1) as u128) as usize;
    let bounds = triangle_row_bounds(n, n_chunks);
    let partials = par.map_chunks(n_chunks, |c| {
        let mut acc = KahanSum::new();
        for a in bounds[c]..bounds[c + 1] {
            let ga = &gates[a];
            let sa = pairwise.std(ga.cell);
            acc.add(sa * sa);
            for gb in &gates[a + 1..] {
                let dx = ga.x - gb.x;
                let dy = ga.y - gb.y;
                let d = (dx * dx + dy * dy).sqrt();
                acc.add(2.0 * pairwise.covariance(ga.cell, gb.cell, rho_total(d)));
            }
        }
        acc
    });
    let mut variance = KahanSum::new();
    for p in &partials {
        variance.merge(p);
    }
    ins.add("core.exact.gates", n as u64);
    ins.add(
        "core.exact.pairs",
        (total_work).min(u64::MAX as u128) as u64,
    );
    ins.add("core.exact.chunks", n_chunks as u64);
    ins.record("core.exact.mean", mean);
    ins.record("core.exact.variance", variance.sum());
    drop(span);
    LeakageEstimate {
        mean,
        variance: variance.sum(),
        method: EstimatorMethod::ExactPlaced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::corrmap::CorrelationPolicy;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        }
    }

    fn pairwise(policy: CorrelationPolicy) -> PairwiseCovariance {
        PairwiseCovariance::new(&charlib(), &[CellId(0), CellId(1)], 0.5, policy).unwrap()
    }

    #[test]
    fn single_gate_variance_is_type_variance() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = [PlacedGate {
            cell: CellId(0),
            x: 0.0,
            y: 0.0,
        }];
        let est = exact_placed_stats(&gates, &pw, &|_d| 0.5);
        let s = pw.std(CellId(0));
        assert!((est.variance - s * s).abs() / (s * s) < 1e-12);
        assert_eq!(est.mean, pw.mean(CellId(0)));
        assert_eq!(est.method, EstimatorMethod::ExactPlaced);
    }

    #[test]
    fn independent_gates_add_variances() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates: Vec<PlacedGate> = (0..10)
            .map(|i| PlacedGate {
                cell: CellId(i % 2),
                x: i as f64 * 1000.0,
                y: 0.0,
            })
            .collect();
        let est = exact_placed_stats(&gates, &pw, &|_d| 0.0);
        let expect: f64 = gates.iter().map(|g| pw.std(g.cell).powi(2)).sum();
        assert!((est.variance - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn fully_correlated_same_type_gates_sum_as_stds() {
        // n identical fully correlated gates: σ_total = n·σ.
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates: Vec<PlacedGate> = (0..5)
            .map(|_| PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            })
            .collect();
        let est = exact_placed_stats(&gates, &pw, &|_d| 1.0);
        let s = pw.std(CellId(0));
        let expect = (5.0 * s) * (5.0 * s);
        assert!(
            (est.variance - expect).abs() / expect < 2e-3,
            "{} vs {expect}",
            est.variance
        );
    }

    #[test]
    fn triangle_row_bounds_partition_and_balance() {
        for (n, chunks) in [(1usize, 1usize), (10, 3), (1000, 17), (1000, 1)] {
            let b = triangle_row_bounds(n, chunks);
            assert_eq!(b.len(), chunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[chunks], n);
            for w in b.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
        // Pair-balanced: first chunk of a large triangle takes far fewer
        // rows than an even row split would give it.
        let b = triangle_row_bounds(1000, 10);
        assert!(b[1] < 100, "first chunk rows = {}", b[1]);
    }

    fn grid(n: usize) -> Vec<PlacedGate> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| PlacedGate {
                cell: CellId(i % 2),
                x: (i % side) as f64 * 3.0,
                y: (i / side) as f64 * 3.0,
            })
            .collect()
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = grid(700);
        let tent = |d: f64| (1.0 - d / 40.0).max(0.0);
        let serial = exact_placed_stats_with(&gates, &pw, &tent, Parallelism::serial());
        for threads in [2, 4, 8] {
            let par = exact_placed_stats_with(&gates, &pw, &tent, Parallelism::threads(threads));
            assert_eq!(
                serial.mean.to_bits(),
                par.mean.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                serial.variance.to_bits(),
                par.variance.to_bits(),
                "threads = {threads}"
            );
        }
    }

    /// Two-float (double-double) accumulator used as the high-precision
    /// summation reference; ~32 significant digits for these magnitudes.
    #[derive(Clone, Copy, Default)]
    struct DoubleDouble {
        hi: f64,
        lo: f64,
    }

    impl DoubleDouble {
        fn add(&mut self, x: f64) {
            // TwoSum(hi, x), then fold the error into lo and renormalize.
            let s = self.hi + x;
            let bb = s - self.hi;
            let err = (self.hi - (s - bb)) + (x - bb);
            let lo = self.lo + err;
            let hi = s + lo;
            self.lo = lo - (hi - s);
            self.hi = hi;
        }

        fn sum(self) -> f64 {
            self.hi + self.lo
        }
    }

    #[test]
    fn compensated_variance_matches_high_precision_reference_10k() {
        // Satellite regression: on a 10k-gate design the chunked Kahan
        // reduction must agree with an independent double-double sum of the
        // same terms to near machine precision — the naive running sum this
        // replaced drifts orders of magnitude further.
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = grid(10_000);
        let tent = |d: f64| (1.0 - d / 60.0).max(0.0);
        let est = exact_placed_stats(&gates, &pw, &tent);

        let mut reference = DoubleDouble::default();
        for (a, ga) in gates.iter().enumerate() {
            let sa = pw.std(ga.cell);
            reference.add(sa * sa);
            for gb in &gates[a + 1..] {
                let dx = ga.x - gb.x;
                let dy = ga.y - gb.y;
                let d = (dx * dx + dy * dy).sqrt();
                reference.add(2.0 * pw.covariance(ga.cell, gb.cell, tent(d)));
            }
        }
        let rel = (est.variance - reference.sum()).abs() / reference.sum().abs();
        assert!(rel < 1e-13, "relative error {rel:e}");
    }

    #[test]
    fn distance_dependence_reduces_covariance() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let near = [
            PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            },
            PlacedGate {
                cell: CellId(1),
                x: 1.0,
                y: 0.0,
            },
        ];
        let far = [
            PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            },
            PlacedGate {
                cell: CellId(1),
                x: 90.0,
                y: 0.0,
            },
        ];
        let tent = |d: f64| (1.0 - d / 100.0).max(0.0);
        let v_near = exact_placed_stats(&near, &pw, &tent).variance;
        let v_far = exact_placed_stats(&far, &pw, &tent).variance;
        assert!(v_near > v_far);
    }
}
