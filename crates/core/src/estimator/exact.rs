//! The O(n²) pairwise reference on a placed design ("true leakage", §3).

use crate::estimator::{EstimatorMethod, LeakageEstimate};
use crate::pairwise::PairwiseCovariance;
use serde::{Deserialize, Serialize};

/// One placed cell instance: type and placement coordinates (µm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedGate {
    /// Library type of the instance.
    pub cell: leakage_cells::CellId,
    /// X coordinate of the instance centre (µm).
    pub x: f64,
    /// Y coordinate of the instance centre (µm).
    pub y: f64,
}

/// Mean total leakage of a placed design: `Σ μ_type(a)`.
pub fn exact_placed_mean(gates: &[PlacedGate], pairwise: &PairwiseCovariance) -> f64 {
    gates.iter().map(|g| pairwise.mean(g.cell)).sum()
}

/// The paper's "true leakage": mean and variance of a *specific placed
/// design* by the full O(n²) pairwise covariance sum,
/// `σ² = Σ_a σ²_a + Σ_{a≠b} C_{ab}(ρ_L(d_ab))`.
///
/// `rho_total` maps instance distance to total length correlation. This is
/// the reference every Random-Gate estimate is validated against (Fig. 6,
/// Table 1); its cost is why the paper exists.
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats<R: Fn(f64) -> f64>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
) -> LeakageEstimate {
    let mean = exact_placed_mean(gates, pairwise);
    let mut variance = 0.0;
    for (a, ga) in gates.iter().enumerate() {
        let sa = pairwise.std(ga.cell);
        variance += sa * sa;
        for gb in &gates[a + 1..] {
            let dx = ga.x - gb.x;
            let dy = ga.y - gb.y;
            let d = (dx * dx + dy * dy).sqrt();
            variance += 2.0 * pairwise.covariance(ga.cell, gb.cell, rho_total(d));
        }
    }
    LeakageEstimate {
        mean,
        variance,
        method: EstimatorMethod::ExactPlaced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::corrmap::CorrelationPolicy;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        }
    }

    fn pairwise(policy: CorrelationPolicy) -> PairwiseCovariance {
        PairwiseCovariance::new(&charlib(), &[CellId(0), CellId(1)], 0.5, policy).unwrap()
    }

    #[test]
    fn single_gate_variance_is_type_variance() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = [PlacedGate {
            cell: CellId(0),
            x: 0.0,
            y: 0.0,
        }];
        let est = exact_placed_stats(&gates, &pw, &|_d| 0.5);
        let s = pw.std(CellId(0));
        assert!((est.variance - s * s).abs() / (s * s) < 1e-12);
        assert_eq!(est.mean, pw.mean(CellId(0)));
        assert_eq!(est.method, EstimatorMethod::ExactPlaced);
    }

    #[test]
    fn independent_gates_add_variances() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates: Vec<PlacedGate> = (0..10)
            .map(|i| PlacedGate {
                cell: CellId(i % 2),
                x: i as f64 * 1000.0,
                y: 0.0,
            })
            .collect();
        let est = exact_placed_stats(&gates, &pw, &|_d| 0.0);
        let expect: f64 = gates.iter().map(|g| pw.std(g.cell).powi(2)).sum();
        assert!((est.variance - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn fully_correlated_same_type_gates_sum_as_stds() {
        // n identical fully correlated gates: σ_total = n·σ.
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates: Vec<PlacedGate> = (0..5)
            .map(|_| PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            })
            .collect();
        let est = exact_placed_stats(&gates, &pw, &|_d| 1.0);
        let s = pw.std(CellId(0));
        let expect = (5.0 * s) * (5.0 * s);
        assert!(
            (est.variance - expect).abs() / expect < 2e-3,
            "{} vs {expect}",
            est.variance
        );
    }

    #[test]
    fn distance_dependence_reduces_covariance() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let near = [
            PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            },
            PlacedGate {
                cell: CellId(1),
                x: 1.0,
                y: 0.0,
            },
        ];
        let far = [
            PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            },
            PlacedGate {
                cell: CellId(1),
                x: 90.0,
                y: 0.0,
            },
        ];
        let tent = |d: f64| (1.0 - d / 100.0).max(0.0);
        let v_near = exact_placed_stats(&near, &pw, &tent).variance;
        let v_far = exact_placed_stats(&far, &pw, &tent).variance;
        assert!(v_near > v_far);
    }
}
