//! The O(n²) pairwise reference on a placed design ("true leakage", §3).

use crate::estimator::{EstimatorMethod, LeakageEstimate};
use crate::pairwise::{PairwiseCovariance, PAIR_KNOTS};
use leakage_cells::library::CellId;
use leakage_numeric::interp::UnitDyadicTables;
use leakage_numeric::parallel::Parallelism;
use leakage_numeric::stats::KahanSum;
use leakage_numeric::Instruments;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One placed cell instance: type and placement coordinates (µm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedGate {
    /// Library type of the instance.
    pub cell: leakage_cells::CellId,
    /// X coordinate of the instance centre (µm).
    pub x: f64,
    /// Y coordinate of the instance centre (µm).
    pub y: f64,
}

/// Mean total leakage of a placed design: `Σ μ_type(a)` (compensated sum).
pub fn exact_placed_mean(gates: &[PlacedGate], pairwise: &PairwiseCovariance) -> f64 {
    let mut acc = KahanSum::new();
    for g in gates {
        acc.add(pairwise.mean(g.cell));
    }
    acc.sum()
}

/// The paper's "true leakage": mean and variance of a *specific placed
/// design* by the full O(n²) pairwise covariance sum,
/// `σ² = Σ_a σ²_a + Σ_{a≠b} C_{ab}(ρ_L(d_ab))`.
///
/// `rho_total` maps instance distance to total length correlation. This is
/// the reference every Random-Gate estimate is validated against (Fig. 6,
/// Table 1); its cost is why the paper exists.
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats<R: Fn(f64) -> f64 + Sync>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
) -> LeakageEstimate {
    exact_placed_stats_with(gates, pairwise, rho_total, Parallelism::auto())
}

/// Target pair count per work chunk. Fixed (never derived from the thread
/// count) so the chunk decomposition — and therefore the bit pattern of the
/// result — is identical for serial and parallel runs.
const PAIRS_PER_CHUNK: u128 = 1 << 15;

/// Splits the lower-triangle row range `0..n` into `n_chunks` contiguous
/// spans of roughly equal pair count (row `a` owns `n - a` terms: its
/// diagonal term plus the pairs `(a, b)` for `b > a`). Returns the
/// `n_chunks + 1` row boundaries.
fn triangle_row_bounds(n: usize, n_chunks: usize) -> Vec<usize> {
    let total: u128 = n as u128 * (n as u128 + 1) / 2;
    let mut bounds = vec![0usize; n_chunks + 1];
    let mut cum: u128 = 0;
    let mut next = 1usize;
    for a in 0..n {
        cum += (n - a) as u128;
        while next < n_chunks && cum * n_chunks as u128 >= next as u128 * total {
            bounds[next] = a + 1;
            next += 1;
        }
    }
    bounds[n_chunks] = n;
    bounds
}

/// [`exact_placed_stats`] with an explicit thread budget.
///
/// The lower triangle is split into fixed, pair-balanced row chunks. Each
/// *row* `a` owns one compensated (Kahan–Neumaier) accumulator fed its
/// diagonal term first and then the pair terms in ascending-`b` order; the
/// per-row accumulators are merged strictly in ascending row order. The
/// reduction therefore depends only on `gates.len()` — not on the chunk
/// decomposition or thread budget — so the result is **bit-identical** for
/// every thread budget, including [`Parallelism::serial`], and for the
/// tiled kernel ([`exact_placed_stats_tiled_with`]) at any tile size.
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats_with<R: Fn(f64) -> f64 + Sync>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
    par: Parallelism,
) -> LeakageEstimate {
    exact_placed_stats_instrumented(gates, pairwise, rho_total, par, Instruments::none())
}

/// [`exact_placed_stats_with`] reporting to an injected
/// [`Instruments`]: a span over the whole O(n²) sum plus gate / pair /
/// chunk counters and the resulting moments as value observations. All
/// metrics are recorded from the calling thread after the chunk-ordered
/// reduction, so they are bit-identical for every thread budget.
///
/// # Panics
///
/// Panics if a gate's type is outside the pairwise table's support.
pub fn exact_placed_stats_instrumented<R: Fn(f64) -> f64 + Sync>(
    gates: &[PlacedGate],
    pairwise: &PairwiseCovariance,
    rho_total: &R,
    par: Parallelism,
    ins: Instruments<'_>,
) -> LeakageEstimate {
    let span = ins.span("core.exact_placed_stats");
    let mean = exact_placed_mean(gates, pairwise);
    let n = gates.len();
    let total_work: u128 = n as u128 * (n as u128 + 1) / 2;
    let n_chunks = (total_work / PAIRS_PER_CHUNK + 1).min(n.max(1) as u128) as usize;
    let bounds = triangle_row_bounds(n, n_chunks);
    let partials = par.map_chunks(n_chunks, |c| {
        let mut rows = Vec::with_capacity(bounds[c + 1] - bounds[c]);
        for a in bounds[c]..bounds[c + 1] {
            let ga = &gates[a];
            let sa = pairwise.std(ga.cell);
            let mut acc = KahanSum::new();
            acc.add(sa * sa);
            for gb in &gates[a + 1..] {
                let dx = ga.x - gb.x;
                let dy = ga.y - gb.y;
                let d = (dx * dx + dy * dy).sqrt();
                acc.add(2.0 * pairwise.covariance(ga.cell, gb.cell, rho_total(d)));
            }
            rows.push(acc);
        }
        rows
    });
    let mut variance = KahanSum::new();
    for rows in &partials {
        for row in rows {
            variance.merge(row);
        }
    }
    ins.add("core.exact.gates", n as u64);
    ins.add(
        "core.exact.pairs",
        (total_work).min(u64::MAX as u128) as u64,
    );
    ins.add("core.exact.chunks", n_chunks as u64);
    ins.record("core.exact.mean", mean);
    ins.record("core.exact.variance", variance.sum());
    drop(span);
    LeakageEstimate {
        mean,
        variance: variance.sum(),
        method: EstimatorMethod::ExactPlaced,
    }
}

/// Struct-of-arrays view of a placement: contiguous coordinate arrays plus
/// dense per-gate type indices into an ascending type support.
///
/// The array-of-structs [`PlacedGate`] layout interleaves `cell`, `x`, `y`,
/// so the O(n²) inner loop strides 24-byte records and re-resolves
/// `BTreeMap` moment lookups per pair. This view is built **once** per
/// placement and hands the tiled kernel ([`exact_placed_stats_tiled_with`])
/// unit-stride `f64` streams and `O(1)` dense moment indexing.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Per-gate index into `support` (dense, `< support.len()`).
    type_idx: Vec<u32>,
    /// Distinct cell types, ascending by id.
    support: Vec<CellId>,
}

impl PlacementSoA {
    /// Builds the columnar view. Coordinates are copied bit-for-bit; the
    /// support is the ascending set of distinct types.
    pub fn from_gates(gates: &[PlacedGate]) -> PlacementSoA {
        let mut index: BTreeMap<CellId, u32> = BTreeMap::new();
        for g in gates {
            index.entry(g.cell).or_insert(0);
        }
        let support: Vec<CellId> = index.keys().copied().collect();
        for (i, slot) in index.values_mut().enumerate() {
            *slot = i as u32;
        }
        let mut xs = Vec::with_capacity(gates.len());
        let mut ys = Vec::with_capacity(gates.len());
        let mut type_idx = Vec::with_capacity(gates.len());
        for g in gates {
            xs.push(g.x);
            ys.push(g.y);
            type_idx.push(index[&g.cell]);
        }
        PlacementSoA {
            xs,
            ys,
            type_idx,
            support,
        }
    }

    /// Number of placed gates.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when no gates are placed.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Distinct cell types, ascending by id.
    pub fn support(&self) -> &[CellId] {
        &self.support
    }

    /// Reconstructs gate `i` (bit-identical to the input gate).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn gate(&self, i: usize) -> PlacedGate {
        PlacedGate {
            cell: self.support[self.type_idx[i] as usize],
            x: self.xs[i],
            y: self.ys[i],
        }
    }

    /// Reconstructs the full gate list in original order (bit-identical).
    pub fn to_gates(&self) -> Vec<PlacedGate> {
        (0..self.len()).map(|i| self.gate(i)).collect()
    }
}

/// Default row/column block edge for the tiled kernel.
///
/// A 128-gate column block is ~3 KiB of coordinate + type data — it stays
/// resident in L1 while all 128 rows of the tile sweep it, and the row
/// block's per-type table slices stay hot in turn. Measurements between 64
/// and 512 are within a few percent; the result is bit-identical for
/// *every* tile size, so this is purely a throughput knob.
pub const DEFAULT_TILE_ROWS: usize = 128;

/// Tile-shape configuration for [`exact_placed_stats_tiled_instrumented`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tiling {
    /// Rows (and columns) per square tile; clamped to ≥ 1.
    pub rows: usize,
    /// Distance at and beyond which the caller **promises** `rho_total` is
    /// constant — i.e. the correlation model has compact support (the
    /// paper's tent model reaches exactly zero at `D_max`; see
    /// `SpatialCorrelation::support_radius`). Far pairs then skip the
    /// sqrt + ρ evaluation + table interpolation for one precomputed
    /// per-type-pair covariance load. The result stays **bit-identical**
    /// to the naive kernel because the skipped evaluation would produce
    /// exactly that constant value; the distance comparison runs on
    /// squared distances with a cutoff rounded up so borderline pairs
    /// always take the evaluated path. `None` disables the fast path.
    pub far_cutoff: Option<f64>,
}

impl Default for Tiling {
    fn default() -> Tiling {
        Tiling {
            rows: DEFAULT_TILE_ROWS,
            far_cutoff: None,
        }
    }
}

/// Dense per-type moments plus the flat `ρ_L`-binned covariance table bank
/// gathered once per tiled-kernel invocation.
struct DenseMoments {
    n_types: usize,
    means: Vec<f64>,
    vars: Vec<f64>,
    tables: UnitDyadicTables,
}

impl DenseMoments {
    /// # Panics
    ///
    /// Panics if a type in the support is outside `pairwise`'s support.
    fn build(soa: &PlacementSoA, pairwise: &PairwiseCovariance) -> DenseMoments {
        let t = soa.support().len();
        let mut means = Vec::with_capacity(t);
        let mut vars = Vec::with_capacity(t);
        for id in soa.support() {
            means.push(pairwise.mean(*id));
            let s = pairwise.std(*id);
            vars.push(s * s);
        }
        let mut tables =
            // chipleak-lint: allow(no-unwrap-in-library): PAIR_KNOTS = 33 = 2^5 + 1 is a compile-time constant satisfying the dyadic precondition
            UnitDyadicTables::new(t * t, PAIR_KNOTS).expect("PAIR_KNOTS is 2^k + 1");
        for i in 0..t {
            for j in i..t {
                let ys = pairwise.table_values(soa.support()[i], soa.support()[j]);
                tables.set_table(i * t + j, ys);
                if i != j {
                    tables.set_table(j * t + i, ys);
                }
            }
        }
        DenseMoments {
            n_types: t,
            means,
            vars,
            tables,
        }
    }
}

/// Precomputed far-pair covariances for a [`Tiling::far_cutoff`]: one
/// table value per (row type, column type) at the constant far-field ρ,
/// plus the squared-distance threshold that soundly implies `d ≥ cutoff`.
struct FarTable {
    /// Smallest `d²` for which `d².sqrt() ≥ cutoff` is guaranteed; pairs
    /// below it fall through to the evaluated path.
    c2: f64,
    /// `tables.eval(i·t + j, ρ_far)` for every type pair — the exact value
    /// the evaluated path would produce for any far pair.
    values: Vec<f64>,
}

impl FarTable {
    fn build<R: Fn(f64) -> f64>(
        cutoff: f64,
        moments: &DenseMoments,
        rho_total: &R,
    ) -> Option<FarTable> {
        if !cutoff.is_finite() || cutoff <= 0.0 {
            return None;
        }
        // `cutoff²` rounds to nearest, so `sqrt` of it may land one ulp
        // below the cutoff; nudge up until the implication `d² ≥ c2 ⇒
        // d ≥ cutoff` holds (sqrt is monotone and correctly rounded).
        let mut c2 = cutoff * cutoff;
        while c2.sqrt() < cutoff {
            c2 = f64::from_bits(c2.to_bits() + 1);
        }
        let rho_far = rho_total(cutoff).clamp(0.0, 1.0);
        let t = moments.n_types;
        let values = (0..t * t)
            .map(|idx| moments.tables.eval(idx, rho_far))
            .collect();
        Some(FarTable { c2, values })
    }
}

/// One row's pair terms against a column block, accumulated in ascending
/// `b` order (the shared naive/tiled summation discipline). The zipped
/// slice walk keeps the hot loop free of bounds checks; with a far table
/// present, pairs at or beyond the cutoff take the precomputed covariance
/// instead of evaluating ρ.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn row_pair_terms<R: Fn(f64) -> f64>(
    acc: &mut KahanSum,
    xa: f64,
    ya: f64,
    trow: usize,
    xs: &[f64],
    ys: &[f64],
    type_idx: &[u32],
    moments: &DenseMoments,
    far: Option<&FarTable>,
    rho_total: &R,
) {
    match far {
        Some(f) => {
            for ((&xb, &yb), &tj) in xs.iter().zip(ys).zip(type_idx) {
                let dx = xa - xb;
                let dy = ya - yb;
                let d2 = dx * dx + dy * dy;
                let v = if d2 >= f.c2 {
                    f.values[trow + tj as usize]
                } else {
                    let rho = rho_total(d2.sqrt()).clamp(0.0, 1.0);
                    moments.tables.eval(trow + tj as usize, rho)
                };
                acc.add(2.0 * v);
            }
        }
        None => {
            for ((&xb, &yb), &tj) in xs.iter().zip(ys).zip(type_idx) {
                let dx = xa - xb;
                let dy = ya - yb;
                let d = (dx * dx + dy * dy).sqrt();
                let rho = rho_total(d).clamp(0.0, 1.0);
                acc.add(2.0 * moments.tables.eval(trow + tj as usize, rho));
            }
        }
    }
}

/// Splits the row-tile range `0..n_tiles` into `n_chunks` contiguous spans
/// of roughly equal pair count (row `a` owns `n - a` terms). Returns the
/// `n_chunks + 1` tile boundaries.
fn triangle_tile_bounds(n: usize, tile: usize, n_chunks: usize) -> Vec<usize> {
    let n_tiles = n.div_ceil(tile);
    let total: u128 = n as u128 * (n as u128 + 1) / 2;
    let mut bounds = vec![0usize; n_chunks + 1];
    let mut cum: u128 = 0;
    let mut next = 1usize;
    for t in 0..n_tiles {
        let lo = t * tile;
        let hi = ((t + 1) * tile).min(n);
        // Rows lo..hi own (n - lo) + … + (n - hi + 1) terms.
        let rows = (hi - lo) as u128;
        cum += rows * (n - lo) as u128 - rows * (rows - 1) / 2;
        while next < n_chunks && cum * n_chunks as u128 >= next as u128 * total {
            bounds[next] = t + 1;
            next += 1;
        }
    }
    bounds[n_chunks] = n_tiles;
    bounds
}

/// [`exact_placed_stats`] on the columnar view: the cache-blocked tiled
/// kernel. Bit-identical to the naive pairwise sum.
///
/// # Panics
///
/// Panics if a type in the placement is outside the pairwise support.
pub fn exact_placed_stats_tiled<R: Fn(f64) -> f64 + Sync>(
    soa: &PlacementSoA,
    pairwise: &PairwiseCovariance,
    rho_total: &R,
) -> LeakageEstimate {
    exact_placed_stats_tiled_with(soa, pairwise, rho_total, Parallelism::auto())
}

/// [`exact_placed_stats_tiled`] with an explicit thread budget.
///
/// # Panics
///
/// Panics if a type in the placement is outside the pairwise support.
pub fn exact_placed_stats_tiled_with<R: Fn(f64) -> f64 + Sync>(
    soa: &PlacementSoA,
    pairwise: &PairwiseCovariance,
    rho_total: &R,
    par: Parallelism,
) -> LeakageEstimate {
    exact_placed_stats_tiled_instrumented(
        soa,
        pairwise,
        rho_total,
        par,
        Tiling::default(),
        Instruments::none(),
    )
}

/// The cache-blocked O(n²) pairwise kernel on a [`PlacementSoA`].
///
/// The lower triangle is processed as square tiles of `tiling.rows` gates:
/// for each row tile, first its diagonal block, then the off-diagonal
/// column blocks in ascending order, so each column block's coordinates and
/// type indices stay cache-resident while every row of the tile sweeps it.
/// Per-type moments and the `ρ_L` covariance tables are gathered up front
/// into dense arrays and a flat [`UnitDyadicTables`] bank, replacing the
/// per-pair `BTreeMap` lookup + binary search of the naive kernel.
///
/// Every *row* keeps its own compensated accumulator (diagonal term first,
/// then ascending-`b` pair terms) and rows are merged in ascending order,
/// exactly like [`exact_placed_stats_with`] — so the result is
/// **bit-identical** to the naive kernel for every tile size and thread
/// budget. Work is distributed over row tiles through
/// [`Parallelism::map_chunks`] in fixed pair-balanced tile chunks.
///
/// Metrics: a span over the sum, gate / pair / chunk / tile counters and
/// the tile edge, plus the resulting moments — all recorded on the calling
/// thread after the ordered reduction.
///
/// # Panics
///
/// Panics if a type in the placement is outside the pairwise support.
pub fn exact_placed_stats_tiled_instrumented<R: Fn(f64) -> f64 + Sync>(
    soa: &PlacementSoA,
    pairwise: &PairwiseCovariance,
    rho_total: &R,
    par: Parallelism,
    tiling: Tiling,
    ins: Instruments<'_>,
) -> LeakageEstimate {
    let span = ins.span("core.exact_placed_stats_tiled");
    let n = soa.len();
    let moments = DenseMoments::build(soa, pairwise);
    let mut mean_acc = KahanSum::new();
    for &ti in &soa.type_idx {
        mean_acc.add(moments.means[ti as usize]);
    }
    let mean = mean_acc.sum();

    let tile = tiling.rows.max(1);
    let n_tiles = n.div_ceil(tile);
    let total_work: u128 = n as u128 * (n as u128 + 1) / 2;
    let n_chunks = (total_work / PAIRS_PER_CHUNK + 1).min(n_tiles.max(1) as u128) as usize;
    let bounds = triangle_tile_bounds(n, tile, n_chunks);
    let far = tiling
        .far_cutoff
        .and_then(|cutoff| FarTable::build(cutoff, &moments, rho_total));
    let xs = &soa.xs;
    let ys = &soa.ys;
    let type_idx = &soa.type_idx;
    let partials = par.map_chunks(n_chunks, |c| {
        let mut rows_out: Vec<KahanSum> = Vec::new();
        for t in bounds[c]..bounds[c + 1] {
            let lo = t * tile;
            let hi = ((t + 1) * tile).min(n);
            let base = rows_out.len();
            rows_out.resize(base + (hi - lo), KahanSum::new());
            let rows = &mut rows_out[base..];
            // Diagonal block: variance term, then in-tile pairs.
            for a in lo..hi {
                let ti = type_idx[a] as usize;
                let acc = &mut rows[a - lo];
                acc.add(moments.vars[ti]);
                row_pair_terms(
                    acc,
                    xs[a],
                    ys[a],
                    ti * moments.n_types,
                    &xs[a + 1..hi],
                    &ys[a + 1..hi],
                    &type_idx[a + 1..hi],
                    &moments,
                    far.as_ref(),
                    rho_total,
                );
            }
            // Off-diagonal blocks, ascending: the column block stays
            // cache-hot while every row of this tile sweeps it.
            for tb in t + 1..n_tiles {
                let blo = tb * tile;
                let bhi = ((tb + 1) * tile).min(n);
                let (xsb, ysb, tib) = (&xs[blo..bhi], &ys[blo..bhi], &type_idx[blo..bhi]);
                for a in lo..hi {
                    let ti = type_idx[a] as usize;
                    let acc = &mut rows[a - lo];
                    row_pair_terms(
                        acc,
                        xs[a],
                        ys[a],
                        ti * moments.n_types,
                        xsb,
                        ysb,
                        tib,
                        &moments,
                        far.as_ref(),
                        rho_total,
                    );
                }
            }
        }
        rows_out
    });
    let mut variance = KahanSum::new();
    for rows in &partials {
        for row in rows {
            variance.merge(row);
        }
    }
    ins.add("core.exact.gates", n as u64);
    ins.add(
        "core.exact.pairs",
        (total_work).min(u64::MAX as u128) as u64,
    );
    ins.add("core.exact.chunks", n_chunks as u64);
    ins.add(
        "core.exact.tiles",
        (n_tiles as u64) * (n_tiles as u64 + 1) / 2,
    );
    ins.add("core.exact.tile_rows", tile as u64);
    ins.record("core.exact.mean", mean);
    ins.record("core.exact.variance", variance.sum());
    drop(span);
    LeakageEstimate {
        mean,
        variance: variance.sum(),
        method: EstimatorMethod::ExactPlaced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_cells::corrmap::CorrelationPolicy;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        }
    }

    fn pairwise(policy: CorrelationPolicy) -> PairwiseCovariance {
        PairwiseCovariance::new(&charlib(), &[CellId(0), CellId(1)], 0.5, policy).unwrap()
    }

    #[test]
    fn single_gate_variance_is_type_variance() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = [PlacedGate {
            cell: CellId(0),
            x: 0.0,
            y: 0.0,
        }];
        let est = exact_placed_stats(&gates, &pw, &|_d| 0.5);
        let s = pw.std(CellId(0));
        assert!((est.variance - s * s).abs() / (s * s) < 1e-12);
        assert_eq!(est.mean, pw.mean(CellId(0)));
        assert_eq!(est.method, EstimatorMethod::ExactPlaced);
    }

    #[test]
    fn independent_gates_add_variances() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates: Vec<PlacedGate> = (0..10)
            .map(|i| PlacedGate {
                cell: CellId(i % 2),
                x: i as f64 * 1000.0,
                y: 0.0,
            })
            .collect();
        let est = exact_placed_stats(&gates, &pw, &|_d| 0.0);
        let expect: f64 = gates.iter().map(|g| pw.std(g.cell).powi(2)).sum();
        assert!((est.variance - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn fully_correlated_same_type_gates_sum_as_stds() {
        // n identical fully correlated gates: σ_total = n·σ.
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates: Vec<PlacedGate> = (0..5)
            .map(|_| PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            })
            .collect();
        let est = exact_placed_stats(&gates, &pw, &|_d| 1.0);
        let s = pw.std(CellId(0));
        let expect = (5.0 * s) * (5.0 * s);
        assert!(
            (est.variance - expect).abs() / expect < 2e-3,
            "{} vs {expect}",
            est.variance
        );
    }

    #[test]
    fn triangle_row_bounds_partition_and_balance() {
        for (n, chunks) in [(1usize, 1usize), (10, 3), (1000, 17), (1000, 1)] {
            let b = triangle_row_bounds(n, chunks);
            assert_eq!(b.len(), chunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[chunks], n);
            for w in b.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
        // Pair-balanced: first chunk of a large triangle takes far fewer
        // rows than an even row split would give it.
        let b = triangle_row_bounds(1000, 10);
        assert!(b[1] < 100, "first chunk rows = {}", b[1]);
    }

    fn grid(n: usize) -> Vec<PlacedGate> {
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| PlacedGate {
                cell: CellId(i % 2),
                x: (i % side) as f64 * 3.0,
                y: (i / side) as f64 * 3.0,
            })
            .collect()
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = grid(700);
        let tent = |d: f64| (1.0 - d / 40.0).max(0.0);
        let serial = exact_placed_stats_with(&gates, &pw, &tent, Parallelism::serial());
        for threads in [2, 4, 8] {
            let par = exact_placed_stats_with(&gates, &pw, &tent, Parallelism::threads(threads));
            assert_eq!(
                serial.mean.to_bits(),
                par.mean.to_bits(),
                "threads = {threads}"
            );
            assert_eq!(
                serial.variance.to_bits(),
                par.variance.to_bits(),
                "threads = {threads}"
            );
        }
    }

    /// Two-float (double-double) accumulator used as the high-precision
    /// summation reference; ~32 significant digits for these magnitudes.
    #[derive(Clone, Copy, Default)]
    struct DoubleDouble {
        hi: f64,
        lo: f64,
    }

    impl DoubleDouble {
        fn add(&mut self, x: f64) {
            // TwoSum(hi, x), then fold the error into lo and renormalize.
            let s = self.hi + x;
            let bb = s - self.hi;
            let err = (self.hi - (s - bb)) + (x - bb);
            let lo = self.lo + err;
            let hi = s + lo;
            self.lo = lo - (hi - s);
            self.hi = hi;
        }

        fn sum(self) -> f64 {
            self.hi + self.lo
        }
    }

    #[test]
    fn compensated_variance_matches_high_precision_reference_10k() {
        // Satellite regression: on a 10k-gate design the chunked Kahan
        // reduction must agree with an independent double-double sum of the
        // same terms to near machine precision — the naive running sum this
        // replaced drifts orders of magnitude further.
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = grid(10_000);
        let tent = |d: f64| (1.0 - d / 60.0).max(0.0);
        let est = exact_placed_stats(&gates, &pw, &tent);

        let mut reference = DoubleDouble::default();
        for (a, ga) in gates.iter().enumerate() {
            let sa = pw.std(ga.cell);
            reference.add(sa * sa);
            for gb in &gates[a + 1..] {
                let dx = ga.x - gb.x;
                let dy = ga.y - gb.y;
                let d = (dx * dx + dy * dy).sqrt();
                reference.add(2.0 * pw.covariance(ga.cell, gb.cell, tent(d)));
            }
        }
        let rel = (est.variance - reference.sum()).abs() / reference.sum().abs();
        assert!(rel < 1e-13, "relative error {rel:e}");
    }

    #[test]
    fn soa_round_trips_gates_bit_for_bit() {
        let gates = grid(123);
        let soa = PlacementSoA::from_gates(&gates);
        assert_eq!(soa.len(), gates.len());
        assert_eq!(soa.support(), &[CellId(0), CellId(1)]);
        let back = soa.to_gates();
        for (g, r) in gates.iter().zip(&back) {
            assert_eq!(g.cell, r.cell);
            assert_eq!(g.x.to_bits(), r.x.to_bits());
            assert_eq!(g.y.to_bits(), r.y.to_bits());
        }
    }

    #[test]
    fn tiled_is_bit_identical_to_naive_for_any_tile_size_and_thread_count() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = grid(403);
        let soa = PlacementSoA::from_gates(&gates);
        let tent = |d: f64| (1.0 - d / 40.0).max(0.0);
        let naive = exact_placed_stats_with(&gates, &pw, &tent, Parallelism::serial());
        for rows in [1, 3, 64, 128, 403, 1024] {
            for threads in [1, 2, 8] {
                // far_cutoff = the tent's exact support radius: `grid`
                // places gates on an integer lattice, so pairs land exactly
                // on the d = 40 boundary and both sides of it.
                for far_cutoff in [None, Some(40.0)] {
                    let tiled = exact_placed_stats_tiled_instrumented(
                        &soa,
                        &pw,
                        &tent,
                        Parallelism::threads(threads),
                        Tiling { rows, far_cutoff },
                        leakage_numeric::Instruments::none(),
                    );
                    assert_eq!(
                        naive.mean.to_bits(),
                        tiled.mean.to_bits(),
                        "mean, tile {rows}, threads {threads}, far {far_cutoff:?}"
                    );
                    assert_eq!(
                        naive.variance.to_bits(),
                        tiled.variance.to_bits(),
                        "variance, tile {rows}, threads {threads}, far {far_cutoff:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn far_cutoff_edge_cases_fall_back_to_evaluation() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let gates = grid(120);
        let soa = PlacementSoA::from_gates(&gates);
        let tent = |d: f64| (1.0 - d / 40.0).max(0.0);
        let naive = exact_placed_stats_with(&gates, &pw, &tent, Parallelism::serial());
        // Non-finite / non-positive cutoffs must disable the fast path, and
        // a cutoff far beyond the die must be a no-op — all bit-identical.
        for far_cutoff in [
            Some(0.0),
            Some(-3.0),
            Some(f64::NAN),
            Some(f64::INFINITY),
            Some(1e9),
        ] {
            let tiled = exact_placed_stats_tiled_instrumented(
                &soa,
                &pw,
                &tent,
                Parallelism::serial(),
                Tiling {
                    rows: 64,
                    far_cutoff,
                },
                leakage_numeric::Instruments::none(),
            );
            assert_eq!(
                naive.variance.to_bits(),
                tiled.variance.to_bits(),
                "far {far_cutoff:?}"
            );
        }
    }

    #[test]
    fn tiled_default_wrappers_match_naive() {
        let pw = pairwise(CorrelationPolicy::Simplified);
        let gates = grid(150);
        let soa = PlacementSoA::from_gates(&gates);
        let tent = |d: f64| (1.0 - d / 25.0).max(0.0);
        let naive = exact_placed_stats(&gates, &pw, &tent);
        let auto = exact_placed_stats_tiled(&soa, &pw, &tent);
        let one = exact_placed_stats_tiled_with(&soa, &pw, &tent, Parallelism::serial());
        assert_eq!(naive.variance.to_bits(), auto.variance.to_bits());
        assert_eq!(naive.variance.to_bits(), one.variance.to_bits());
        assert_eq!(naive.mean.to_bits(), auto.mean.to_bits());
        assert_eq!(auto.method, EstimatorMethod::ExactPlaced);
    }

    #[test]
    fn triangle_tile_bounds_partition() {
        for (n, tile, chunks) in [(1usize, 1usize, 1usize), (403, 64, 3), (1000, 128, 8)] {
            let b = triangle_tile_bounds(n, tile, chunks);
            assert_eq!(b.len(), chunks + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[chunks], n.div_ceil(tile));
            for w in b.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn distance_dependence_reduces_covariance() {
        let pw = pairwise(CorrelationPolicy::Exact);
        let near = [
            PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            },
            PlacedGate {
                cell: CellId(1),
                x: 1.0,
                y: 0.0,
            },
        ];
        let far = [
            PlacedGate {
                cell: CellId(0),
                x: 0.0,
                y: 0.0,
            },
            PlacedGate {
                cell: CellId(1),
                x: 90.0,
                y: 0.0,
            },
        ];
        let tent = |d: f64| (1.0 - d / 100.0).max(0.0);
        let v_near = exact_placed_stats(&near, &pw, &tent).variance;
        let v_far = exact_placed_stats(&far, &pw, &tent).variance;
        assert!(v_near > v_far);
    }
}
