//! Validity-guarded fallback ladder over the paper's estimators.
//!
//! The paper's own accuracy study (Fig. 7) shows the O(1) approximations
//! are only trustworthy in part of the configuration space: the polar 1-D
//! reduction needs a compact-support WID correlation that fits inside the
//! die, and both continuum integrals need enough sites for the lattice →
//! integral limit to hold. Outside those regimes — or when a numerical
//! fault produces a non-finite or out-of-bracket variance — a production
//! flow should not return a silently questionable number *or* die with a
//! hard error when a more exact method is one step away.
//!
//! [`ChipLeakageEstimator::estimate_resilient`] runs the ladder
//! polar-1d → integral-2d → linear (Eq. 17) → exact lattice, checking each
//! rung's applicability predicate before running it and validating its
//! output afterwards (finite, non-negative, inside the analytic variance
//! bracket). Every skip and rejection is recorded in a
//! [`DegradationReport`] and emitted through the injected
//! [`Instruments`] — degradation is never silent.
//! [`ChipLeakageEstimator::estimate_strict`] is the complementary mode:
//! the requested rung either passes all checks or the rejection surfaces
//! as a typed error.

use super::{
    quadratic_lattice_variance_instrumented, ChipLeakageEstimator, EstimatorMethod, LeakageEstimate,
};
use crate::error::CoreError;
use leakage_numeric::Instruments;
use leakage_process::correlation::SpatialCorrelation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Minimum cell count for the continuum (integral) estimators. Below this
/// the lattice granularity error is visible (paper Fig. 7: > 0.1 % under
/// a few hundred gates; the golden tests pin the 49-site regime as
/// inaccurate), so the ladder degrades to the exact Eq. 17 sum instead.
pub const MIN_CONTINUUM_CELLS: usize = 500;

/// Relative slack applied to the analytic variance bracket before an
/// output is declared out of bounds (absorbs quadrature error).
const BRACKET_SLACK: f64 = 1e-3;

/// The rungs of the fallback ladder, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderStage {
    /// O(1) polar 1-D integral (Eqs. 24–26).
    Polar1d,
    /// O(1) 2-D rectangular integral (Eq. 20).
    Integral2d,
    /// O(n) multiplicity sum (Eq. 17) — an exact lattice transform.
    Linear,
    /// O(n²) brute-force lattice sum — always applicable, last resort.
    ExactLattice,
}

impl LadderStage {
    /// The full ladder, cheapest first.
    pub const LADDER: [LadderStage; 4] = [
        LadderStage::Polar1d,
        LadderStage::Integral2d,
        LadderStage::Linear,
        LadderStage::ExactLattice,
    ];

    /// Stable lower-case name (CLI flag values, report rendering).
    pub fn name(self) -> &'static str {
        match self {
            LadderStage::Polar1d => "polar1d",
            LadderStage::Integral2d => "integral2d",
            LadderStage::Linear => "linear",
            LadderStage::ExactLattice => "exact-lattice",
        }
    }

    /// The [`EstimatorMethod`] tag carried by this rung's estimates.
    pub fn method(self) -> EstimatorMethod {
        match self {
            LadderStage::Polar1d => EstimatorMethod::Polar1d,
            LadderStage::Integral2d => EstimatorMethod::Integral2d,
            LadderStage::Linear => EstimatorMethod::Linear,
            LadderStage::ExactLattice => EstimatorMethod::ExactLattice,
        }
    }

    fn accepted_counter(self) -> &'static str {
        match self {
            LadderStage::Polar1d => "core.resilient.accepted.polar1d",
            LadderStage::Integral2d => "core.resilient.accepted.integral2d",
            LadderStage::Linear => "core.resilient.accepted.linear",
            LadderStage::ExactLattice => "core.resilient.accepted.exact_lattice",
        }
    }

    fn rejected_counter(self) -> &'static str {
        match self {
            LadderStage::Polar1d => "core.resilient.rejected.polar1d",
            LadderStage::Integral2d => "core.resilient.rejected.integral2d",
            LadderStage::Linear => "core.resilient.rejected.linear",
            LadderStage::ExactLattice => "core.resilient.rejected.exact_lattice",
        }
    }
}

impl fmt::Display for LadderStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a rung was skipped or its output discarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The rung's applicability predicate failed before it ran.
    NotApplicable {
        /// Which precondition failed.
        reason: String,
    },
    /// The rung ran but returned a typed error.
    Failed {
        /// Rendered estimator error.
        reason: String,
    },
    /// The rung produced a non-finite mean or variance.
    NonFinite,
    /// The rung produced a negative variance.
    NegativeVariance {
        /// The offending value (A²).
        value: f64,
    },
    /// The variance fell outside the analytic bracket.
    OutOfBracket {
        /// The offending value (A²).
        value: f64,
        /// Bracket lower bound (A²).
        lower: f64,
        /// Bracket upper bound (A²).
        upper: f64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NotApplicable { reason } => write!(f, "not applicable: {reason}"),
            RejectReason::Failed { reason } => write!(f, "failed: {reason}"),
            RejectReason::NonFinite => write!(f, "produced a non-finite moment"),
            RejectReason::NegativeVariance { value } => {
                write!(f, "produced a negative variance ({value:.3e} A²)")
            }
            RejectReason::OutOfBracket {
                value,
                lower,
                upper,
            } => write!(
                f,
                "variance {value:.3e} A² outside the analytic bracket \
                 [{lower:.3e}, {upper:.3e}] A²"
            ),
        }
    }
}

/// Outcome of one ladder rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageOutcome {
    /// The rung's output passed every validity check.
    Accepted {
        /// The accepted variance (A²).
        variance: f64,
    },
    /// The rung was skipped or its output discarded.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

/// One entry of a [`DegradationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageAttempt {
    /// Which rung.
    pub stage: LadderStage,
    /// What happened.
    pub outcome: StageOutcome,
}

/// The audit trail of a resilient estimation: every rung tried, why the
/// rejected ones were rejected, and the analytic error bounds the accepted
/// variance was validated against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Rungs in attempt order; the last entry is the accepted one when
    /// estimation succeeded.
    pub attempts: Vec<StageAttempt>,
    /// Analytic lower bound: every site pair at the D2D correlation floor
    /// `ρ_C` (A²).
    pub lower_bound: f64,
    /// Analytic upper bound: every site pair perfectly correlated (A²).
    pub upper_bound: f64,
}

impl DegradationReport {
    /// The accepted rung, if any.
    pub fn accepted(&self) -> Option<LadderStage> {
        self.attempts.iter().find_map(|a| match a.outcome {
            StageOutcome::Accepted { .. } => Some(a.stage),
            StageOutcome::Rejected { .. } => None,
        })
    }

    /// `true` when at least one rung was rejected before acceptance —
    /// i.e. the result is a documented degradation, not the first choice.
    pub fn degraded(&self) -> bool {
        self.attempts
            .iter()
            .any(|a| matches!(a.outcome, StageOutcome::Rejected { .. }))
    }

    /// One human-readable line per rejected rung.
    pub fn rejection_lines(&self) -> Vec<String> {
        self.attempts
            .iter()
            .filter_map(|a| match &a.outcome {
                StageOutcome::Rejected { reason } => Some(format!("{}: {reason}", a.stage)),
                StageOutcome::Accepted { .. } => None,
            })
            .collect()
    }

    /// Compact single-line summary of the whole ladder run.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .attempts
            .iter()
            .map(|a| match &a.outcome {
                StageOutcome::Accepted { .. } => format!("{}: accepted", a.stage),
                StageOutcome::Rejected { reason } => format!("{}: {reason}", a.stage),
            })
            .collect();
        parts.join("; ")
    }
}

/// A [`LeakageEstimate`] plus the [`DegradationReport`] documenting how it
/// was obtained.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilientEstimate {
    /// The accepted estimate.
    pub estimate: LeakageEstimate,
    /// The ladder audit trail.
    pub report: DegradationReport,
}

impl<C: SpatialCorrelation> ChipLeakageEstimator<C> {
    /// Analytic bracket for the full-chip leakage variance: the sum of `n`
    /// identically distributed site totals is bounded below by every
    /// distinct pair sitting at the D2D correlation floor `ρ_C` and above
    /// by perfect correlation (`ρ = 1`), since the pairwise covariance is
    /// monotone in `ρ` and `ρ_C ≤ ρ_total(d) ≤ 1` for the supported
    /// (non-negative) WID models. Any valid estimate must land inside.
    pub fn variance_bracket(&self) -> (f64, f64) {
        let n = self.chars.n_cells() as f64;
        let base = n * self.rg.variance();
        let pairs = n * (n - 1.0);
        (
            base + pairs * self.rg.covariance(self.rho_c),
            base + pairs * self.rg.covariance(1.0),
        )
    }

    /// The rung's applicability predicate (paper Fig. 7 regimes), checked
    /// *before* the rung runs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MethodNotApplicable`] describing the violated
    /// precondition.
    pub fn stage_applicability(&self, stage: LadderStage) -> Result<(), CoreError> {
        let not_applicable = |reason: String| CoreError::MethodNotApplicable {
            method: stage.name(),
            reason,
        };
        match stage {
            LadderStage::Polar1d => {
                if !(0.0..=1.0).contains(&self.rho_c) {
                    return Err(not_applicable(format!(
                        "the D2D split needs 0 ≤ ρ_C ≤ 1, got {}",
                        self.rho_c
                    )));
                }
                let d_max = self.wid.support_radius().ok_or_else(|| {
                    not_applicable(
                        "the WID correlation model has an infinite tail (no compact support)"
                            .into(),
                    )
                })?;
                let min_dim = self.chars.width().min(self.chars.height());
                if d_max > min_dim {
                    return Err(not_applicable(format!(
                        "correlation support D_max = {d_max} exceeds min(W, H) = {min_dim}"
                    )));
                }
                self.continuum_applicability(stage)
            }
            LadderStage::Integral2d => self.continuum_applicability(stage),
            LadderStage::Linear | LadderStage::ExactLattice => Ok(()),
        }
    }

    /// Shared continuum-regime predicate for the O(1) integral rungs: the
    /// lattice → integral limit needs enough sites, and the correlation
    /// kernel must be resolved by the site pitch.
    fn continuum_applicability(&self, stage: LadderStage) -> Result<(), CoreError> {
        if self.chars.n_cells() < MIN_CONTINUUM_CELLS {
            return Err(CoreError::MethodNotApplicable {
                method: stage.name(),
                reason: format!(
                    "{} cells is below the continuum floor of {MIN_CONTINUUM_CELLS} \
                     (lattice granularity error exceeds the golden tolerance)",
                    self.chars.n_cells()
                ),
            });
        }
        if let Some(d_max) = self.wid.support_radius() {
            let pitch = self.grid.pitch_x().max(self.grid.pitch_y());
            if d_max < pitch {
                return Err(CoreError::MethodNotApplicable {
                    method: stage.name(),
                    reason: format!(
                        "correlation support D_max = {d_max} µm is below the site pitch \
                         {pitch} µm; the continuum integral cannot resolve it"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Runs one rung end to end: predicate, estimator, output validation.
    fn run_stage(
        &self,
        stage: LadderStage,
        lower: f64,
        upper: f64,
        ins: Instruments<'_>,
    ) -> StageOutcome {
        if let Err(e) = self.stage_applicability(stage) {
            let reason = match e {
                CoreError::MethodNotApplicable { reason, .. } => reason,
                other => other.to_string(),
            };
            return StageOutcome::Rejected {
                reason: RejectReason::NotApplicable { reason },
            };
        }
        let computed = match stage {
            LadderStage::Polar1d => self.estimate_polar_1d_instrumented(ins),
            LadderStage::Integral2d => self.estimate_integral_2d_instrumented(ins),
            LadderStage::Linear => self.estimate_linear_instrumented(ins),
            LadderStage::ExactLattice => {
                let var = quadratic_lattice_variance_instrumented(
                    &self.rg,
                    &self.grid,
                    &|d: f64| self.rho_total(d),
                    ins,
                ) * self.site_scale();
                Ok(LeakageEstimate {
                    mean: self.mean(),
                    variance: var,
                    method: EstimatorMethod::ExactLattice,
                })
            }
        };
        let estimate = match computed {
            Ok(e) => e,
            Err(e) => {
                return StageOutcome::Rejected {
                    reason: RejectReason::Failed {
                        reason: e.to_string(),
                    },
                }
            }
        };
        if !estimate.mean.is_finite() || !estimate.variance.is_finite() {
            return StageOutcome::Rejected {
                reason: RejectReason::NonFinite,
            };
        }
        if estimate.variance < 0.0 {
            return StageOutcome::Rejected {
                reason: RejectReason::NegativeVariance {
                    value: estimate.variance,
                },
            };
        }
        let lo = lower * (1.0 - BRACKET_SLACK);
        let hi = upper * (1.0 + BRACKET_SLACK);
        if estimate.variance < lo || estimate.variance > hi {
            return StageOutcome::Rejected {
                reason: RejectReason::OutOfBracket {
                    value: estimate.variance,
                    lower,
                    upper,
                },
            };
        }
        StageOutcome::Accepted {
            variance: estimate.variance,
        }
    }

    /// Runs the validity-guarded fallback ladder and returns the first
    /// accepted estimate together with its [`DegradationReport`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EstimationExhausted`] when every rung is
    /// rejected (for example under injected NaN poisoning, where no
    /// estimator can produce a finite variance).
    pub fn estimate_resilient(&self) -> Result<ResilientEstimate, CoreError> {
        self.estimate_resilient_instrumented(Instruments::none())
    }

    /// [`Self::estimate_resilient`] reporting to an injected
    /// [`Instruments`]: an attempt counter per rung, a per-stage
    /// accepted/rejected counter, a `core.resilient.degradations` tick
    /// whenever the accepted rung is not the first choice, and the
    /// accepted variance as a value observation. All metrics are recorded
    /// from the calling thread, so snapshots are bit-identical for every
    /// thread budget.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Self::estimate_resilient`].
    pub fn estimate_resilient_instrumented(
        &self,
        ins: Instruments<'_>,
    ) -> Result<ResilientEstimate, CoreError> {
        let span = ins.span("core.estimate_resilient");
        let (lower, upper) = self.variance_bracket();
        let mut attempts = Vec::new();
        for stage in LadderStage::LADDER {
            ins.add("core.resilient.attempts", 1);
            let outcome = self.run_stage(stage, lower, upper, ins);
            match outcome {
                StageOutcome::Accepted { variance } => {
                    ins.add(stage.accepted_counter(), 1);
                    if !attempts.is_empty() {
                        ins.add("core.resilient.degradations", 1);
                    }
                    ins.record("core.resilient.variance", variance);
                    attempts.push(StageAttempt {
                        stage,
                        outcome: StageOutcome::Accepted { variance },
                    });
                    drop(span);
                    return Ok(ResilientEstimate {
                        estimate: LeakageEstimate {
                            mean: self.mean(),
                            variance,
                            method: stage.method(),
                        },
                        report: DegradationReport {
                            attempts,
                            lower_bound: lower,
                            upper_bound: upper,
                        },
                    });
                }
                StageOutcome::Rejected { .. } => {
                    ins.add(stage.rejected_counter(), 1);
                    attempts.push(StageAttempt { stage, outcome });
                }
            }
        }
        ins.add("core.resilient.exhausted", 1);
        drop(span);
        let report = DegradationReport {
            attempts,
            lower_bound: lower,
            upper_bound: upper,
        };
        Err(CoreError::EstimationExhausted {
            attempts: report.attempts.len(),
            summary: report.summary(),
        })
    }

    /// Strict mode: the requested rung either passes its applicability
    /// predicate *and* every output validity check, or the rejection
    /// surfaces as a typed error — no silent fallback, no degradation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MethodNotApplicable`] carrying the rejection
    /// reason when the rung fails any check.
    pub fn estimate_strict(&self, stage: LadderStage) -> Result<LeakageEstimate, CoreError> {
        self.estimate_strict_instrumented(stage, Instruments::none())
    }

    /// [`Self::estimate_strict`] reporting to an injected [`Instruments`].
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Self::estimate_strict`].
    pub fn estimate_strict_instrumented(
        &self,
        stage: LadderStage,
        ins: Instruments<'_>,
    ) -> Result<LeakageEstimate, CoreError> {
        let (lower, upper) = self.variance_bracket();
        match self.run_stage(stage, lower, upper, ins) {
            StageOutcome::Accepted { variance } => {
                ins.add(stage.accepted_counter(), 1);
                Ok(LeakageEstimate {
                    mean: self.mean(),
                    variance,
                    method: stage.method(),
                })
            }
            StageOutcome::Rejected { reason } => {
                ins.add(stage.rejected_counter(), 1);
                ins.add("core.resilient.strict_refusals", 1);
                // `MethodNotApplicable`'s Display already says "not
                // applicable", so unwrap that variant's inner reason.
                let detail = match reason {
                    RejectReason::NotApplicable { reason } => reason,
                    other => other.to_string(),
                };
                Err(CoreError::MethodNotApplicable {
                    method: stage.name(),
                    reason: format!("{detail} (strict mode refuses degradation)"),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chars::HighLevelCharacteristics;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };
    use leakage_cells::UsageHistogram;
    use leakage_process::correlation::{ExponentialCorrelation, TentCorrelation};
    use leakage_process::Technology;

    const SIGMA: f64 = 4.5;

    fn charlib() -> CharacterizedLibrary {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        }
    }

    fn chars(n_cells: usize, w: f64, h: f64) -> HighLevelCharacteristics {
        HighLevelCharacteristics::builder()
            .histogram(UsageHistogram::uniform(2).unwrap())
            .n_cells(n_cells)
            .die_dimensions(w, h)
            .build()
            .unwrap()
    }

    fn estimator<C: SpatialCorrelation>(
        n_cells: usize,
        w: f64,
        h: f64,
        wid: C,
    ) -> ChipLeakageEstimator<C> {
        ChipLeakageEstimator::new(&charlib(), &Technology::cmos90(), chars(n_cells, w, h), wid)
            .unwrap()
    }

    /// A deliberately broken correlation model: NaN at every distance.
    #[derive(Debug)]
    struct NanCorrelation;
    impl SpatialCorrelation for NanCorrelation {
        fn rho(&self, _d: f64) -> f64 {
            f64::NAN
        }
        fn support_radius(&self) -> Option<f64> {
            Some(50.0)
        }
    }

    #[test]
    fn polar_accepted_when_applicable_and_bit_identical_to_direct_call() {
        let est = estimator(10_000, 400.0, 300.0, TentCorrelation::new(50.0).unwrap());
        let res = est.estimate_resilient().expect("ladder");
        assert_eq!(res.estimate.method, EstimatorMethod::Polar1d);
        assert!(!res.report.degraded());
        assert_eq!(res.report.accepted(), Some(LadderStage::Polar1d));
        let direct = est.estimate_polar_1d().expect("direct");
        assert_eq!(res.estimate.variance.to_bits(), direct.variance.to_bits());
        assert_eq!(res.estimate.mean.to_bits(), direct.mean.to_bits());
    }

    #[test]
    fn infinite_tail_degrades_to_integral_2d() {
        // Fig. 7 regime: no compact support → the polar rung is rejected
        // up front and the 2-D integral answers, matching its direct call
        // bit for bit.
        let est = estimator(
            10_000,
            400.0,
            300.0,
            ExponentialCorrelation::new(40.0).unwrap(),
        );
        let res = est.estimate_resilient().expect("ladder");
        assert_eq!(res.estimate.method, EstimatorMethod::Integral2d);
        assert!(res.report.degraded());
        assert_eq!(res.report.accepted(), Some(LadderStage::Integral2d));
        let lines = res.report.rejection_lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("polar1d"), "{lines:?}");
        assert!(lines[0].contains("infinite tail"), "{lines:?}");
        let direct = est.estimate_integral_2d().expect("direct");
        assert_eq!(res.estimate.variance.to_bits(), direct.variance.to_bits());
    }

    #[test]
    fn oversized_support_degrades_to_integral_2d() {
        // Fig. 7 regime: D_max > min(W, H) invalidates the polar
        // reduction only; the 2-D integral still applies.
        let est = estimator(10_000, 400.0, 300.0, TentCorrelation::new(350.0).unwrap());
        let res = est.estimate_resilient().expect("ladder");
        assert_eq!(res.estimate.method, EstimatorMethod::Integral2d);
        let lines = res.report.rejection_lines();
        assert!(lines[0].contains("exceeds min(W, H)"), "{lines:?}");
    }

    #[test]
    fn tiny_designs_skip_the_continuum_rungs() {
        // 49 cells: the golden tests pin this regime as inaccurate for the
        // integrals, so the ladder lands on the exact Eq. 17 sum.
        let est = estimator(49, 14.0, 14.0, TentCorrelation::new(8.0).unwrap());
        let res = est.estimate_resilient().expect("ladder");
        assert_eq!(res.estimate.method, EstimatorMethod::Linear);
        assert_eq!(res.report.rejection_lines().len(), 2);
        let direct = est.estimate_linear().expect("direct");
        assert_eq!(res.estimate.variance.to_bits(), direct.variance.to_bits());
    }

    #[test]
    fn accepted_variance_sits_inside_the_bracket() {
        let est = estimator(5_000, 300.0, 300.0, TentCorrelation::new(60.0).unwrap());
        let (lo, hi) = est.variance_bracket();
        assert!(lo > 0.0 && hi > lo);
        let res = est.estimate_resilient().expect("ladder");
        assert!(res.estimate.variance >= lo * 0.999);
        assert!(res.estimate.variance <= hi * 1.001);
        assert_eq!(res.report.lower_bound, lo);
        assert_eq!(res.report.upper_bound, hi);
    }

    #[test]
    fn nan_poisoned_correlation_exhausts_the_ladder_with_a_typed_error() {
        let est = estimator(10_000, 400.0, 300.0, NanCorrelation);
        match est.estimate_resilient() {
            Err(CoreError::EstimationExhausted { attempts, summary }) => {
                assert_eq!(attempts, LadderStage::LADDER.len());
                assert!(summary.contains("non-finite"), "{summary}");
            }
            other => panic!("expected EstimationExhausted, got {other:?}"),
        }
    }

    #[test]
    fn strict_mode_surfaces_the_first_rejection() {
        let est = estimator(
            10_000,
            400.0,
            300.0,
            ExponentialCorrelation::new(40.0).unwrap(),
        );
        match est.estimate_strict(LadderStage::Polar1d) {
            Err(CoreError::MethodNotApplicable { method, reason }) => {
                assert_eq!(method, "polar1d");
                assert!(reason.contains("strict mode"), "{reason}");
            }
            other => panic!("expected MethodNotApplicable, got {other:?}"),
        }
        // The same configuration succeeds strictly on an applicable rung.
        let ok = est.estimate_strict(LadderStage::Linear).expect("linear");
        assert_eq!(ok.method, EstimatorMethod::Linear);
    }

    #[test]
    fn ladder_is_deterministic() {
        let est = estimator(2_000, 200.0, 150.0, TentCorrelation::new(30.0).unwrap());
        let a = est.estimate_resilient().expect("a");
        let b = est.estimate_resilient().expect("b");
        assert_eq!(a, b);
    }
}
