//! The O(1) integral estimators (paper §3.2).
//!
//! For large `n`, the lattice sum of Eq. 17 is a Riemann sum of
//!
//! ```text
//! σ²_IT ≈ 4 (n/A)² ∫₀^W ∫₀^H (W−x)(H−y) · C(ρ_L(√(x²+y²))) dy dx
//! ```
//!
//! (Eq. 20, written here in covariance rather than normalized-correlation
//! form). When the WID correlation has compact support `D_max ≤ min(W,H)`,
//! the angular integral has the closed form `g(r)` of Eq. 24 and the
//! variance reduces to a single radial integral plus the D2D constant term
//! (Eqs. 25–26).

use crate::error::CoreError;
use crate::random_gate::RandomGate;
use leakage_numeric::integrate::{composite_gauss_legendre, gauss_legendre_2d};
use leakage_numeric::Instruments;
use leakage_process::correlation::SpatialCorrelation;

/// O(1) full-chip leakage variance by 2-D rectangular quadrature (Eq. 20).
///
/// `rho_total` maps distance to total (D2D + WID) length correlation. The
/// quadrature uses an `order`-point composite Gauss–Legendre rule with
/// `panels × panels` panels (panels help when the correlation has a kink
/// at its support boundary).
pub fn integral_2d_variance<R: Fn(f64) -> f64>(
    rg: &RandomGate,
    n_cells: usize,
    width: f64,
    height: f64,
    rho_total: &R,
    order: usize,
    panels: usize,
) -> f64 {
    integral_2d_variance_instrumented(
        rg,
        n_cells,
        width,
        height,
        rho_total,
        order,
        panels,
        Instruments::none(),
    )
}

/// [`integral_2d_variance`] reporting to an injected [`Instruments`]: a
/// span over the tensor-product quadrature plus panel (`panels²`) and
/// integrand-evaluation (`order²·panels²`) counters.
#[allow(clippy::too_many_arguments)]
pub fn integral_2d_variance_instrumented<R: Fn(f64) -> f64>(
    rg: &RandomGate,
    n_cells: usize,
    width: f64,
    height: f64,
    rho_total: &R,
    order: usize,
    panels: usize,
    ins: Instruments<'_>,
) -> f64 {
    let span = ins.span("core.integral_2d_variance");
    ins.add("core.integral2d.panels", (panels * panels) as u64);
    ins.add(
        "core.integral2d.evals",
        (order * order * panels * panels) as u64,
    );
    let n = n_cells as f64;
    let area = width * height;
    let integral = gauss_legendre_2d(
        |x, y| {
            let d = (x * x + y * y).sqrt();
            (width - x) * (height - y) * rg.covariance(rho_total(d))
        },
        0.0,
        width,
        0.0,
        height,
        order,
        panels,
    );
    let variance = 4.0 * (n / area) * (n / area) * integral;
    ins.record("core.integral2d.variance", variance);
    drop(span);
    variance
}

/// The closed-form angular factor `g(r) = r²/2 − (W+H)r + (π/2)WH`
/// (paper Eq. 24).
pub fn g_polar(r: f64, width: f64, height: f64) -> f64 {
    0.5 * r * r - (width + height) * r + std::f64::consts::FRAC_PI_2 * width * height
}

/// O(1) full-chip leakage variance by the single polar integral with the
/// D2D constant split (Eqs. 25–26):
///
/// ```text
/// σ² ≈ 4 (n/A)² ∫₀^{D_max} C'(r) · r · g(r) dr + n² · C_floor
/// ```
///
/// where `C'(r) = C(ρ_total(r)) − C_floor` vanishes beyond `D_max` and
/// `C_floor = C(ρ_C)` is the never-decaying D2D contribution.
///
/// # Errors
///
/// Returns [`CoreError::MethodNotApplicable`] when the WID model has no
/// compact support, or its radius exceeds `min(W, H)` (the paper's
/// precondition for the polar reduction).
#[allow(clippy::too_many_arguments)]
pub fn polar_1d_variance<C: SpatialCorrelation>(
    rg: &RandomGate,
    n_cells: usize,
    width: f64,
    height: f64,
    wid: &C,
    rho_c: f64,
    order: usize,
    panels: usize,
) -> Result<f64, CoreError> {
    polar_1d_variance_instrumented(
        rg,
        n_cells,
        width,
        height,
        wid,
        rho_c,
        order,
        panels,
        Instruments::none(),
    )
}

/// [`polar_1d_variance`] reporting to an injected [`Instruments`]: a span
/// over the radial quadrature plus panel and integrand-evaluation
/// (`order·panels`) counters.
///
/// # Errors
///
/// Returns [`CoreError::MethodNotApplicable`] under the same conditions as
/// [`polar_1d_variance`].
#[allow(clippy::too_many_arguments)]
pub fn polar_1d_variance_instrumented<C: SpatialCorrelation>(
    rg: &RandomGate,
    n_cells: usize,
    width: f64,
    height: f64,
    wid: &C,
    rho_c: f64,
    order: usize,
    panels: usize,
    ins: Instruments<'_>,
) -> Result<f64, CoreError> {
    let span = ins.span("core.polar_1d_variance");
    ins.add("core.polar1d.panels", panels as u64);
    ins.add("core.polar1d.evals", (order * panels) as u64);
    let d_max = wid
        .support_radius()
        .ok_or_else(|| CoreError::MethodNotApplicable {
            method: "polar 1-d integral",
            reason: "the WID correlation model has an infinite tail; use the 2-D \
                 integral or the linear-time method"
                .into(),
        })?;
    if d_max > width.min(height) {
        return Err(CoreError::MethodNotApplicable {
            method: "polar 1-d integral",
            reason: format!(
                "correlation support D_max = {d_max} exceeds min(W, H) = {}",
                width.min(height)
            ),
        });
    }
    let n = n_cells as f64;
    let area = width * height;
    let c_floor = rg.covariance(rho_c);
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let radial = composite_gauss_legendre(
        |r| (rg.covariance(rho_total(r)) - c_floor) * r * g_polar(r, width, height),
        0.0,
        d_max,
        order,
        panels,
    );
    let variance = 4.0 * (n / area) * (n / area) * radial + n * n * c_floor;
    ins.record("core.polar1d.variance", variance);
    drop(span);
    Ok(variance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::linear::linear_time_variance;
    use leakage_cells::corrmap::CorrelationPolicy;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };
    use leakage_cells::UsageHistogram;
    use leakage_process::correlation::{ExponentialCorrelation, TentCorrelation};
    use leakage_process::field::GridGeometry;

    const SIGMA: f64 = 4.5;

    fn rg() -> RandomGate {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let lib = CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        };
        RandomGate::new(
            &lib,
            &UsageHistogram::uniform(2).unwrap(),
            0.5,
            CorrelationPolicy::Exact,
        )
        .unwrap()
    }

    #[test]
    fn g_polar_endpoints() {
        // g(0) = (π/2)WH; g is the angular integral so it must be positive
        // over the valid radius range r ≤ min(W, H).
        let (w, h) = (100.0, 80.0);
        assert!((g_polar(0.0, w, h) - std::f64::consts::FRAC_PI_2 * w * h).abs() < 1e-9);
        for r in [0.0, 20.0, 50.0, 80.0] {
            assert!(g_polar(r, w, h) > 0.0, "g({r}) must be positive");
        }
    }

    #[test]
    fn g_polar_matches_numeric_angular_integral() {
        let (w, h) = (120.0, 90.0);
        for r in [5.0, 30.0, 70.0] {
            let numeric = leakage_numeric::integrate::gauss_legendre(
                |th: f64| (w - r * th.cos()) * (h - r * th.sin()),
                0.0,
                std::f64::consts::FRAC_PI_2,
                32,
            );
            assert!(
                (g_polar(r, w, h) - numeric).abs() / numeric < 1e-12,
                "r = {r}"
            );
        }
    }

    #[test]
    fn integral_2d_converges_to_linear_for_large_n() {
        // Paper Fig. 7: < 0.01 % error above ten thousand gates.
        let rg = rg();
        let tent = TentCorrelation::new(60.0).unwrap();
        let rho_c = 0.0;
        let rho_total = |d: f64| rho_c + (1.0 - rho_c) * tent.rho(d);
        let grid = GridGeometry::new(106, 106, 2.0, 2.0).unwrap(); // 11236 sites
        let lin = linear_time_variance(&rg, &grid, &rho_total);
        let int2d = integral_2d_variance(
            &rg,
            grid.n_sites(),
            grid.width(),
            grid.height(),
            &rho_total,
            32,
            8,
        );
        let rel = (int2d - lin).abs() / lin;
        // The Riemann error scales as (pitch/D_max)²; for this geometry
        // that is a few tenths of a percent.
        assert!(rel < 1e-2, "relative error {rel}");
    }

    #[test]
    fn integral_error_shrinks_with_gate_count() {
        // The paper's Fig. 7 trend: the % error of the O(1) integral vs
        // the O(n) sum decreases as the design grows (same die, finer
        // pitch = more gates).
        let rg = rg();
        let tent = TentCorrelation::new(60.0).unwrap();
        let rho_total = |d: f64| tent.rho(d);
        let die = 212.0;
        let mut prev_rel = f64::INFINITY;
        for sites_per_side in [10usize, 30, 106] {
            let pitch = die / sites_per_side as f64;
            let grid = GridGeometry::new(sites_per_side, sites_per_side, pitch, pitch).unwrap();
            let lin = linear_time_variance(&rg, &grid, &rho_total);
            let int2d = integral_2d_variance(
                &rg,
                grid.n_sites(),
                grid.width(),
                grid.height(),
                &rho_total,
                32,
                8,
            );
            let rel = (int2d - lin).abs() / lin;
            assert!(rel < prev_rel, "error must shrink: {rel} vs {prev_rel}");
            prev_rel = rel;
        }
        assert!(prev_rel < 1e-2, "largest grid below 1 %: {prev_rel}");
    }

    #[test]
    fn integral_2d_less_accurate_for_tiny_n() {
        // Small circuits: the integral's granularity error is visible
        // (paper: > 1 % below 100 gates).
        let rg = rg();
        let tent = TentCorrelation::new(8.0).unwrap();
        let rho_total = |d: f64| tent.rho(d);
        let grid = GridGeometry::new(7, 7, 2.0, 2.0).unwrap(); // 49 sites
        let lin = linear_time_variance(&rg, &grid, &rho_total);
        let int2d = integral_2d_variance(
            &rg,
            grid.n_sites(),
            grid.width(),
            grid.height(),
            &rho_total,
            32,
            8,
        );
        let rel = (int2d - lin).abs() / lin;
        assert!(rel > 1e-3, "granularity error should be visible, got {rel}");
    }

    #[test]
    fn polar_matches_2d_for_compact_support() {
        let rg = rg();
        let tent = TentCorrelation::new(50.0).unwrap();
        let (w, h, n) = (200.0, 160.0, 20_000);
        let rho_total = |d: f64| tent.rho(d);
        let v2d = integral_2d_variance(&rg, n, w, h, &rho_total, 48, 12);
        let v1d = polar_1d_variance(&rg, n, w, h, &tent, 0.0, 64, 16).unwrap();
        let rel = (v1d - v2d).abs() / v2d;
        assert!(rel < 1e-6, "polar vs 2-d: {rel}");
    }

    #[test]
    fn polar_with_d2d_floor_matches_2d() {
        let rg = rg();
        let tent = TentCorrelation::new(50.0).unwrap();
        let (w, h, n) = (200.0, 160.0, 20_000);
        let rho_c = 0.5;
        let rho_total = |d: f64| rho_c + (1.0 - rho_c) * tent.rho(d);
        let v2d = integral_2d_variance(&rg, n, w, h, &rho_total, 48, 12);
        let v1d = polar_1d_variance(&rg, n, w, h, &tent, rho_c, 64, 16).unwrap();
        let rel = (v1d - v2d).abs() / v2d;
        assert!(rel < 1e-6, "polar+d2d vs 2-d: {rel}");
    }

    #[test]
    fn polar_rejects_infinite_tail() {
        let rg = rg();
        let exp = ExponentialCorrelation::new(30.0).unwrap();
        assert!(matches!(
            polar_1d_variance(&rg, 1000, 100.0, 100.0, &exp, 0.0, 32, 8),
            Err(CoreError::MethodNotApplicable { .. })
        ));
    }

    #[test]
    fn polar_rejects_oversized_support() {
        let rg = rg();
        let tent = TentCorrelation::new(150.0).unwrap();
        assert!(matches!(
            polar_1d_variance(&rg, 1000, 100.0, 100.0, &tent, 0.0, 32, 8),
            Err(CoreError::MethodNotApplicable { .. })
        ));
    }

    #[test]
    fn d2d_only_gives_n_squared_scaling() {
        // With no WID correlation at all (support → 0) and a D2D floor,
        // the variance is dominated by n²·C(ρ_C).
        let rg = rg();
        let tent = TentCorrelation::new(1e-6).unwrap();
        let n = 10_000;
        let v = polar_1d_variance(&rg, n, 100.0, 100.0, &tent, 0.4, 32, 8).unwrap();
        let floor = (n as f64) * (n as f64) * rg.covariance(0.4);
        assert!((v - floor).abs() / floor < 1e-6);
    }
}
