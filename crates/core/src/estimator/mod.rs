//! Full-chip leakage estimators (paper §3).
//!
//! * [`exact_placed_stats`] — the O(n²) pairwise reference on a placed
//!   design ("true leakage");
//! * [`linear_time_variance`] — the O(n) distance-multiplicity sum
//!   (Eq. 17, an exact transformation of the O(n²) lattice sum);
//! * [`integral_2d_variance`] — the O(1) rectangular integral (Eq. 20);
//! * [`polar_1d_variance`] — the O(1) single polar integral with the D2D
//!   constant split (Eqs. 24–26);
//! * [`ChipLeakageEstimator`] — a facade tying the Random Gate, the grid
//!   and the correlation model together.

mod exact;
mod integral;
mod linear;
mod resilient;
mod table;

pub use exact::{
    exact_placed_mean, exact_placed_stats, exact_placed_stats_instrumented,
    exact_placed_stats_tiled, exact_placed_stats_tiled_instrumented, exact_placed_stats_tiled_with,
    exact_placed_stats_with, PlacedGate, PlacementSoA, Tiling, DEFAULT_TILE_ROWS,
};
pub use integral::{
    g_polar, integral_2d_variance, integral_2d_variance_instrumented, polar_1d_variance,
    polar_1d_variance_instrumented,
};
pub use linear::{
    linear_time_variance, linear_time_variance_instrumented, quadratic_lattice_variance,
    quadratic_lattice_variance_instrumented,
};
pub use resilient::{
    DegradationReport, LadderStage, RejectReason, ResilientEstimate, StageAttempt, StageOutcome,
    MIN_CONTINUUM_CELLS,
};
pub use table::{
    linear_time_variance_tabulated, linear_time_variance_tabulated_instrumented, CorrelationTable,
    TableEntry,
};

use crate::chars::HighLevelCharacteristics;
use crate::error::CoreError;
use crate::random_gate::RandomGate;
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::model::{vt_mean_multiplier, CharacterizedLibrary};
use leakage_numeric::Instruments;
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::GridGeometry;
use leakage_process::Technology;
use serde::{Deserialize, Serialize};

/// Which estimator produced a [`LeakageEstimate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorMethod {
    /// O(n²) pairwise reference on a placed design.
    ExactPlaced,
    /// O(n) multiplicity sum (Eq. 17).
    Linear,
    /// O(1) 2-D rectangular integral (Eq. 20).
    Integral2d,
    /// O(1) 1-D polar integral (Eqs. 24–26).
    Polar1d,
    /// O(n²) brute-force lattice sum — the fallback ladder's last resort.
    ExactLattice,
}

/// A full-chip leakage estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageEstimate {
    /// Mean total leakage (A).
    pub mean: f64,
    /// Variance of the total leakage (A²).
    pub variance: f64,
    /// The estimator that produced this value.
    pub method: EstimatorMethod,
}

impl LeakageEstimate {
    /// Standard deviation of the total leakage (A).
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Relative spread `σ/μ` (0 when the mean is 0).
    pub fn relative_std(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std() / self.mean
        }
    }
}

impl std::fmt::Display for LeakageEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4e} A ± {:.4e} A ({:?})",
            self.mean,
            self.std(),
            self.method
        )
    }
}

/// Facade estimator: Random Gate + site grid + correlation model.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug)]
pub struct ChipLeakageEstimator<C> {
    rg: RandomGate,
    chars: HighLevelCharacteristics,
    grid: GridGeometry,
    wid: C,
    rho_c: f64,
    vt_factor: f64,
    quad_order: usize,
    quad_panels: usize,
}

impl<C: SpatialCorrelation> ChipLeakageEstimator<C> {
    /// Builds the estimator with the exact correlation policy.
    ///
    /// The D2D variance fraction `ρ_C` is taken from the technology's
    /// channel-length budget; `wid` is the within-die correlation model.
    ///
    /// # Errors
    ///
    /// Propagates Random-Gate construction failures.
    pub fn new(
        charlib: &CharacterizedLibrary,
        tech: &Technology,
        chars: HighLevelCharacteristics,
        wid: C,
    ) -> Result<Self, CoreError> {
        Self::with_policy(charlib, tech, chars, wid, CorrelationPolicy::Exact)
    }

    /// Builds the estimator with an explicit correlation policy (§3.1.2).
    ///
    /// # Errors
    ///
    /// Propagates Random-Gate construction failures.
    pub fn with_policy(
        charlib: &CharacterizedLibrary,
        tech: &Technology,
        chars: HighLevelCharacteristics,
        wid: C,
        policy: CorrelationPolicy,
    ) -> Result<Self, CoreError> {
        let rg = RandomGate::new(
            charlib,
            chars.histogram(),
            chars.signal_probability(),
            policy,
        )?;
        let grid = chars.grid()?;
        Ok(ChipLeakageEstimator {
            rg,
            chars,
            grid,
            wid,
            rho_c: tech.l_variation().d2d_variance_fraction(),
            vt_factor: 1.0,
            quad_order: 32,
            quad_panels: 8,
        })
    }

    /// Enables the multiplicative mean correction for independent RDF
    /// threshold-voltage variation (§2.1). Off by default so estimates
    /// align with L-only Monte-Carlo cross-checks.
    pub fn with_vt_correction(mut self, tech: &Technology) -> Self {
        let n_avg = 0.5 * (tech.nmos().n_factor + tech.pmos().n_factor);
        self.vt_factor = vt_mean_multiplier(tech.vt_sigma(), n_avg, tech.thermal_voltage());
        self
    }

    /// Overrides the quadrature order/panels of the O(1) estimators.
    pub fn with_quadrature(mut self, order: usize, panels: usize) -> Self {
        self.quad_order = order.max(2);
        self.quad_panels = panels.max(1);
        self
    }

    /// The underlying Random Gate.
    pub fn random_gate(&self) -> &RandomGate {
        &self.rg
    }

    /// The site grid (paper Fig. 4).
    pub fn grid(&self) -> GridGeometry {
        self.grid
    }

    /// The D2D correlation floor `ρ_C`.
    pub fn rho_c(&self) -> f64 {
        self.rho_c
    }

    /// Total length correlation at distance `d`.
    pub fn rho_total(&self, d: f64) -> f64 {
        self.rho_c + (1.0 - self.rho_c) * self.wid.rho(d)
    }

    /// Mean total leakage `n·μ_XI` (Eq. 13), with the Vt correction if
    /// enabled.
    pub fn mean(&self) -> f64 {
        self.chars.n_cells() as f64 * self.rg.mean() * self.vt_factor
    }

    /// Variance de-biasing for the lattice methods: the grid may carry
    /// slightly more sites than the requested cell count.
    fn site_scale(&self) -> f64 {
        let r = self.chars.n_cells() as f64 / self.grid.n_sites() as f64;
        r * r
    }

    /// O(n) estimate (Eq. 17).
    ///
    /// # Errors
    ///
    /// Currently infallible for valid construction; returns `Result` for
    /// interface uniformity with the integral estimators.
    pub fn estimate_linear(&self) -> Result<LeakageEstimate, CoreError> {
        self.estimate_linear_instrumented(Instruments::none())
    }

    /// [`Self::estimate_linear`] reporting to an injected [`Instruments`].
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Self::estimate_linear`].
    pub fn estimate_linear_instrumented(
        &self,
        ins: Instruments<'_>,
    ) -> Result<LeakageEstimate, CoreError> {
        let var = linear_time_variance_instrumented(
            &self.rg,
            &self.grid,
            &|d: f64| self.rho_total(d),
            ins,
        ) * self.site_scale();
        Ok(LeakageEstimate {
            mean: self.mean(),
            variance: var,
            method: EstimatorMethod::Linear,
        })
    }

    /// Tabulates this estimator's Eq. 17 offset/correlation table — the
    /// `(grid, corner)`-addressed artifact `chipleakd` caches so bursts of
    /// histogram-only queries skip the per-offset `ρ` evaluation.
    pub fn correlation_table(&self) -> CorrelationTable {
        CorrelationTable::new(&self.grid, &|d: f64| self.rho_total(d))
    }

    /// O(n) estimate (Eq. 17) replayed from a precomputed
    /// [`CorrelationTable`]; bit-identical to [`Self::estimate_linear`]
    /// by construction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when the table was built
    /// for a different grid shape (the `ρ` values themselves are the
    /// caller's contract — address tables by corner, as `chipleakd` does).
    pub fn estimate_linear_tabulated(
        &self,
        table: &CorrelationTable,
    ) -> Result<LeakageEstimate, CoreError> {
        self.estimate_linear_tabulated_instrumented(table, Instruments::none())
    }

    /// [`Self::estimate_linear_tabulated`] reporting to an injected
    /// [`Instruments`].
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as
    /// [`Self::estimate_linear_tabulated`].
    pub fn estimate_linear_tabulated_instrumented(
        &self,
        table: &CorrelationTable,
        ins: Instruments<'_>,
    ) -> Result<LeakageEstimate, CoreError> {
        if !table.matches(&self.grid) {
            return Err(CoreError::InvalidArgument {
                reason: format!(
                    "correlation table is for a {}x{} grid, estimator uses {}x{}",
                    table.rows(),
                    table.cols(),
                    self.grid.rows(),
                    self.grid.cols()
                ),
            });
        }
        let var =
            linear_time_variance_tabulated_instrumented(&self.rg, table, ins) * self.site_scale();
        Ok(LeakageEstimate {
            mean: self.mean(),
            variance: var,
            method: EstimatorMethod::Linear,
        })
    }

    /// O(1) 2-D rectangular-integral estimate (Eq. 20).
    ///
    /// # Errors
    ///
    /// Currently infallible for valid construction.
    pub fn estimate_integral_2d(&self) -> Result<LeakageEstimate, CoreError> {
        self.estimate_integral_2d_instrumented(Instruments::none())
    }

    /// [`Self::estimate_integral_2d`] reporting to an injected
    /// [`Instruments`].
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Self::estimate_integral_2d`].
    pub fn estimate_integral_2d_instrumented(
        &self,
        ins: Instruments<'_>,
    ) -> Result<LeakageEstimate, CoreError> {
        let var = integral_2d_variance_instrumented(
            &self.rg,
            self.chars.n_cells(),
            self.chars.width(),
            self.chars.height(),
            &|d: f64| self.rho_total(d),
            self.quad_order,
            self.quad_panels,
            ins,
        );
        Ok(LeakageEstimate {
            mean: self.mean(),
            variance: var,
            method: EstimatorMethod::Integral2d,
        })
    }

    /// Runs every applicable estimator and returns the results (the polar
    /// method is skipped when its compact-support precondition fails).
    ///
    /// # Errors
    ///
    /// Propagates failures other than polar inapplicability.
    pub fn estimate_all(&self) -> Result<Vec<LeakageEstimate>, CoreError> {
        self.estimate_all_instrumented(Instruments::none())
    }

    /// [`Self::estimate_all`] reporting to an injected [`Instruments`].
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Self::estimate_all`].
    pub fn estimate_all_instrumented(
        &self,
        ins: Instruments<'_>,
    ) -> Result<Vec<LeakageEstimate>, CoreError> {
        let mut out = vec![
            self.estimate_linear_instrumented(ins)?,
            self.estimate_integral_2d_instrumented(ins)?,
        ];
        match self.estimate_polar_1d_instrumented(ins) {
            Ok(e) => out.push(e),
            Err(CoreError::MethodNotApplicable { .. }) => {
                ins.add("core.estimate_all.polar_skipped", 1);
            }
            Err(e) => return Err(e),
        }
        Ok(out)
    }

    /// O(1) 1-D polar-integral estimate with the D2D split (Eqs. 24–26).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MethodNotApplicable`] if the WID correlation
    /// has no compact support or its radius exceeds `min(W, H)` (paper
    /// §3.2.2 precondition).
    pub fn estimate_polar_1d(&self) -> Result<LeakageEstimate, CoreError> {
        self.estimate_polar_1d_instrumented(Instruments::none())
    }

    /// [`Self::estimate_polar_1d`] reporting to an injected
    /// [`Instruments`].
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Self::estimate_polar_1d`].
    pub fn estimate_polar_1d_instrumented(
        &self,
        ins: Instruments<'_>,
    ) -> Result<LeakageEstimate, CoreError> {
        let var = polar_1d_variance_instrumented(
            &self.rg,
            self.chars.n_cells(),
            self.chars.width(),
            self.chars.height(),
            &self.wid,
            self.rho_c,
            self.quad_order,
            self.quad_panels,
            ins,
        )?;
        Ok(LeakageEstimate {
            mean: self.mean(),
            variance: var,
            method: EstimatorMethod::Polar1d,
        })
    }
}
