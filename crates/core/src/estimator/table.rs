//! Precomputed Eq. 17 correlation tables — the cacheable form of the
//! O(n) distance-multiplicity estimator.
//!
//! [`linear_time_variance`](super::linear_time_variance) walks every grid
//! offset `(i, j)`, computing its pair multiplicity `n_ij` and the total
//! correlation `ρ_total(d_ij)` on the fly. Both depend only on the site
//! grid and the process corner — never on the library or the usage
//! histogram — which makes the per-offset `(n_ij, ρ_ij)` sequence a
//! highly reusable artifact: one table serves every histogram-only query
//! against the same `(grid, corner)` pair. `chipleakd` caches these
//! tables behind content-addressed keys.
//!
//! Bit-identity contract: [`CorrelationTable::new`] visits offsets in
//! exactly the order `linear_time_variance` does, and
//! [`linear_time_variance_tabulated`] replays the identical sequence of
//! floating-point operations (same-site term first, then
//! `n_ij · F(ρ_ij)` per offset into one Kahan accumulator). A tabulated
//! estimate is therefore bit-identical to the untabulated one by
//! construction — pinned by the tests below and `tests/determinism.rs`.

use crate::random_gate::RandomGate;
use leakage_numeric::stats::KahanSum;
use leakage_numeric::Instruments;
use leakage_process::field::GridGeometry;

/// One distinct grid offset: its pair multiplicity and the total channel
/// length correlation at its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableEntry {
    /// Number of ordered site pairs realizing this offset (Eq. 16,
    /// including the ±i/±j symmetry factor).
    pub multiplicity: f64,
    /// `ρ_total(d_ij)` — D2D floor plus within-die decay at the offset
    /// distance.
    pub rho: f64,
}

/// The per-corner Eq. 17 table: every distinct offset of a `k × m` site
/// grid with its multiplicity and total correlation, in the canonical
/// offset order (`i` outer, `j` inner, `(0,0)` excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationTable {
    rows: usize,
    cols: usize,
    entries: Vec<TableEntry>,
}

impl CorrelationTable {
    /// Tabulates the grid's offsets under `rho_total`. The traversal
    /// order matches `linear_time_variance` exactly.
    pub fn new<R: Fn(f64) -> f64>(grid: &GridGeometry, rho_total: &R) -> CorrelationTable {
        let m = grid.cols();
        let k = grid.rows();
        let mut entries = Vec::with_capacity(m * k - 1);
        for i in 0..m {
            for j in 0..k {
                if i == 0 && j == 0 {
                    continue;
                }
                let multiplicity = (m - i) as f64
                    * (k - j) as f64
                    * if i > 0 { 2.0 } else { 1.0 }
                    * if j > 0 { 2.0 } else { 1.0 };
                let d = grid.offset_distance(i as i64, j as i64);
                entries.push(TableEntry {
                    multiplicity,
                    rho: rho_total(d),
                });
            }
        }
        CorrelationTable {
            rows: k,
            cols: m,
            entries,
        }
    }

    /// Grid rows the table was built for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns the table was built for.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of distinct offsets (`rows · cols − 1`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` for the degenerate 1×1 grid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tabulated offsets in canonical order.
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// `true` when the table was built for a grid of this shape.
    pub fn matches(&self, grid: &GridGeometry) -> bool {
        self.rows == grid.rows() && self.cols == grid.cols()
    }
}

/// Eq. 17 variance from a precomputed table: replays the identical
/// floating-point sequence as
/// [`linear_time_variance`](super::linear_time_variance) with the
/// per-offset `ρ` lookups already done.
pub fn linear_time_variance_tabulated(rg: &RandomGate, table: &CorrelationTable) -> f64 {
    linear_time_variance_tabulated_instrumented(rg, table, Instruments::none())
}

/// [`linear_time_variance_tabulated`] reporting to an injected
/// [`Instruments`]: a span over the replay plus offset count and the
/// resulting variance as a value observation.
pub fn linear_time_variance_tabulated_instrumented(
    rg: &RandomGate,
    table: &CorrelationTable,
    ins: Instruments<'_>,
) -> f64 {
    let span = ins.span("core.linear_time_variance_tabulated");
    let n = (table.rows * table.cols) as f64;
    let mut var = KahanSum::new();
    var.add(n * rg.variance());
    for e in &table.entries {
        var.add(e.multiplicity * rg.covariance(e.rho));
    }
    ins.add("core.linear_tabulated.offsets", table.entries.len() as u64);
    ins.record("core.linear_tabulated.variance", var.sum());
    drop(span);
    var.sum()
}

#[cfg(test)]
mod tests {
    use super::super::linear::linear_time_variance;
    use super::*;
    use leakage_cells::corrmap::CorrelationPolicy;
    use leakage_cells::library::CellId;
    use leakage_cells::model::{
        CharacterizedCell, CharacterizedLibrary, LeakageTriplet, StateModel,
    };
    use leakage_cells::UsageHistogram;

    const SIGMA: f64 = 4.5;

    fn rg() -> RandomGate {
        let t1 = LeakageTriplet::new(1e-9, -0.06, 0.0009).unwrap();
        let t2 = LeakageTriplet::new(3e-9, -0.05, 0.0006).unwrap();
        let mk = |id: usize, t: LeakageTriplet| CharacterizedCell {
            id: CellId(id),
            name: format!("cell{id}"),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(SIGMA).unwrap(),
                std: t.std(SIGMA).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let lib = CharacterizedLibrary {
            cells: vec![mk(0, t1), mk(1, t2)],
            l_sigma: SIGMA,
        };
        let hist = UsageHistogram::uniform(2).unwrap();
        RandomGate::new(&lib, &hist, 0.5, CorrelationPolicy::Exact).unwrap()
    }

    fn rho_total(d: f64) -> f64 {
        let rho_c = 0.3;
        let dmax = 40.0;
        rho_c + (1.0 - rho_c) * (1.0 - d / dmax).max(0.0)
    }

    #[test]
    fn tabulated_is_bit_identical_to_direct() {
        let rg = rg();
        for (rows, cols) in [(1usize, 1usize), (1, 7), (5, 5), (13, 9)] {
            let grid = GridGeometry::new(rows, cols, 10.0, 12.5).unwrap();
            let table = CorrelationTable::new(&grid, &rho_total);
            assert_eq!(table.len(), rows * cols - 1);
            assert!(table.matches(&grid));
            let direct = linear_time_variance(&rg, &grid, &rho_total);
            let tabulated = linear_time_variance_tabulated(&rg, &table);
            assert_eq!(
                direct.to_bits(),
                tabulated.to_bits(),
                "{rows}x{cols}: direct {direct} != tabulated {tabulated}"
            );
        }
    }

    #[test]
    fn table_shape_mismatch_is_detectable() {
        let g1 = GridGeometry::new(4, 4, 10.0, 10.0).unwrap();
        let g2 = GridGeometry::new(4, 5, 10.0, 10.0).unwrap();
        let table = CorrelationTable::new(&g1, &rho_total);
        assert!(table.matches(&g1));
        assert!(!table.matches(&g2));
    }

    #[test]
    fn entries_follow_the_canonical_order() {
        let grid = GridGeometry::new(2, 3, 1.0, 1.0).unwrap();
        let table = CorrelationTable::new(&grid, &rho_total);
        // i outer (0..cols), j inner (0..rows), (0,0) skipped: the first
        // entry is (i=0, j=1), multiplicity m·(k−1)·2 = 3·1·2.
        let first = table.entries().first().expect("non-degenerate grid");
        assert_eq!(first.multiplicity, 6.0);
    }
}
