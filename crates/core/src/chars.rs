//! The high-level design characteristics (paper §2.2, Fig. 1).

use crate::error::CoreError;
use leakage_cells::UsageHistogram;
use leakage_process::field::GridGeometry;
use serde::{Deserialize, Serialize};

/// The four high-level characteristics of a candidate design that, per the
/// paper's thesis, suffice to determine its full-chip leakage statistics:
/// cell-usage histogram, cell count, and layout dimensions (the fourth —
/// the characterized library — travels separately because it is shared by
/// all designs in a technology).
///
/// In early mode these are *expected* values from design planning; in late
/// mode they are *extracted* from a netlist/placement (see
/// `leakage-netlist`).
///
/// # Example
///
/// ```
/// use leakage_cells::UsageHistogram;
/// use leakage_core::HighLevelCharacteristics;
///
/// let chars = HighLevelCharacteristics::builder()
///     .histogram(UsageHistogram::uniform(62)?)
///     .n_cells(50_000)
///     .die_dimensions(800.0, 600.0)
///     .signal_probability(0.5)
///     .build()?;
/// assert_eq!(chars.n_cells(), 50_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HighLevelCharacteristics {
    histogram: UsageHistogram,
    n_cells: usize,
    width: f64,
    height: f64,
    signal_probability: f64,
}

impl HighLevelCharacteristics {
    /// Starts a builder.
    pub fn builder() -> HighLevelCharacteristicsBuilder {
        HighLevelCharacteristicsBuilder::default()
    }

    /// The cell-usage histogram (`α` in the paper).
    pub fn histogram(&self) -> &UsageHistogram {
        &self.histogram
    }

    /// The (actual or expected) number of cells `n`.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Die width `W` (µm).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height `H` (µm).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Die area `W·H` (µm²).
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Global signal probability used to weight input states.
    pub fn signal_probability(&self) -> f64 {
        self.signal_probability
    }

    /// The Random-Gate site array for these characteristics (paper Fig. 4):
    /// a `k × m` grid with `k·m ≥ n` sites as close to `n` as possible and
    /// the exact die dimensions.
    ///
    /// # Errors
    ///
    /// Propagates geometry validation failures (cannot occur for values
    /// accepted by the builder).
    pub fn grid(&self) -> Result<GridGeometry, CoreError> {
        Ok(GridGeometry::for_die(
            self.n_cells,
            self.width,
            self.height,
        )?)
    }
}

/// Builder for [`HighLevelCharacteristics`].
#[derive(Debug, Clone)]
pub struct HighLevelCharacteristicsBuilder {
    histogram: Option<UsageHistogram>,
    n_cells: Option<usize>,
    width: Option<f64>,
    height: Option<f64>,
    signal_probability: f64,
}

impl Default for HighLevelCharacteristicsBuilder {
    fn default() -> Self {
        HighLevelCharacteristicsBuilder {
            histogram: None,
            n_cells: None,
            width: None,
            height: None,
            signal_probability: 0.5,
        }
    }
}

impl HighLevelCharacteristicsBuilder {
    /// Sets the usage histogram (required).
    pub fn histogram(mut self, h: UsageHistogram) -> Self {
        self.histogram = Some(h);
        self
    }

    /// Sets the cell count (required, > 0).
    pub fn n_cells(mut self, n: usize) -> Self {
        self.n_cells = Some(n);
        self
    }

    /// Sets the die dimensions in µm (required, positive).
    pub fn die_dimensions(mut self, width: f64, height: f64) -> Self {
        self.width = Some(width);
        self.height = Some(height);
        self
    }

    /// Sets the global signal probability (default 0.5).
    pub fn signal_probability(mut self, p: f64) -> Self {
        self.signal_probability = p;
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for missing or out-of-range
    /// fields.
    pub fn build(self) -> Result<HighLevelCharacteristics, CoreError> {
        let histogram = self.histogram.ok_or_else(|| CoreError::InvalidArgument {
            reason: "usage histogram is required".into(),
        })?;
        let n_cells = self.n_cells.ok_or_else(|| CoreError::InvalidArgument {
            reason: "cell count is required".into(),
        })?;
        if n_cells == 0 {
            return Err(CoreError::InvalidArgument {
                reason: "cell count must be positive".into(),
            });
        }
        let width = self.width.ok_or_else(|| CoreError::InvalidArgument {
            reason: "die dimensions are required".into(),
        })?;
        // chipleak-lint: allow(l5): with_die_size is the only setter and assigns both fields
        let height = self.height.expect("width and height are set together");
        if !(width > 0.0) || !(height > 0.0) || !width.is_finite() || !height.is_finite() {
            return Err(CoreError::InvalidArgument {
                reason: format!("die dimensions must be positive, got {width} x {height}"),
            });
        }
        if !(0.0..=1.0).contains(&self.signal_probability) {
            return Err(CoreError::InvalidArgument {
                reason: format!(
                    "signal probability must be in [0, 1], got {}",
                    self.signal_probability
                ),
            });
        }
        Ok(HighLevelCharacteristics {
            histogram,
            n_cells,
            width,
            height,
            signal_probability: self.signal_probability,
        })
    }
}

impl Default for HighLevelCharacteristics {
    fn default() -> Self {
        HighLevelCharacteristics {
            // chipleak-lint: allow(l5): uniform(1) is infallible for a positive length
            histogram: UsageHistogram::uniform(1).expect("non-empty"),
            n_cells: 1,
            width: 1.0,
            height: 1.0,
            signal_probability: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram() -> UsageHistogram {
        UsageHistogram::uniform(3).unwrap()
    }

    #[test]
    fn builder_happy_path() {
        let c = HighLevelCharacteristics::builder()
            .histogram(histogram())
            .n_cells(1000)
            .die_dimensions(100.0, 50.0)
            .build()
            .unwrap();
        assert_eq!(c.n_cells(), 1000);
        assert_eq!(c.area(), 5000.0);
        assert_eq!(c.signal_probability(), 0.5);
    }

    #[test]
    fn builder_requires_all_fields() {
        assert!(HighLevelCharacteristics::builder().build().is_err());
        assert!(HighLevelCharacteristics::builder()
            .histogram(histogram())
            .build()
            .is_err());
        assert!(HighLevelCharacteristics::builder()
            .histogram(histogram())
            .n_cells(10)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(HighLevelCharacteristics::builder()
            .histogram(histogram())
            .n_cells(0)
            .die_dimensions(10.0, 10.0)
            .build()
            .is_err());
        assert!(HighLevelCharacteristics::builder()
            .histogram(histogram())
            .n_cells(10)
            .die_dimensions(-1.0, 10.0)
            .build()
            .is_err());
        assert!(HighLevelCharacteristics::builder()
            .histogram(histogram())
            .n_cells(10)
            .die_dimensions(10.0, 10.0)
            .signal_probability(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn grid_matches_die() {
        let c = HighLevelCharacteristics::builder()
            .histogram(histogram())
            .n_cells(10_000)
            .die_dimensions(200.0, 200.0)
            .build()
            .unwrap();
        let g = c.grid().unwrap();
        assert!(g.n_sites() >= 10_000);
        assert!(g.n_sites() < 10_300, "site padding stays small");
        assert!((g.width() - 200.0).abs() < 1e-9);
        assert!((g.height() - 200.0).abs() < 1e-9);
    }
}
