//! Full-chip statistical leakage estimation with the Random Gate model.
//!
//! This crate implements the paper's primary contribution: from four
//! *high-level characteristics* of a candidate design —
//!
//! 1. a leakage-characterized cell library,
//! 2. the (actual or expected) cell-usage histogram,
//! 3. the (actual or expected) number of cells, and
//! 4. the dimensions of the layout area,
//!
//! — compute the mean and standard deviation of the full-chip leakage
//! under die-to-die and spatially correlated within-die channel-length
//! variation. Estimators, in increasing efficiency:
//!
//! | method | paper | complexity |
//! |---|---|---|
//! | [`estimator::exact_placed_stats`] | "true leakage" reference | O(n²) |
//! | [`estimator::linear_time_variance`] | Eq. 17 | O(n) |
//! | [`estimator::integral_2d_variance`] | Eq. 20 | O(1) |
//! | [`estimator::polar_1d_variance`] | Eqs. 24–26 | O(1) |
//!
//! # Example
//!
//! ```no_run
//! use leakage_cells::charax::{CharMethod, Characterizer};
//! use leakage_cells::library::CellLibrary;
//! use leakage_cells::UsageHistogram;
//! use leakage_core::{ChipLeakageEstimator, HighLevelCharacteristics};
//! use leakage_process::correlation::TentCorrelation;
//! use leakage_process::Technology;
//!
//! let tech = Technology::cmos90();
//! let lib = CellLibrary::standard_62();
//! let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
//! let chars = HighLevelCharacteristics::builder()
//!     .histogram(UsageHistogram::uniform(62)?)
//!     .n_cells(10_000)
//!     .die_dimensions(400.0, 400.0)
//!     .build()?;
//! let wid = TentCorrelation::new(100.0)?;
//! let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?;
//! let estimate = est.estimate_linear()?;
//! println!("mean {} A, std {} A", estimate.mean, estimate.std());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod chars;
pub mod error;
pub mod estimator;
pub mod leakage_yield;
pub mod pairwise;
pub mod random_gate;

/// Workspace-wide deterministic parallel execution (re-export of
/// [`leakage_numeric::parallel`]): thread-count policy plus the chunked
/// map/reduce primitives every hot path is built on.
pub use leakage_numeric::parallel;

pub use chars::HighLevelCharacteristics;
pub use error::CoreError;
pub use estimator::{
    ChipLeakageEstimator, DegradationReport, LadderStage, LeakageEstimate, PlacedGate,
    PlacementSoA, ResilientEstimate, Tiling,
};
pub use leakage_yield::LeakageDistribution;
pub use parallel::Parallelism;
pub use random_gate::RandomGate;
