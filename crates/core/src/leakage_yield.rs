//! Leakage yield on top of a [`LeakageEstimate`].
//!
//! [`LeakageEstimate`]: crate::LeakageEstimate
//!
//! The estimators deliver the first two moments of total chip leakage.
//! Chip leakage is a sum of many positively correlated lognormal-like
//! terms; standard practice (Wilkinson moment matching, as used throughout
//! the statistical-leakage literature the paper builds on) approximates
//! the total as a lognormal with the same mean and variance. That yields
//! closed-form exceedance probabilities and quantiles — the actual
//! decision quantities ("what leakage budget covers 95 % of dies?") a
//! planner extracts from the model.

use crate::error::CoreError;
use crate::estimator::LeakageEstimate;
use leakage_numeric::special::{normal_cdf, normal_quantile};
use serde::{Deserialize, Serialize};

/// Lognormal approximation of the total-chip leakage distribution,
/// moment-matched to an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageDistribution {
    /// Location parameter of `ln I`.
    mu_log: f64,
    /// Scale parameter of `ln I`.
    sigma_log: f64,
    mean: f64,
    std: f64,
}

impl LeakageDistribution {
    /// Moment-matches a lognormal to an estimate (Wilkinson):
    /// `σ_ln² = ln(1 + σ²/μ²)`, `μ_ln = ln μ − σ_ln²/2`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] if the estimate's mean is
    /// not positive or the variance is negative/non-finite.
    pub fn from_estimate(estimate: &LeakageEstimate) -> Result<Self, CoreError> {
        if !(estimate.mean > 0.0) || !estimate.mean.is_finite() {
            return Err(CoreError::InvalidArgument {
                reason: format!("estimate mean must be positive, got {}", estimate.mean),
            });
        }
        if !(estimate.variance >= 0.0) || !estimate.variance.is_finite() {
            return Err(CoreError::InvalidArgument {
                reason: format!(
                    "estimate variance must be non-negative, got {}",
                    estimate.variance
                ),
            });
        }
        let cv2 = estimate.variance / (estimate.mean * estimate.mean);
        let sigma_log2 = (1.0 + cv2).ln();
        Ok(LeakageDistribution {
            mu_log: estimate.mean.ln() - 0.5 * sigma_log2,
            sigma_log: sigma_log2.sqrt(),
            mean: estimate.mean,
            std: estimate.variance.sqrt(),
        })
    }

    /// Mean of the matched distribution (equals the estimate's mean).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation (equals the estimate's std).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// `P{I_total ≤ budget}` — the leakage yield at a given budget (A).
    ///
    /// Returns 0 for non-positive budgets.
    pub fn yield_at(&self, budget: f64) -> f64 {
        if budget <= 0.0 {
            return 0.0;
        }
        if self.sigma_log == 0.0 {
            return if budget >= self.mean { 1.0 } else { 0.0 };
        }
        normal_cdf((budget.ln() - self.mu_log) / self.sigma_log)
    }

    /// `P{I_total > budget}` — the exceedance probability.
    pub fn exceedance(&self, budget: f64) -> f64 {
        1.0 - self.yield_at(budget)
    }

    /// The leakage budget covering a target yield `q ∈ (0, 1)` — i.e. the
    /// `q`-quantile of total leakage.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly inside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu_log + self.sigma_log * normal_quantile(q)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorMethod;

    fn estimate(mean: f64, std: f64) -> LeakageEstimate {
        LeakageEstimate {
            mean,
            variance: std * std,
            method: EstimatorMethod::Linear,
        }
    }

    #[test]
    fn moment_matching_is_exact() {
        let d = LeakageDistribution::from_estimate(&estimate(2e-3, 4e-4)).unwrap();
        // lognormal mean = exp(μ + σ²/2), var = (exp(σ²)−1)exp(2μ+σ²)
        let m = (d.mu_log + 0.5 * d.sigma_log * d.sigma_log).exp();
        assert!((m - 2e-3).abs() / 2e-3 < 1e-12);
        let v = ((d.sigma_log * d.sigma_log).exp() - 1.0)
            * (2.0 * d.mu_log + d.sigma_log * d.sigma_log).exp();
        assert!((v - 1.6e-7).abs() / 1.6e-7 < 1e-9);
    }

    #[test]
    fn yield_is_monotone_cdf() {
        let d = LeakageDistribution::from_estimate(&estimate(1e-3, 2e-4)).unwrap();
        assert_eq!(d.yield_at(0.0), 0.0);
        assert_eq!(d.yield_at(-1.0), 0.0);
        let mut prev = 0.0;
        for k in 1..=40 {
            let b = k as f64 * 1e-4;
            let y = d.yield_at(b);
            assert!(y >= prev);
            prev = y;
        }
        assert!(d.yield_at(1.0) > 1.0 - 1e-9);
        assert!((d.yield_at(5e-4) + d.exceedance(5e-4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_yield() {
        let d = LeakageDistribution::from_estimate(&estimate(1e-3, 3e-4)).unwrap();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let b = d.quantile(q);
            assert!((d.yield_at(b) - q).abs() < 1e-7, "q {q}");
        }
        // median below mean for a right-skewed lognormal
        assert!(d.quantile(0.5) < d.mean());
    }

    #[test]
    fn small_cv_approaches_normal() {
        let d = LeakageDistribution::from_estimate(&estimate(1.0, 0.001)).unwrap();
        // ~84% below μ+σ for a near-normal distribution
        let y = d.yield_at(1.001);
        assert!((y - 0.841).abs() < 0.01, "y {y}");
    }

    #[test]
    fn rejects_degenerate_estimates() {
        assert!(LeakageDistribution::from_estimate(&estimate(0.0, 1.0)).is_err());
        assert!(LeakageDistribution::from_estimate(&estimate(-1.0, 1.0)).is_err());
        let bad = LeakageEstimate {
            mean: 1.0,
            variance: f64::NAN,
            method: EstimatorMethod::Linear,
        };
        assert!(LeakageDistribution::from_estimate(&bad).is_err());
    }

    #[test]
    fn zero_variance_is_a_step() {
        let d = LeakageDistribution::from_estimate(&estimate(1e-3, 0.0)).unwrap();
        assert_eq!(d.yield_at(2e-3), 1.0);
        assert_eq!(d.yield_at(0.5e-3), 0.0);
    }
}
