//! Observability-layer overhead bench plus the `BENCH_obs.json` metrics
//! record.
//!
//! Two questions, answered on the O(n²) exact estimator and the O(n)
//! linear estimator:
//!
//! 1. Is the `NoopRecorder` default really free? (`baseline` vs `noop`
//!    groups — medians must be statistically indistinguishable.)
//! 2. What does live aggregation cost? (`aggregating` group.)
//!
//! The custom `main` additionally runs one instrumented workload over the
//! whole stack (characterization → pairwise table → estimator ladder →
//! Monte Carlo) against an `AggregatingRecorder`/`WallClock` pair and
//! writes the snapshot — together with a coarse wall-clock overhead
//! comparison — to `BENCH_obs.json` for regression tracking in CI.

use criterion::{black_box, criterion_group, Criterion};
use leakage_bench::{context, Context, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{
    exact_placed_stats_instrumented, exact_placed_stats_with, integral_2d_variance_instrumented,
    linear_time_variance, linear_time_variance_instrumented, polar_1d_variance_instrumented,
};
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::{Parallelism, RandomGate};
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_netlist::PlacedCircuit;
use leakage_numeric::obs::{AggregatingRecorder, WallClock};
use leakage_numeric::Instruments;
use leakage_process::correlation::{SpatialCorrelation, TentCorrelation};
use leakage_process::field::GridGeometry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use std::time::Instant;

const EXACT_GATES: usize = 1_000;
const LINEAR_SIDE: usize = 100;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(context)
}

struct Fixture {
    rg: RandomGate,
    pairwise: PairwiseCovariance,
    placed: PlacedCircuit,
    grid: GridGeometry,
    wid: TentCorrelation,
    rho_c: f64,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ctx = ctx();
        let wid = leakage_bench::wid();
        let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
        let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
            .expect("random gate");
        let pairwise = PairwiseCovariance::new(
            &ctx.charlib,
            &hist.support(),
            SIGNAL_P,
            CorrelationPolicy::Exact,
        )
        .expect("pairwise");
        let mut rng = StdRng::seed_from_u64(EXACT_GATES as u64);
        let circuit = RandomCircuitGenerator::new(hist)
            .generate_exact(EXACT_GATES, &mut rng)
            .expect("gen");
        let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
        let grid = GridGeometry::new(LINEAR_SIDE, LINEAR_SIDE, 3.0, 3.0).expect("grid");
        let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
        Fixture {
            rg,
            pairwise,
            placed,
            grid,
            wid,
            rho_c,
        }
    })
}

fn bench_noop_vs_aggregating(c: &mut Criterion) {
    let fix = fixture();
    let rho_c = fix.rho_c;
    let wid = fix.wid;
    let rho_total = move |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let par = Parallelism::serial();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    group.bench_function("exact_baseline", |b| {
        b.iter(|| {
            exact_placed_stats_with(
                black_box(fix.placed.gates()),
                &fix.pairwise,
                &rho_total,
                par,
            )
        })
    });
    group.bench_function("exact_noop", |b| {
        b.iter(|| {
            exact_placed_stats_instrumented(
                black_box(fix.placed.gates()),
                &fix.pairwise,
                &rho_total,
                par,
                Instruments::none(),
            )
        })
    });
    let recorder = AggregatingRecorder::new();
    let clock = WallClock;
    group.bench_function("exact_aggregating", |b| {
        let ins = Instruments::new(&recorder, &clock);
        b.iter(|| {
            exact_placed_stats_instrumented(
                black_box(fix.placed.gates()),
                &fix.pairwise,
                &rho_total,
                par,
                ins,
            )
        })
    });
    group.bench_function("linear_baseline", |b| {
        b.iter(|| linear_time_variance(&fix.rg, black_box(&fix.grid), &rho_total))
    });
    group.bench_function("linear_noop", |b| {
        b.iter(|| {
            linear_time_variance_instrumented(
                &fix.rg,
                black_box(&fix.grid),
                &rho_total,
                Instruments::none(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_noop_vs_aggregating);

/// Coarse wall-clock median over `reps` runs of `f`, in seconds.
fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Runs the instrumented workload once and writes `BENCH_obs.json`.
fn write_bench_obs_json() {
    let fix = fixture();
    let rho_c = fix.rho_c;
    let wid = fix.wid;
    let rho_total = move |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let par = Parallelism::serial();

    // Overhead record: baseline vs noop-instrumented medians.
    const REPS: usize = 15;
    let base = median_secs(REPS, || {
        let _ = exact_placed_stats_with(fix.placed.gates(), &fix.pairwise, &rho_total, par);
    });
    let noop = median_secs(REPS, || {
        let _ = exact_placed_stats_instrumented(
            fix.placed.gates(),
            &fix.pairwise,
            &rho_total,
            par,
            Instruments::none(),
        );
    });

    // Metrics section: one instrumented pass over the estimator ladder.
    let recorder = AggregatingRecorder::new();
    let clock = WallClock;
    let ins = Instruments::new(&recorder, &clock);
    let _ =
        exact_placed_stats_instrumented(fix.placed.gates(), &fix.pairwise, &rho_total, par, ins);
    let _ = linear_time_variance_instrumented(&fix.rg, &fix.grid, &rho_total, ins);
    let n = fix.grid.n_sites();
    let _ = integral_2d_variance_instrumented(
        &fix.rg,
        n,
        fix.grid.width(),
        fix.grid.height(),
        &rho_total,
        32,
        8,
        ins,
    );
    let _ = polar_1d_variance_instrumented(
        &fix.rg,
        n,
        fix.grid.width(),
        fix.grid.height(),
        &fix.wid,
        fix.rho_c,
        64,
        16,
        ins,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"exact_gates\": {EXACT_GATES},\n  \"overhead\": {{\"baseline_median_s\": {base:.6}, \
         \"noop_median_s\": {noop:.6}, \"noop_over_baseline\": {:.4}}},\n",
        noop / base
    ));
    json.push_str("  \"metrics\": ");
    json.push_str(&recorder.snapshot().to_json_string());
    json.push_str("\n}\n");
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    eprintln!("wrote BENCH_obs.json (noop/baseline = {:.4})", noop / base);
}

fn main() {
    leakage_bench::apply_threads_flag();
    benches();
    write_bench_obs_json();
}
