//! Experiment E8 (§3.2.3 runtime claims): wall-clock scaling of the
//! estimators — O(n²) exact, O(n) linear, O(1) 2-D integral, O(1) polar.
//!
//! Paper reference: the O(n) algorithm runs in under a second below 1,000
//! gates; the integral methods are size-independent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leakage_bench::{context, Context, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{
    exact_placed_stats, exact_placed_stats_with, integral_2d_variance, linear_time_variance,
    polar_1d_variance,
};
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::{Parallelism, RandomGate};
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_process::correlation::{SpatialCorrelation, TentCorrelation};
use leakage_process::field::GridGeometry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(context)
}

fn wid() -> TentCorrelation {
    leakage_bench::wid()
}

fn bench_linear_vs_integral(c: &mut Criterion) {
    let ctx = ctx();
    let wid = wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = move |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).unwrap();
    let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact).unwrap();

    let mut group = c.benchmark_group("variance_estimators");
    for side in [10usize, 32, 100, 316] {
        let n = side * side;
        let grid = GridGeometry::new(side, side, 3.0, 3.0).unwrap();
        group.bench_with_input(BenchmarkId::new("linear_O(n)", n), &grid, |b, grid| {
            b.iter(|| linear_time_variance(&rg, grid, &rho_total))
        });
        group.bench_with_input(BenchmarkId::new("integral2d_O(1)", n), &grid, |b, grid| {
            b.iter(|| integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 32, 8))
        });
        group.bench_with_input(BenchmarkId::new("polar1d_O(1)", n), &grid, |b, grid| {
            b.iter(|| polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 64, 16))
        });
    }
    group.finish();
}

fn bench_exact_reference(c: &mut Criterion) {
    let ctx = ctx();
    let wid = wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = move |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).unwrap();
    let generator = RandomCircuitGenerator::new(hist.clone());
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &hist.support(),
        SIGNAL_P,
        CorrelationPolicy::Exact,
    )
    .unwrap();

    let mut group = c.benchmark_group("exact_placed_O(n2)");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let circuit = generator.generate_exact(n, &mut rng).unwrap();
        let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &placed, |b, placed| {
            b.iter(|| exact_placed_stats(placed.gates(), &pairwise, &rho_total))
        });
    }
    group.finish();
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let ctx = ctx();
    let wid = wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = move |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).unwrap();
    let generator = RandomCircuitGenerator::new(hist.clone());
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &hist.support(),
        SIGNAL_P,
        CorrelationPolicy::Exact,
    )
    .unwrap();

    let mut thread_counts = vec![1usize, 2, Parallelism::auto().thread_count()];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut group = c.benchmark_group("serial_vs_parallel");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let circuit = generator.generate_exact(n, &mut rng).unwrap();
        let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).unwrap();
        for &threads in &thread_counts {
            let par = Parallelism::threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("exact_{n}_gates"), threads),
                &placed,
                |b, placed| {
                    b.iter(|| exact_placed_stats_with(placed.gates(), &pairwise, &rho_total, par))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_linear_vs_integral,
    bench_exact_reference,
    bench_serial_vs_parallel
);
criterion_main!(benches);
