//! Benchmarks of the correlated-field samplers backing the Monte-Carlo
//! engine: Cholesky vs FFT circulant embedding as the grid grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leakage_process::correlation::ExponentialCorrelation;
use leakage_process::field::{
    CholeskyFieldSampler, CirculantFieldSampler, FieldSampler, GridGeometry,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_setup(c: &mut Criterion) {
    let corr = ExponentialCorrelation::new(30.0).unwrap();
    let mut group = c.benchmark_group("field_sampler_setup");
    group.sample_size(10);
    for side in [8usize, 16, 32] {
        let grid = GridGeometry::new(side, side, 3.0, 3.0).unwrap();
        group.bench_with_input(
            BenchmarkId::new("cholesky", side * side),
            &grid,
            |b, grid| b.iter(|| CholeskyFieldSampler::new(*grid, &corr, 1.0).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("circulant", side * side),
            &grid,
            |b, grid| b.iter(|| CirculantFieldSampler::new(*grid, &corr, 1.0).unwrap()),
        );
    }
    group.finish();
}

fn bench_draws(c: &mut Criterion) {
    let corr = ExponentialCorrelation::new(30.0).unwrap();
    let mut group = c.benchmark_group("field_sample_draw");
    for side in [16usize, 64, 128] {
        let grid = GridGeometry::new(side, side, 3.0, 3.0).unwrap();
        let circ = CirculantFieldSampler::new(grid, &corr, 1.0).unwrap();
        group.bench_with_input(
            BenchmarkId::new("circulant_pair", side * side),
            &circ,
            |b, s| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| s.sample_two(&mut rng))
            },
        );
        if side <= 16 {
            let chol = CholeskyFieldSampler::new(grid, &corr, 1.0).unwrap();
            group.bench_with_input(BenchmarkId::new("cholesky", side * side), &chol, |b, s| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| s.sample(&mut rng))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_setup, bench_draws);
criterion_main!(benches);
