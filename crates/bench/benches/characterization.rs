//! Benchmarks of the cell-characterization paths: DC solves, analytical
//! fitting vs Monte-Carlo sampling, and Random Gate kernel construction —
//! the cost trade-off discussed in §2.1.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leakage_bench::{context, Context, SIGNAL_P};
use leakage_cells::charax::Characterizer;
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::RandomGate;
use leakage_sim::LeakageSolver;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(context)
}

fn bench_dc_solve(c: &mut Criterion) {
    let ctx = ctx();
    let solver = LeakageSolver::new(&ctx.tech);
    let mut group = c.benchmark_group("dc_solve");
    for name in ["inv_x1", "nand4_x1", "dff_x1", "fulladder_x1"] {
        let cell = ctx.lib.cell_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cell, |b, cell| {
            b.iter(|| solver.cell_leakage(cell.netlist(), 0, 0.0, 0.0).unwrap())
        });
    }
    group.finish();
}

fn bench_characterization_paths(c: &mut Criterion) {
    let ctx = ctx();
    let charax = Characterizer::new(&ctx.tech);
    let nand3 = ctx.lib.cell_by_name("nand3_x1").unwrap();
    let mut group = c.benchmark_group("characterize_nand3_state0");
    group.bench_function("analytical_fit_13pt", |b| {
        b.iter(|| charax.fit_state(nand3.netlist(), 0, 13).unwrap())
    });
    group.bench_function("mc_10k_samples", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            charax
                .mc_state(nand3.netlist(), 0, 10_000, &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_random_gate_kernel(c: &mut Criterion) {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(ctx.lib.len()).unwrap();
    let mut group = c.benchmark_group("random_gate_build");
    group.sample_size(10);
    group.bench_function("exact_kernel_62_cells", |b| {
        b.iter(|| RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact).unwrap())
    });
    group.bench_function("simplified_kernel_62_cells", |b| {
        b.iter(|| {
            RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Simplified).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dc_solve,
    bench_characterization_paths,
    bench_random_gate_kernel
);
criterion_main!(benches);
