//! Benchmarks of the full-chip Monte-Carlo engine: per-trial cost vs
//! design size, and circulant vs quadtree field backends — the cost the
//! analytical Random Gate model eliminates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leakage_bench::{context, Context, SIGNAL_P};
use leakage_cells::UsageHistogram;
use leakage_core::Parallelism;
use leakage_montecarlo::{ChipSamplerBuilder, QuadtreeChipSampler};
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_netlist::PlacedCircuit;
use leakage_process::hierarchical::QuadtreeCorrelation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn ctx() -> &'static Context {
    static CTX: OnceLock<Context> = OnceLock::new();
    CTX.get_or_init(context)
}

fn design(n: usize) -> PlacedCircuit {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(ctx.lib.len()).unwrap();
    let mut rng = StdRng::seed_from_u64(n as u64);
    let circuit = RandomCircuitGenerator::new(hist)
        .generate_exact(n, &mut rng)
        .unwrap();
    place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).unwrap()
}

fn bench_chip_trial(c: &mut Criterion) {
    let ctx = ctx();
    let wid = leakage_bench::wid();
    let mut group = c.benchmark_group("chip_mc_trial");
    for n in [400usize, 1600, 6400] {
        let placed = design(n);
        let sampler = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &wid)
            .signal_probability(SIGNAL_P)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("circulant_field", n), &sampler, |b, s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| s.sample(&mut rng))
        });
        let quadtree = QuadtreeCorrelation::standard(placed.width(), placed.height()).unwrap();
        let qs = QuadtreeChipSampler::new(
            &placed,
            &ctx.charlib,
            quadtree,
            ctx.tech.l_variation().total_sigma(),
            SIGNAL_P,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("quadtree_field", n), &qs, |b, s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| s.sample(&mut rng))
        });
    }
    group.finish();
}

fn bench_serial_vs_parallel(c: &mut Criterion) {
    let ctx = ctx();
    let wid = leakage_bench::wid();
    // Trials per measured iteration: enough pairs to fill every worker's
    // chunk queue, small enough for criterion's sampling budget.
    const TRIALS: usize = 128;

    let mut thread_counts = vec![1usize, 2, Parallelism::auto().thread_count()];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut group = c.benchmark_group("serial_vs_parallel");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        let placed = design(n);
        let sampler = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &wid)
            .signal_probability(SIGNAL_P)
            .build()
            .unwrap();
        for &threads in &thread_counts {
            let par = Parallelism::threads(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("mc_{n}_gates"), threads),
                &sampler,
                |b, s| b.iter(|| s.run_seeded_with(TRIALS, 7, par)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chip_trial, bench_serial_vs_parallel);
criterion_main!(benches);
