//! Experiment E3 (Fig. 3, §2.1.4): design mean leakage vs global signal
//! probability for several usage histograms, plus the conservative
//! max-finding search.
//!
//! Paper reference: the effect of signal probability on large-circuit
//! leakage is muted (unlike the up-to-10× spread of single gates), and
//! depends on the cell mix; the maximizing setting is used as a
//! conservative estimate.

use leakage_bench::{context, print_table, sci};
use leakage_cells::state::{design_stats_at_probability, max_mean_signal_probability};
use leakage_cells::UsageHistogram;
use leakage_netlist::iscas85::{spec_histogram, TABLE1_SPECS};

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();

    let uniform = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty library");
    let control = spec_histogram(
        TABLE1_SPECS
            .iter()
            .find(|s| s.name == "c880")
            .expect("c880"),
        &ctx.lib,
    )
    .expect("control mix");
    let xor_rich = spec_histogram(
        TABLE1_SPECS
            .iter()
            .find(|s| s.name == "c499")
            .expect("c499"),
        &ctx.lib,
    )
    .expect("xor mix");
    let mult = spec_histogram(
        TABLE1_SPECS
            .iter()
            .find(|s| s.name == "c6288")
            .expect("c6288"),
        &ctx.lib,
    )
    .expect("multiplier mix");

    let histograms = [
        ("uniform-62", &uniform),
        ("control (c880 mix)", &control),
        ("xor-rich (c499 mix)", &xor_rich),
        ("multiplier (c6288 mix)", &mult),
    ];

    let mut rows = Vec::new();
    for k in 0..=10 {
        let p = k as f64 / 10.0;
        let mut row = vec![format!("{p:.1}")];
        for (_, h) in &histograms {
            let (mean, _) = design_stats_at_probability(&ctx.charlib, h, p).expect("stats");
            row.push(sci(mean));
        }
        rows.push(row);
    }
    print_table(
        "E3 / Fig. 3: per-gate mean leakage (A) vs global signal probability",
        &[
            "p",
            "uniform-62",
            "control (c880)",
            "xor-rich (c499)",
            "multiplier (c6288)",
        ],
        &rows,
    );

    let mut opt_rows = Vec::new();
    for (name, h) in &histograms {
        let opt = max_mean_signal_probability(&ctx.charlib, h, 101).expect("search");
        let (at_half, _) = design_stats_at_probability(&ctx.charlib, h, 0.5).expect("stats");
        opt_rows.push(vec![
            (*name).to_owned(),
            format!("{:.2}", opt.p),
            sci(opt.mean),
            format!("{:.2}%", (opt.mean / at_half - 1.0) * 100.0),
        ]);
    }
    print_table(
        "E3: conservative signal-probability optimum per histogram",
        &["histogram", "p*", "mean at p*", "vs p = 0.5"],
        &opt_rows,
    );
}
