//! Experiment E2 (Fig. 2): leakage correlation vs channel-length
//! correlation, Monte-Carlo against the analytical `f_{m,n}` mapping.
//!
//! Paper reference: both curves hug the `y = x` line; the analytical
//! technique matches MC closely for all gate pairs.

use leakage_bench::{context, print_table};
use leakage_cells::charax::Characterizer;
use leakage_cells::corrmap::state_leakage_correlation;
use leakage_montecarlo::pair::pair_leakage_correlation_mc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let charax = Characterizer::new(&ctx.tech);
    let sigma = ctx.charlib.l_sigma;

    // Representative gate pairs spanning weak/strong stacks.
    let pairs = [
        ("inv_x1", 0u32, "nand2_x1", 0u32),
        ("nand4_x1", 0, "nor4_x1", 0b1111),
        ("dff_x1", 0b01, "sram6t", 1),
    ];

    for (name_a, state_a, name_b, state_b) in pairs {
        let cell_a = ctx.lib.cell_by_name(name_a).expect("known cell");
        let cell_b = ctx.lib.cell_by_name(name_b).expect("known cell");
        let curve_a = charax
            .tabulate_state(cell_a.netlist(), state_a, 61)
            .expect("tabulation");
        let curve_b = charax
            .tabulate_state(cell_b.netlist(), state_b, 61)
            .expect("tabulation");
        let ta = ctx.charlib.cell(cell_a.id()).unwrap().states[state_a as usize]
            .triplet
            .expect("analytical characterization");
        let tb = ctx.charlib.cell(cell_b.id()).unwrap().states[state_b as usize]
            .triplet
            .expect("analytical characterization");

        let mut rows = Vec::new();
        let mut rng = StdRng::seed_from_u64(0xF162);
        for k in 0..=10 {
            let rho = k as f64 / 10.0;
            let analytic = state_leakage_correlation(&ta, &tb, sigma, rho).expect("mapping");
            let mc = pair_leakage_correlation_mc(&curve_a, &curve_b, sigma, rho, 60_000, &mut rng)
                .expect("mc");
            rows.push(vec![
                format!("{rho:.1}"),
                format!("{mc:.4}"),
                format!("{analytic:.4}"),
                format!("{:+.4}", analytic - rho),
            ]);
        }
        print_table(
            &format!("E2 / Fig. 2: {name_a}[{state_a:b}] vs {name_b}[{state_b:b}]"),
            &["ρ_L", "MC ρ_leak", "analytic ρ_leak", "analytic − y=x"],
            &rows,
        );
    }
}
