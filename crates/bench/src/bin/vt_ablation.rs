//! Experiment E9 (§2.1 ablation): the full-chip variance contribution of
//! independent RDF Vt variation vanishes with gate count, while the
//! correlated-L contribution does not — the quantitative basis for the
//! paper's decision to track L only for the variance and fold Vt into a
//! mean multiplier.

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::model::vt_mean_multiplier;
use leakage_cells::UsageHistogram;
use leakage_montecarlo::ChipSamplerBuilder;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_process::ParameterVariation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let wid = leakage_bench::wid();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let generator = RandomCircuitGenerator::new(hist);
    let trials = 2000;

    // A "frozen L" technology isolates the Vt-only variance.
    let frozen_l = ctx
        .tech
        .clone()
        .with_l_variation(ParameterVariation::new(90.0, 1e-9, 1e-9).expect("budget"))
        .expect("tech");

    let mut rows = Vec::new();
    for n in [25usize, 100, 400, 1600, 6400] {
        let mut rng = StdRng::seed_from_u64(0xA9 ^ n as u64);
        let circuit = generator.generate_exact(n, &mut rng).expect("generation");
        let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("placement");

        let l_only = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &wid)
            .signal_probability(SIGNAL_P)
            .build()
            .expect("sampler")
            .run(trials, &mut rng);
        let vt_only = ChipSamplerBuilder::new(&placed, &ctx.charlib, &frozen_l, &wid)
            .signal_probability(SIGNAL_P)
            .sample_vt(true)
            .build()
            .expect("sampler")
            .run(trials, &mut rng);
        let both = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &wid)
            .signal_probability(SIGNAL_P)
            .sample_vt(true)
            .build()
            .expect("sampler")
            .run(trials, &mut rng);

        rows.push(vec![
            n.to_string(),
            format!("{:.3}%", 100.0 * l_only.sample_std() / l_only.mean()),
            format!("{:.3}%", 100.0 * vt_only.sample_std() / vt_only.mean()),
            format!("{:.3}%", 100.0 * both.sample_std() / both.mean()),
            format!("{:.4}", vt_only.mean() / l_only.mean()),
        ]);
        eprintln!("n = {n} done");
    }
    print_table(
        "E9: σ/μ of full-chip leakage — correlated L vs independent Vt",
        &["gates", "L only", "Vt only", "L + Vt", "Vt mean lift"],
        &rows,
    );
    let n_avg = 0.5 * (ctx.tech.nmos().n_factor + ctx.tech.pmos().n_factor);
    println!(
        "analytic Vt mean multiplier: {:.4} (vs the 'Vt mean lift' column)",
        vt_mean_multiplier(ctx.tech.vt_sigma(), n_avg, ctx.tech.thermal_voltage())
    );
    println!("paper: Vt variance is negligible for large n; only the mean multiplier survives");
}
