//! Experiment E7 (Fig. 7, §3.2.3): % error of the O(1) numerical
//! integration against the O(n) linear-time algorithm versus circuit size.
//!
//! Paper reference: > 1 % below ~100 gates (site granularity), < 0.1 %
//! for large designs, < 0.01 % above ten thousand gates.

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{integral_2d_variance, linear_time_variance, polar_1d_variance};
use leakage_core::RandomGate;
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::GridGeometry;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);

    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
        .expect("random gate");

    // Same die family as Fig. 6/7: ~3 µm pitch, square.
    let mut rows = Vec::new();
    for side in [4usize, 7, 10, 22, 32, 71, 100, 224, 316, 1000] {
        let n = side * side;
        let pitch = 3.0;
        let grid = GridGeometry::new(side, side, pitch, pitch).expect("grid");
        let v_lin = linear_time_variance(&rg, &grid, &rho_total);
        let v_2d = integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 32, 8);
        let err_2d = ((v_2d.sqrt() / v_lin.sqrt()) - 1.0).abs() * 100.0;
        let polar = polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 64, 16);
        let err_1d = polar
            .map(|v| format!("{:.4}%", ((v.sqrt() / v_lin.sqrt()) - 1.0).abs() * 100.0))
            .unwrap_or_else(|_| "n/a (D_max > min(W,H))".to_owned());
        rows.push(vec![
            n.to_string(),
            format!("{:.4e}", v_lin.sqrt()),
            format!("{err_2d:.4}%"),
            err_1d,
        ]);
        eprintln!("n = {n} done");
    }
    print_table(
        "E7 / Fig. 7: % std error of O(1) integration vs O(n) linear sum",
        &["gates", "σ linear (A)", "2-D integral err", "1-D polar err"],
        &rows,
    );
}
