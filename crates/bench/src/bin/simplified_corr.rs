//! Experiment E6 (§3.1.2): error introduced by the simplified correlation
//! assumption `ρ_{m,n} = ρ_L` relative to the exact `f_{m,n}` mapping.
//!
//! Paper reference: the percentage error in the full-chip std is below
//! 2.8 %, whether variations are WID-only or WID + D2D.

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::{ChipLeakageEstimator, HighLevelCharacteristics};
use leakage_process::ParameterVariation;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let wid = leakage_bench::wid();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");

    let l_total = ctx.tech.l_variation().total_sigma();
    let wid_only = ParameterVariation::from_total(90.0, l_total, 0.0).expect("budget");
    let scenarios = [
        (
            "WID only",
            ctx.tech.clone().with_l_variation(wid_only).expect("tech"),
        ),
        ("WID + D2D", ctx.tech.clone()),
    ];

    let mut rows = Vec::new();
    for n in [400usize, 2500, 10_000] {
        for (label, tech) in &scenarios {
            let side = (n as f64).sqrt() * 3.0; // ~3 µm pitch die
            let chars = HighLevelCharacteristics::builder()
                .histogram(hist.clone())
                .n_cells(n)
                .die_dimensions(side, side)
                .signal_probability(SIGNAL_P)
                .build()
                .expect("characteristics");
            let exact = ChipLeakageEstimator::with_policy(
                &ctx.charlib,
                tech,
                chars.clone(),
                &wid,
                CorrelationPolicy::Exact,
            )
            .expect("estimator")
            .estimate_linear()
            .expect("estimate");
            let simple = ChipLeakageEstimator::with_policy(
                &ctx.charlib,
                tech,
                chars,
                &wid,
                CorrelationPolicy::Simplified,
            )
            .expect("estimator")
            .estimate_linear()
            .expect("estimate");
            let err = (simple.std() / exact.std() - 1.0) * 100.0;
            rows.push(vec![
                n.to_string(),
                (*label).to_owned(),
                format!("{:.4e}", exact.std()),
                format!("{:.4e}", simple.std()),
                format!("{err:+.2}%"),
            ]);
        }
    }
    print_table(
        "E6 / §3.1.2: simplified ρ_{m,n} = ρ_L vs exact mapping (paper: < 2.8%)",
        &[
            "gates",
            "variations",
            "exact σ (A)",
            "simplified σ (A)",
            "err",
        ],
        &rows,
    );
}
