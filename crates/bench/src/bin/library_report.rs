//! Library overview report: per-class leakage statistics of the
//! characterized 62-cell library — the "standard cell library information"
//! input of the paper's Fig. 1, in human-readable form.

use leakage_bench::{context, print_table, sci};
use leakage_cells::library::CellClass;
use leakage_cells::state::state_probabilities;
use std::collections::BTreeMap;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();

    // Per-cell mixture stats at p = 0.5.
    let mut per_class: BTreeMap<String, Vec<(String, f64, f64, f64)>> = BTreeMap::new();
    for cell in ctx.lib.cells() {
        let model = ctx.charlib.cell(cell.id()).expect("characterized");
        let probs = state_probabilities(cell.n_inputs(), 0.5).expect("probs");
        let (mean, std) = model.mixture_stats(&probs).expect("stats");
        let state_spread = {
            let lo = model
                .states
                .iter()
                .map(|s| s.mean)
                .fold(f64::INFINITY, f64::min);
            let hi = model.states.iter().map(|s| s.mean).fold(0.0_f64, f64::max);
            hi / lo
        };
        per_class
            .entry(format!("{:?}", cell.class()))
            .or_default()
            .push((cell.name().to_owned(), mean, std, state_spread));
    }

    let mut rows = Vec::new();
    for (class, cells) in &per_class {
        let n = cells.len();
        let mean_avg = cells.iter().map(|c| c.1).sum::<f64>() / n as f64;
        let rel_sigma = cells.iter().map(|c| c.2 / c.1).sum::<f64>() / n as f64;
        let spread = cells.iter().map(|c| c.3).fold(0.0_f64, f64::max);
        rows.push(vec![
            class.clone(),
            n.to_string(),
            sci(mean_avg),
            format!("{:.1}%", rel_sigma * 100.0),
            format!("{spread:.1}x"),
        ]);
    }
    print_table(
        "library report: per-class leakage at p = 0.5",
        &[
            "class",
            "cells",
            "avg mean (A)",
            "avg σ/μ",
            "max state spread",
        ],
        &rows,
    );

    // Leakiest and quietest cells.
    let mut all: Vec<(String, f64)> = ctx
        .lib
        .cells()
        .iter()
        .map(|cell| {
            let model = ctx.charlib.cell(cell.id()).expect("characterized");
            let probs = state_probabilities(cell.n_inputs(), 0.5).expect("probs");
            let (mean, _) = model.mixture_stats(&probs).expect("stats");
            (cell.name().to_owned(), mean)
        })
        .collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let top: Vec<Vec<String>> = all
        .iter()
        .take(5)
        .map(|(n, m)| vec![n.clone(), sci(*m)])
        .collect();
    let bottom: Vec<Vec<String>> = all
        .iter()
        .rev()
        .take(5)
        .map(|(n, m)| vec![n.clone(), sci(*m)])
        .collect();
    print_table("five leakiest cells", &["cell", "mean (A)"], &top);
    print_table("five quietest cells", &["cell", "mean (A)"], &bottom);
    let _ = CellClass::Inverter; // referenced for doc purposes
}
