//! Ablation A2 (DESIGN.md §6): quadrature order/panel sweep for the O(1)
//! estimators — how cheap can the constant-time integral get before its
//! own error exceeds the model error?

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{integral_2d_variance, linear_time_variance, polar_1d_variance};
use leakage_core::RandomGate;
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::GridGeometry;
use std::time::Instant;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
        .expect("random gate");

    let grid = GridGeometry::new(316, 316, 1.0, 1.0).expect("grid"); // ~100k gates
    let n = grid.n_sites();
    let reference = linear_time_variance(&rg, &grid, &rho_total).sqrt();

    let mut rows = Vec::new();
    for (order, panels) in [(4usize, 1usize), (8, 1), (8, 4), (16, 4), (32, 8), (64, 16)] {
        let t0 = Instant::now();
        let v2d = integral_2d_variance(
            &rg,
            n,
            grid.width(),
            grid.height(),
            &rho_total,
            order,
            panels,
        )
        .sqrt();
        let t_2d = t0.elapsed();
        let t0 = Instant::now();
        let v1d = polar_1d_variance(
            &rg,
            n,
            grid.width(),
            grid.height(),
            &wid,
            rho_c,
            order,
            panels,
        )
        .expect("polar applies")
        .sqrt();
        let t_1d = t0.elapsed();
        rows.push(vec![
            format!("{order}x{panels}"),
            format!("{:+.4}%", (v2d / reference - 1.0) * 100.0),
            format!("{:.1} µs", t_2d.as_secs_f64() * 1e6),
            format!("{:+.4}%", (v1d / reference - 1.0) * 100.0),
            format!("{:.1} µs", t_1d.as_secs_f64() * 1e6),
        ]);
    }
    print_table(
        "A2: quadrature order/panels vs σ error (reference: O(n) sum, ~100k gates)",
        &[
            "order×panels",
            "2-D err",
            "2-D time",
            "polar err",
            "polar time",
        ],
        &rows,
    );
    println!(
        "the kinked tent correlation needs panels (composite rule); beyond 16x4 the \
         quadrature error is far below the model error, at microseconds of cost"
    );
}
