//! Experiment E5 (Table 1, §3.1.1): late-mode estimation on the ISCAS85
//! suite — extract the high-level characteristics from each placed
//! benchmark, estimate with the RG model, and compare against the true
//! (O(n²)) leakage.
//!
//! Paper reference errors in the std: c499 1.04 %, c1355 0.41 %, c432
//! 1.14 %, c1908 0.36 %, c880 0.74 %, c2670 0.52 %, c5315 0.23 %, c7552
//! 0.34 %, c6288 1.38 % (mean errors "truly negligible").

use leakage_bench::{context, print_table, sci, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_core::estimator::exact_placed_stats;
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::ChipLeakageEstimator;
use leakage_netlist::extract::extract_characteristics;
use leakage_netlist::iscas85::build_suite;
use leakage_process::correlation::SpatialCorrelation;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);

    let suite = build_suite(&ctx.lib).expect("iscas85 suite");
    let paper = [
        ("c499", 1.04),
        ("c1355", 0.41),
        ("c432", 1.14),
        ("c1908", 0.36),
        ("c880", 0.74),
        ("c2670", 0.52),
        ("c5315", 0.23),
        ("c7552", 0.34),
        ("c6288", 1.38),
    ];

    let mut rows = Vec::new();
    for placed in &suite {
        // Late mode: characteristics are *extracted* from the placement.
        let chars = extract_characteristics(placed, ctx.lib.len(), SIGNAL_P).expect("extraction");
        let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, &wid)
            .expect("estimator")
            .estimate_linear()
            .expect("linear estimate");

        // True leakage of the specific placed design.
        let pairwise = PairwiseCovariance::new(
            &ctx.charlib,
            &placed.support(),
            SIGNAL_P,
            CorrelationPolicy::Exact,
        )
        .expect("pairwise tables");
        let truth = exact_placed_stats(placed.gates(), &pairwise, &rho_total);

        let std_err = (est.std() / truth.std() - 1.0).abs() * 100.0;
        let mean_err = (est.mean / truth.mean - 1.0).abs() * 100.0;
        let paper_err = paper
            .iter()
            .find(|(n, _)| *n == placed.name())
            .map(|(_, e)| format!("{e:.2}%"))
            .unwrap_or_default();
        rows.push(vec![
            placed.name().to_owned(),
            placed.n_gates().to_string(),
            sci(truth.std()),
            sci(est.std()),
            format!("{std_err:.2}%"),
            paper_err,
            format!("{mean_err:.3}%"),
        ]);
        eprintln!("{} done", placed.name());
    }
    print_table(
        "E5 / Table 1: % error in full-chip std, ISCAS85 (RG vs true leakage)",
        &[
            "circuit",
            "gates",
            "true σ (A)",
            "RG σ (A)",
            "σ err",
            "paper σ err",
            "μ err",
        ],
        &rows,
    );
}
