//! Experiment E8 companion: a plain wall-clock table of the estimator
//! ladder — O(n²) exact, O(n) linear, O(1) integral — versus design size
//! (the paper's §3.2.3 runtime discussion; Criterion benches give the
//! rigorous statistics, this prints the headline table).
//!
//! The exact estimator and the Monte-Carlo engine are timed both serially
//! and with the session thread budget (`--threads N`, default all cores);
//! the speedup columns quantify the parallel execution layer. The
//! machine-readable record (`BENCH_parallel.json`) is owned by the
//! `scaling` binary, which also covers the tiled kernel and its thread
//! sweep — this binary prints the human ladder table only.

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{
    exact_placed_stats_with, integral_2d_variance, linear_time_variance, polar_1d_variance,
};
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::{Parallelism, RandomGate};
use leakage_montecarlo::ChipSamplerBuilder;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::GridGeometry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const MC_TRIALS: usize = 10_000;
const MC_SEED: u64 = 1234;

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

fn main() {
    let par = leakage_bench::apply_threads_flag();
    let threads = par.thread_count();
    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
        .expect("random gate");
    let generator = RandomCircuitGenerator::new(hist.clone());
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &hist.support(),
        SIGNAL_P,
        CorrelationPolicy::Exact,
    )
    .expect("pairwise");

    let mut rows = Vec::new();
    for side in [10usize, 32, 100, 316, 1000] {
        let n = side * side;
        let grid = GridGeometry::new(side, side, 3.0, 3.0).expect("grid");

        // O(n²) on a real placed design — only up to 10k gates.
        let (exact_serial, exact_parallel, exact_speedup) = if n <= 10_000 {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let circuit = generator.generate_exact(n, &mut rng).expect("gen");
            let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
            let t0 = Instant::now();
            let serial = exact_placed_stats_with(
                placed.gates(),
                &pairwise,
                &rho_total,
                Parallelism::serial(),
            );
            let ts = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let parallel = exact_placed_stats_with(placed.gates(), &pairwise, &rho_total, par);
            let tp = t0.elapsed().as_secs_f64();
            assert_eq!(
                serial.variance.to_bits(),
                parallel.variance.to_bits(),
                "parallel exact estimate must be bit-identical to serial"
            );
            (fmt_time(ts), fmt_time(tp), format!("{:.2}x", ts / tp))
        } else {
            (
                "(skipped)".to_owned(),
                "(skipped)".to_owned(),
                "-".to_owned(),
            )
        };

        let t0 = Instant::now();
        let _ = linear_time_variance(&rg, &grid, &rho_total);
        let linear_time = fmt_time(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let _ = integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 32, 8);
        let int2d_time = fmt_time(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let polar_result =
            polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 64, 16);
        let polar_time = match polar_result {
            Ok(_) => fmt_time(t0.elapsed().as_secs_f64()),
            Err(_) => "n/a".to_owned(),
        };

        rows.push(vec![
            n.to_string(),
            exact_serial,
            exact_parallel,
            exact_speedup,
            linear_time,
            int2d_time,
            polar_time,
        ]);
        eprintln!("n = {n} done");
    }
    print_table(
        &format!(
            "E8: wall-clock of the estimator ladder (single run, release build, \
             {threads} threads)"
        ),
        &[
            "gates",
            "exact serial",
            "exact parallel",
            "speedup",
            "linear O(n)",
            "2-D O(1)",
            "polar O(1)",
        ],
        &rows,
    );

    // Monte-Carlo engine: serial vs parallel at the acceptance point
    // (10k gates, 10k trials), bit-identical by construction.
    let n = 10_000;
    let mut rng = StdRng::seed_from_u64(n as u64);
    let circuit = generator.generate_exact(n, &mut rng).expect("gen");
    let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
    let sampler = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &wid)
        .signal_probability(SIGNAL_P)
        .build()
        .expect("sampler");
    let t0 = Instant::now();
    let serial = sampler.run_seeded_with(MC_TRIALS, MC_SEED, Parallelism::serial());
    let mc_serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = sampler.run_seeded_with(MC_TRIALS, MC_SEED, par);
    let mc_parallel = t0.elapsed().as_secs_f64();
    assert_eq!(
        serial, parallel,
        "parallel Monte-Carlo statistics must be bit-identical to serial"
    );
    print_table(
        &format!("Monte-Carlo engine: {n} gates, {MC_TRIALS} trials, {threads} threads"),
        &["serial", "parallel", "speedup"],
        &[vec![
            fmt_time(mc_serial),
            fmt_time(mc_parallel),
            format!("{:.2}x", mc_serial / mc_parallel),
        ]],
    );
    println!(
        "paper claim: the O(n) method runs in under a second below 1,000 gates; the \
         O(1) methods are size-independent"
    );
    eprintln!("for BENCH_parallel.json and the tiled-kernel thread sweep, run the `scaling` bin");
}
