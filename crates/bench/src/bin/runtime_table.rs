//! Experiment E8 companion: a plain wall-clock table of the estimator
//! ladder — O(n²) exact, O(n) linear, O(1) integral — versus design size
//! (the paper's §3.2.3 runtime discussion; Criterion benches give the
//! rigorous statistics, this prints the headline table).

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{
    exact_placed_stats, integral_2d_variance, linear_time_variance, polar_1d_variance,
};
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::RandomGate;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::GridGeometry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

fn main() {
    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
        .expect("random gate");
    let generator = RandomCircuitGenerator::new(hist.clone());
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &hist.support(),
        SIGNAL_P,
        CorrelationPolicy::Exact,
    )
    .expect("pairwise");

    let mut rows = Vec::new();
    for side in [10usize, 32, 100, 316, 1000] {
        let n = side * side;
        let grid = GridGeometry::new(side, side, 3.0, 3.0).expect("grid");

        // O(n²) on a real placed design — only up to 10k gates.
        let exact_time = if n <= 10_000 {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let circuit = generator.generate_exact(n, &mut rng).expect("gen");
            let placed =
                place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
            let t0 = Instant::now();
            let _ = exact_placed_stats(placed.gates(), &pairwise, &rho_total);
            fmt_time(t0.elapsed().as_secs_f64())
        } else {
            "(skipped)".to_owned()
        };

        let t0 = Instant::now();
        let _ = linear_time_variance(&rg, &grid, &rho_total);
        let linear_time = fmt_time(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let _ = integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 32, 8);
        let int2d_time = fmt_time(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let polar_result = polar_1d_variance(
            &rg,
            n,
            grid.width(),
            grid.height(),
            &wid,
            rho_c,
            64,
            16,
        );
        let polar_time = match polar_result {
            Ok(_) => fmt_time(t0.elapsed().as_secs_f64()),
            Err(_) => "n/a".to_owned(),
        };

        rows.push(vec![
            n.to_string(),
            exact_time,
            linear_time,
            int2d_time,
            polar_time,
        ]);
        eprintln!("n = {n} done");
    }
    print_table(
        "E8: wall-clock of the estimator ladder (single run, release build)",
        &["gates", "exact O(n²)", "linear O(n)", "2-D O(1)", "polar O(1)"],
        &rows,
    );
    println!(
        "paper claim: the O(n) method runs in under a second below 1,000 gates; the \
         O(1) methods are size-independent"
    );
}
