//! Experiment E12 (extension beyond the paper): how the analytical
//! `a·exp(bL + cL²)` form degrades when gate-tunneling leakage — nearly
//! L-independent — is mixed into the subthreshold current.
//!
//! This probes the paper's own caveat (§2.1.2): fit error comes from the
//! leakage curve "not being exactly mapped to the functional form". With
//! subthreshold only, `ln I(L)` is almost perfectly quadratic; adding a
//! second mechanism with a different L-dependence bends it.

use leakage_bench::{pct, print_table};
use leakage_cells::charax::Characterizer;
use leakage_cells::library::CellLibrary;
use leakage_process::Technology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(tech: &Technology, lib: &CellLibrary, mc_samples: usize) -> (f64, f64, f64, f64, f64) {
    let charax = Characterizer::new(tech);
    let mut mean_errs = Vec::new();
    let mut std_errs = Vec::new();
    let mut min_r2 = 1.0_f64;
    for cell in lib.cells() {
        for state in 0..cell.n_states() {
            let (triplet, r2) = charax.fit_state(cell.netlist(), state, 13).expect("fit");
            min_r2 = min_r2.min(r2);
            let mut rng = StdRng::seed_from_u64(0xE12 ^ ((cell.id().0 as u64) << 8) ^ state as u64);
            let (mc_mean, mc_std) = charax
                .mc_state(cell.netlist(), state, mc_samples, &mut rng)
                .expect("mc");
            mean_errs
                .push((triplet.mean(charax.l_sigma()).expect("mean") - mc_mean).abs() / mc_mean);
            std_errs.push((triplet.std(charax.l_sigma()).expect("std") - mc_std).abs() / mc_std);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().fold(0.0_f64, |m, x| m.max(*x));
    (
        avg(&mean_errs),
        max(&mean_errs),
        avg(&std_errs),
        max(&std_errs),
        min_r2,
    )
}

fn main() {
    leakage_bench::apply_threads_flag();
    let lib = CellLibrary::standard_62();
    let sub = run(&Technology::cmos90(), &lib, 20_000);
    let gl = run(&Technology::cmos90_with_gate_leakage(), &lib, 20_000);
    print_table(
        "E12: analytical-fit accuracy, subthreshold-only vs + gate tunneling",
        &[
            "mechanism",
            "mean err avg",
            "mean err max",
            "std err avg",
            "std err max",
            "worst fit R²",
        ],
        &[
            vec![
                "subthreshold only (paper scope)".into(),
                pct(sub.0),
                pct(sub.1),
                pct(sub.2),
                pct(sub.3),
                format!("{:.6}", sub.4),
            ],
            vec![
                "+ gate tunneling".into(),
                pct(gl.0),
                pct(gl.1),
                pct(gl.2),
                pct(gl.3),
                format!("{:.6}", gl.4),
            ],
        ],
    );
    println!(
        "a second, weakly-L-dependent mechanism bends ln I(L) away from the quadratic \
         form — the fit error grows exactly as the paper's §2.1.2 caveat predicts, \
         while staying in the paper's own error band"
    );
}
