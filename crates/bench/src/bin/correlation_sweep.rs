//! Ablation A1 (DESIGN.md §6): sensitivity of the full-chip spread to the
//! spatial-correlation model — family (tent / spherical / Gaussian /
//! exponential), cutoff distance relative to the die, and D2D share.
//!
//! This quantifies how much of the estimate is driven by the correlation
//! *inputs*, which the paper treats as given (from extraction, its
//! ref 5).

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::UsageHistogram;
use leakage_core::{ChipLeakageEstimator, HighLevelCharacteristics};
use leakage_process::correlation::{
    ExponentialCorrelation, GaussianCorrelation, SphericalCorrelation, TentCorrelation,
};
use leakage_process::ParameterVariation;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let n = 10_000usize;
    let side = 300.0;
    let chars = || {
        HighLevelCharacteristics::builder()
            .histogram(hist.clone())
            .n_cells(n)
            .die_dimensions(side, side)
            .signal_probability(SIGNAL_P)
            .build()
            .expect("characteristics")
    };

    // --- sweep 1: correlation family at matched cutoff/length scale ---
    // Families are matched so each reaches ρ ≈ 0.1 near d = 90 µm.
    let mut rows = Vec::new();
    {
        let tent = TentCorrelation::new(100.0).expect("model");
        let sph = SphericalCorrelation::new(130.0).expect("model");
        let gau = GaussianCorrelation::new(60.0).expect("model");
        let exp = ExponentialCorrelation::new(39.0).expect("model");
        let mut push = |name: &str, sigma: f64| {
            rows.push(vec![name.to_owned(), format!("{:.3}%", sigma * 100.0)]);
        };
        let run_tent = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars(), &tent)
            .expect("est")
            .estimate_linear()
            .expect("estimate");
        push("tent (D_max 100)", run_tent.relative_std());
        let run = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars(), &sph)
            .expect("est")
            .estimate_linear()
            .expect("estimate");
        push("spherical (D_max 130)", run.relative_std());
        let run = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars(), &gau)
            .expect("est")
            .estimate_linear()
            .expect("estimate");
        push("gaussian (λ 60)", run.relative_std());
        let run = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars(), &exp)
            .expect("est")
            .estimate_linear()
            .expect("estimate");
        push("exponential (λ 39)", run.relative_std());
    }
    print_table(
        "A1a: correlation family (matched range) → σ/μ of chip leakage",
        &["model", "σ/μ"],
        &rows,
    );

    // --- sweep 2: cutoff distance relative to the die ---
    let mut rows = Vec::new();
    for dmax in [10.0, 30.0, 100.0, 300.0_f64] {
        // the polar method needs D_max ≤ min(W, H); use linear uniformly
        let tent = TentCorrelation::new(dmax).expect("model");
        let run = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars(), &tent)
            .expect("est")
            .estimate_linear()
            .expect("estimate");
        rows.push(vec![
            format!("{:.2}", dmax / side),
            format!("{:.3}%", run.relative_std() * 100.0),
        ]);
    }
    print_table(
        "A1b: WID cutoff / die-side ratio → σ/μ",
        &["D_max / side", "σ/μ"],
        &rows,
    );

    // --- sweep 3: D2D variance share at fixed total sigma ---
    let mut rows = Vec::new();
    let total = ctx.tech.l_variation().total_sigma();
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0_f64] {
        let tech = ctx
            .tech
            .clone()
            .with_l_variation(ParameterVariation::from_total(90.0, total, frac).expect("budget"))
            .expect("tech");
        let tent = TentCorrelation::new(100.0).expect("model");
        let run = ChipLeakageEstimator::new(&ctx.charlib, &tech, chars(), &tent)
            .expect("est")
            .estimate_linear()
            .expect("estimate");
        rows.push(vec![
            format!("{frac:.2}"),
            format!("{:.3}%", run.relative_std() * 100.0),
        ]);
    }
    print_table(
        "A1c: D2D variance share (fixed total σ_L) → σ/μ",
        &["d2d share", "σ/μ"],
        &rows,
    );
    println!(
        "σ/μ rises monotonically with correlation range and D2D share: correlation \
         inputs, not gate counts, set the achievable estimate quality"
    );
}
