//! Scaling suite for the exact-kernel/Monte-Carlo perf work: times the
//! naive and tiled O(n²) kernels across 10³→10⁵-gate placements with a
//! 1/2/4/8 thread sweep, the O(n)/O(1) ladder up to 10⁶ gates, the
//! batched vs. per-trial field sampling paths, and the Monte-Carlo engine
//! end to end. Owns `BENCH_parallel.json` (the machine-readable record;
//! `runtime_table` prints the human ladder table only).
//!
//! Modes:
//!   `--smoke`      reduced sizes for CI (naive capped at 10⁴ gates)
//!   `--threads N`  session thread budget for the `auto` columns
//!   `--out PATH`   JSON output path (default `BENCH_parallel.json`)
//!
//! Always asserted (any host): naive/tiled and serial/parallel results are
//! bit-identical, and batched field sampling beats the per-trial path by
//! more than 1.5×. Asserted only when the host has ≥ 8 cores (speedups
//! are meaningless on fewer): ≥ 3× tiled speedup at 8 threads on the
//! largest exact size. The tiled ≥ 4× naive single-thread assertion runs
//! at the largest size where both kernels were measured, when that size
//! is ≥ 10⁴ gates (smaller sizes are timing noise).

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::{
    exact_placed_stats_tiled_instrumented, exact_placed_stats_with, integral_2d_variance,
    linear_time_variance, polar_1d_variance, Tiling,
};
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::{Parallelism, RandomGate};
use leakage_montecarlo::ChipSamplerBuilder;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_numeric::Instruments;
use leakage_process::correlation::SpatialCorrelation;
use leakage_process::field::{CirculantFieldSampler, FieldScratch, GridGeometry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Thread budgets of the sweep columns.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

struct ExactRow {
    gates: usize,
    naive_serial_s: Option<f64>,
    /// Tiled wall-clock per sweep thread budget, in `SWEEP` order.
    tiled_s: [f64; SWEEP.len()],
}

fn main() {
    let _ = leakage_bench::apply_threads_flag();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mode = if smoke { "smoke" } else { "full" };
    eprintln!("scaling suite: mode {mode}, host cores {host_cores}");

    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let rg = RandomGate::new(&ctx.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
        .expect("random gate");
    let generator = RandomCircuitGenerator::new(hist.clone());
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &hist.support(),
        SIGNAL_P,
        CorrelationPolicy::Exact,
    )
    .expect("pairwise");

    // ---- exact kernels: naive vs tiled, thread sweep --------------------
    // Production tiling: the tent correlation is exactly zero at/beyond its
    // support radius, so ρ_total is the constant ρ_c there and the far
    // cutoff is bit-exact (asserted against naive below).
    let tiling = Tiling {
        far_cutoff: wid.support_radius(),
        ..Tiling::default()
    };
    let exact_sizes: &[usize] = &[1_000, 10_000, 100_000];
    let naive_cap = if smoke { 10_000 } else { 100_000 };
    let mut exact_rows: Vec<ExactRow> = Vec::new();
    for &n in exact_sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let circuit = generator.generate_exact(n, &mut rng).expect("gen");
        let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
        let soa = placed.placement_soa();

        let naive_serial_s = if n <= naive_cap {
            let t0 = Instant::now();
            let naive = exact_placed_stats_with(
                placed.gates(),
                &pairwise,
                &rho_total,
                Parallelism::serial(),
            );
            let ts = t0.elapsed().as_secs_f64();
            // Bit-identity oracle at the first sweep point; the remaining
            // sweep entries are checked against this reference below.
            let tiled = exact_placed_stats_tiled_instrumented(
                &soa,
                &pairwise,
                &rho_total,
                Parallelism::serial(),
                tiling,
                Instruments::none(),
            );
            assert_eq!(
                naive.variance.to_bits(),
                tiled.variance.to_bits(),
                "tiled kernel must be bit-identical to naive at n = {n}"
            );
            assert_eq!(naive.mean.to_bits(), tiled.mean.to_bits());
            Some(ts)
        } else {
            None
        };

        let mut tiled_s = [0.0; SWEEP.len()];
        let mut reference: Option<(u64, u64)> = None;
        for (i, &t) in SWEEP.iter().enumerate() {
            let t0 = Instant::now();
            let e = exact_placed_stats_tiled_instrumented(
                &soa,
                &pairwise,
                &rho_total,
                Parallelism::threads(t),
                tiling,
                Instruments::none(),
            );
            tiled_s[i] = t0.elapsed().as_secs_f64();
            let bits = (e.mean.to_bits(), e.variance.to_bits());
            match reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(
                    r, bits,
                    "tiled kernel must be thread-count invariant at n = {n}, {t} threads"
                ),
            }
        }
        eprintln!("exact n = {n} done");
        exact_rows.push(ExactRow {
            gates: n,
            naive_serial_s,
            tiled_s,
        });
    }

    let mut rows = Vec::new();
    for r in &exact_rows {
        let naive = r.naive_serial_s.map_or("(skipped)".to_owned(), fmt_time);
        let vs_naive = r
            .naive_serial_s
            .map_or("-".to_owned(), |ns| format!("{:.2}x", ns / r.tiled_s[0]));
        rows.push(vec![
            r.gates.to_string(),
            naive,
            fmt_time(r.tiled_s[0]),
            fmt_time(r.tiled_s[1]),
            fmt_time(r.tiled_s[2]),
            fmt_time(r.tiled_s[3]),
            vs_naive,
            format!("{:.2}x", r.tiled_s[0] / r.tiled_s[3]),
        ]);
    }
    print_table(
        &format!("Exact O(n²) kernel scaling ({mode} mode, {host_cores} host cores)"),
        &[
            "gates",
            "naive 1T",
            "tiled 1T",
            "tiled 2T",
            "tiled 4T",
            "tiled 8T",
            "tiled/naive 1T",
            "8T speedup",
        ],
        &rows,
    );

    // ---- O(n)/O(1) ladder up to paper scale -----------------------------
    let ladder_sizes: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
    let mut ladder_rows = Vec::new();
    let mut ladder_records = Vec::new();
    for n in ladder_sizes {
        let side = (n as f64).sqrt().round() as usize;
        let grid = GridGeometry::new(side, side, 3.0, 3.0).expect("grid");
        let t0 = Instant::now();
        let _ = linear_time_variance(&rg, &grid, &rho_total);
        let lin = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 32, 8);
        let i2d = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let pol = polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 64, 16)
            .map(|_| t0.elapsed().as_secs_f64());
        ladder_rows.push(vec![
            n.to_string(),
            fmt_time(lin),
            fmt_time(i2d),
            pol.as_ref().map_or("n/a".to_owned(), |&s| fmt_time(s)),
        ]);
        ladder_records.push((n, lin, i2d, pol.ok()));
    }
    print_table(
        "Random-Gate ladder (size-independent of placement)",
        &["gates", "linear O(n)", "2-D O(1)", "polar O(1)"],
        &ladder_rows,
    );

    // ---- field sampling: per-trial (unplanned) vs batched ---------------
    let draws = if smoke { 40 } else { 200 };
    let field_side = 100;
    let field_grid = GridGeometry::new(field_side, field_side, 3.0, 3.0).expect("grid");
    let field = CirculantFieldSampler::new(field_grid, &wid, 1.0).expect("sampler");
    let t0 = Instant::now();
    let mut sink = 0.0_f64;
    for p in 0..draws {
        // The pre-batching hot loop: fresh allocations and an FFT that
        // recomputes its twiddles on every draw.
        let mut rng = StdRng::seed_from_u64(p as u64);
        let (a, b) = field.sample_two_unplanned_with(&mut rng, Parallelism::serial());
        sink += a[0] + b[0];
    }
    let per_trial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut scratch = FieldScratch::new();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    let mut sink_batched = 0.0_f64;
    for p in 0..draws {
        let mut rng = StdRng::seed_from_u64(p as u64);
        field.sample_two_into(&mut rng, &mut a, &mut b, &mut scratch);
        sink_batched += a[0] + b[0];
    }
    let batched_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        sink.to_bits(),
        sink_batched.to_bits(),
        "batched field sampling must be bit-identical to the per-trial path"
    );
    let batched_speedup = per_trial_s / batched_s;
    print_table(
        &format!("Field sampling: {draws} draws on a {field_side}×{field_side} grid"),
        &["per-trial", "batched", "speedup"],
        &[vec![
            fmt_time(per_trial_s),
            fmt_time(batched_s),
            format!("{batched_speedup:.2}x"),
        ]],
    );

    // ---- Monte-Carlo engine end to end ----------------------------------
    let (mc_gates, mc_trials) = if smoke {
        (2_000, 1_000)
    } else {
        (10_000, 10_000)
    };
    let mut rng = StdRng::seed_from_u64(mc_gates as u64);
    let circuit = generator.generate_exact(mc_gates, &mut rng).expect("gen");
    let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
    let sampler = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &wid)
        .signal_probability(SIGNAL_P)
        .build()
        .expect("sampler");
    let t0 = Instant::now();
    let serial = sampler.run_seeded_with(mc_trials, 1234, Parallelism::serial());
    let mc_serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel = sampler.run_seeded_with(mc_trials, 1234, Parallelism::auto());
    let mc_parallel = t0.elapsed().as_secs_f64();
    assert_eq!(
        serial, parallel,
        "parallel Monte-Carlo statistics must be bit-identical to serial"
    );
    print_table(
        &format!("Monte-Carlo engine: {mc_gates} gates, {mc_trials} trials"),
        &["serial", "auto", "speedup"],
        &[vec![
            fmt_time(mc_serial),
            fmt_time(mc_parallel),
            format!("{:.2}x", mc_serial / mc_parallel),
        ]],
    );

    // ---- acceptance gates ------------------------------------------------
    assert!(
        batched_speedup > 1.5,
        "batched field sampling must beat the per-trial path by > 1.5× \
         (measured {batched_speedup:.2}×)"
    );
    if let Some(r) = exact_rows
        .iter()
        .rev()
        .find(|r| r.naive_serial_s.is_some() && r.gates >= 10_000)
    {
        let ratio = r.naive_serial_s.unwrap_or(0.0) / r.tiled_s[0];
        assert!(
            ratio >= 4.0,
            "tiled kernel must be ≥ 4× faster than naive single-threaded at \
             {} gates (measured {ratio:.2}×)",
            r.gates
        );
        eprintln!(
            "tiled vs naive 1T at {} gates: {ratio:.2}x (>= 4x ok)",
            r.gates
        );
    }
    if host_cores >= 8 {
        let r = exact_rows.last().expect("at least one exact size");
        let speedup = r.tiled_s[0] / r.tiled_s[3];
        assert!(
            speedup >= 3.0,
            "tiled kernel must show ≥ 3× speedup at 8 threads on {} gates \
             (measured {speedup:.2}×, {host_cores} cores)",
            r.gates
        );
        eprintln!("8T speedup at {} gates: {speedup:.2}x (>= 3x ok)", r.gates);
    } else {
        eprintln!(
            "8-thread scaling assertion skipped: host has {host_cores} core(s); \
             speedups on an oversubscribed host are scheduling noise"
        );
    }

    // ---- machine-readable record (hand-rolled JSON) ----------------------
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str("  \"thread_sweep\": [1, 2, 4, 8],\n");
    json.push_str("  \"exact\": [\n");
    for (i, r) in exact_rows.iter().enumerate() {
        let comma = if i + 1 < exact_rows.len() { "," } else { "" };
        let naive = r
            .naive_serial_s
            .map_or("null".to_owned(), |s| format!("{s:.6}"));
        let vs = r
            .naive_serial_s
            .map_or("null".to_owned(), |s| format!("{:.3}", s / r.tiled_s[0]));
        json.push_str(&format!(
            "    {{\"gates\": {}, \"naive_serial_s\": {naive}, \
             \"tiled_s\": [{:.6}, {:.6}, {:.6}, {:.6}], \
             \"tiled_vs_naive_1t\": {vs}, \"tiled_speedup_8t\": {:.3}}}{comma}\n",
            r.gates,
            r.tiled_s[0],
            r.tiled_s[1],
            r.tiled_s[2],
            r.tiled_s[3],
            r.tiled_s[0] / r.tiled_s[3],
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"ladder\": [\n");
    for (i, (n, lin, i2d, pol)) in ladder_records.iter().enumerate() {
        let comma = if i + 1 < ladder_records.len() {
            ","
        } else {
            ""
        };
        let pol = pol.map_or("null".to_owned(), |s| format!("{s:.6}"));
        json.push_str(&format!(
            "    {{\"gates\": {n}, \"linear_s\": {lin:.6}, \"integral2d_s\": {i2d:.6}, \
             \"polar_s\": {pol}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"field_sampling\": {{\"draws\": {draws}, \"grid\": {field_side}, \
         \"per_trial_s\": {per_trial_s:.6}, \"batched_s\": {batched_s:.6}, \
         \"batched_speedup\": {batched_speedup:.3}}},\n"
    ));
    json.push_str(&format!(
        "  \"montecarlo\": {{\"gates\": {mc_gates}, \"trials\": {mc_trials}, \
         \"serial_s\": {mc_serial:.6}, \"parallel_s\": {mc_parallel:.6}, \
         \"speedup\": {:.3}}}\n}}\n",
        mc_serial / mc_parallel
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
