//! Experiment E4 (Fig. 6, §3.1.1): convergence of specific random designs
//! to the Random Gate prediction as the gate count grows.
//!
//! For each size, several circuits are generated i.i.d. against one target
//! histogram, placed, and their true (O(n²)) leakage statistics compared
//! to the RG estimate built from the *a-priori* characteristics. Paper
//! reference: the max ± difference shrinks with size; ≤ 2.2 % at 11,236
//! gates.

use leakage_bench::{context, print_table, SIGNAL_P};
use leakage_cells::corrmap::CorrelationPolicy;
use leakage_cells::UsageHistogram;
use leakage_core::estimator::exact_placed_stats;
use leakage_core::pairwise::PairwiseCovariance;
use leakage_core::{ChipLeakageEstimator, HighLevelCharacteristics};
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_process::correlation::SpatialCorrelation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let wid = leakage_bench::wid();
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);

    // Target histogram: every cell of the library in use.
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let generator = RandomCircuitGenerator::new(hist.clone());
    let support: Vec<_> = hist.support();
    let pairwise =
        PairwiseCovariance::new(&ctx.charlib, &support, SIGNAL_P, CorrelationPolicy::Exact)
            .expect("pairwise tables");

    let sizes = [100usize, 400, 900, 2500, 4900, 8100, 11236];
    let circuits_per_size = 5;
    let mut rows = Vec::new();
    for n in sizes {
        let mut mean_lo = f64::INFINITY;
        let mut mean_hi = f64::NEG_INFINITY;
        let mut std_lo = f64::INFINITY;
        let mut std_hi = f64::NEG_INFINITY;
        for k in 0..circuits_per_size {
            let mut rng = StdRng::seed_from_u64(0xF6 ^ (n as u64) << 8 ^ k);
            let circuit = generator.generate(n, &mut rng).expect("generation");
            let placed =
                place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("placement");
            let truth = exact_placed_stats(placed.gates(), &pairwise, &rho_total);

            // Early-mode RG estimate from the shared characteristics.
            let chars = HighLevelCharacteristics::builder()
                .histogram(hist.clone())
                .n_cells(n)
                .die_dimensions(placed.width(), placed.height())
                .signal_probability(SIGNAL_P)
                .build()
                .expect("characteristics");
            let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, &wid)
                .expect("estimator")
                .estimate_linear()
                .expect("linear estimate");

            let dm = truth.mean / est.mean - 1.0;
            let ds = truth.std() / est.std() - 1.0;
            mean_lo = mean_lo.min(dm);
            mean_hi = mean_hi.max(dm);
            std_lo = std_lo.min(ds);
            std_hi = std_hi.max(ds);
        }
        rows.push(vec![
            n.to_string(),
            format!("{:+.2}%", mean_lo * 100.0),
            format!("{:+.2}%", mean_hi * 100.0),
            format!("{:+.2}%", std_lo * 100.0),
            format!("{:+.2}%", std_hi * 100.0),
        ]);
        eprintln!("size {n} done");
    }
    print_table(
        "E4 / Fig. 6: max ± difference of specific designs vs RG estimate",
        &["gates", "mean min", "mean max", "std min", "std max"],
        &rows,
    );
    println!(
        "paper: differences approach zero with size; max 2.2% at 11,236 gates ({} circuits/size)",
        circuits_per_size
    );
}
