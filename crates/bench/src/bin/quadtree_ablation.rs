//! Experiment E11 (ablation beyond the paper): how much does the Random
//! Gate model's isotropy assumption cost against a *hierarchical*
//! (quadtree) within-die field — the correlation structure used by the
//! late-mode competitors the paper cites (refs 3 and 4)?
//!
//! Ground truth: full-chip Monte-Carlo under the quadtree field. Model:
//! the RG estimator fed the distance-averaged isotropic approximation of
//! the same quadtree.

use leakage_bench::{context, print_table, sci, SIGNAL_P};
use leakage_cells::UsageHistogram;
use leakage_core::{ChipLeakageEstimator, HighLevelCharacteristics};
use leakage_montecarlo::QuadtreeChipSampler;
use leakage_netlist::generate::RandomCircuitGenerator;
use leakage_netlist::placement::{place, PlacementStyle};
use leakage_process::hierarchical::QuadtreeCorrelation;
use leakage_process::ParameterVariation;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("non-empty");
    let generator = RandomCircuitGenerator::new(hist.clone());
    let sigma_total = ctx.tech.l_variation().total_sigma();
    // The quadtree's level-0 share already plays the D2D role, so the
    // estimator's technology must not add another D2D floor on top.
    let tech_no_d2d = ctx
        .tech
        .clone()
        .with_l_variation(ParameterVariation::from_total(90.0, sigma_total, 0.0).expect("budget"))
        .expect("tech");

    let mut rows = Vec::new();
    for n in [400usize, 1600, 6400] {
        let mut rng = StdRng::seed_from_u64(0x47 ^ n as u64);
        let circuit = generator.generate_exact(n, &mut rng).expect("generation");
        let placed = place(
            &circuit,
            &ctx.lib,
            PlacementStyle::RandomShuffle { seed: 3 },
            0.7,
        )
        .expect("placement");
        let quadtree =
            QuadtreeCorrelation::standard(placed.width(), placed.height()).expect("model");

        // Ground truth: MC under the true (anisotropic) quadtree field.
        let sampler = QuadtreeChipSampler::new(
            &placed,
            &ctx.charlib,
            quadtree.clone(),
            sigma_total,
            SIGNAL_P,
        )
        .expect("sampler");
        let truth = sampler.run(3000, &mut rng);

        // Model: RG with the isotropic distance-averaged approximation.
        let iso = quadtree
            .isotropic_table(24, 2000, &mut rng)
            .expect("isotropic table");
        let chars = HighLevelCharacteristics::builder()
            .histogram(hist.clone())
            .n_cells(n)
            .die_dimensions(placed.width(), placed.height())
            .signal_probability(SIGNAL_P)
            .build()
            .expect("characteristics");
        let est = ChipLeakageEstimator::new(&ctx.charlib, &tech_no_d2d, chars, &iso)
            .expect("estimator")
            .estimate_linear()
            .expect("estimate");

        rows.push(vec![
            n.to_string(),
            sci(truth.mean()),
            sci(est.mean),
            format!("{:+.2}%", (est.mean / truth.mean() - 1.0) * 100.0),
            sci(truth.sample_std()),
            sci(est.std()),
            format!("{:+.2}%", (est.std() / truth.sample_std() - 1.0) * 100.0),
        ]);
        eprintln!("n = {n} done");
    }
    print_table(
        "E11: RG + isotropic approximation vs anisotropic quadtree ground truth",
        &[
            "gates",
            "MC μ (A)",
            "RG μ (A)",
            "μ err",
            "MC σ (A)",
            "RG σ (A)",
            "σ err",
        ],
        &rows,
    );
    println!(
        "the isotropy assumption costs only a few percent in σ even against a \
         strongly anisotropic quadtree field"
    );
}
