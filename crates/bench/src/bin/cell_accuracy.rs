//! Experiment E1 (§2.1.2): accuracy of the analytical (a, b, c) cell model
//! against Monte-Carlo, over all 62 cells and all input states.
//!
//! Paper reference numbers: mean error < 2 % for all gates (average
//! absolute 0.44 %); std error average 3.1 %, maximum ≈ 10 %.

use leakage_bench::{context, pct, print_table};
use leakage_cells::charax::Characterizer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    leakage_bench::apply_threads_flag();
    let ctx = context();
    let charax = Characterizer::new(&ctx.tech);
    let mc_samples = 40_000;

    let mut mean_errs: Vec<f64> = Vec::new();
    let mut std_errs: Vec<f64> = Vec::new();
    let mut worst_rows: Vec<(f64, Vec<String>)> = Vec::new();

    for cell in ctx.lib.cells() {
        let model = ctx.charlib.cell(cell.id()).expect("characterized");
        for state in 0..cell.n_states() {
            let mut rng = StdRng::seed_from_u64(0xE1 ^ ((cell.id().0 as u64) << 8) ^ state as u64);
            let (mc_mean, mc_std) = charax
                .mc_state(cell.netlist(), state, mc_samples, &mut rng)
                .expect("mc characterization");
            let sm = &model.states[state as usize];
            let mean_err = (sm.mean - mc_mean).abs() / mc_mean;
            let std_err = (sm.std - mc_std).abs() / mc_std;
            mean_errs.push(mean_err);
            std_errs.push(std_err);
            worst_rows.push((
                std_err,
                vec![
                    cell.name().to_owned(),
                    format!("{state:b}"),
                    pct(mean_err),
                    pct(std_err),
                ],
            ));
        }
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().fold(0.0_f64, |m, x| m.max(*x));

    print_table(
        "E1: analytical vs MC cell moments (all 62 cells, all states)",
        &["metric", "avg |err|", "max |err|", "paper avg", "paper max"],
        &[
            vec![
                "mean".into(),
                pct(avg(&mean_errs)),
                pct(max(&mean_errs)),
                "0.44%".into(),
                "< 2%".into(),
            ],
            vec![
                "std".into(),
                pct(avg(&std_errs)),
                pct(max(&std_errs)),
                "3.1%".into(),
                "~10%".into(),
            ],
        ],
    );

    worst_rows.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let rows: Vec<Vec<String>> = worst_rows.into_iter().take(10).map(|(_, r)| r).collect();
    print_table(
        "E1: ten worst states by std error",
        &["cell", "state", "mean err", "std err"],
        &rows,
    );
    println!("states evaluated: {}", mean_errs.len());
}
