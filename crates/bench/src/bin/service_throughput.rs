//! `chipleakd` throughput smoke bench: drives the in-memory serve path
//! with a stream of histogram-only estimate jobs at 1 and 4 workers,
//! records jobs/sec for each, and writes `BENCH_service.json` so the
//! bench trajectory carries a service baseline.
//!
//! Flags:
//!   `--jobs N`    request lines per run (default 120)
//!   `--out PATH`  JSON output path (default `BENCH_service.json`)
//!
//! Always asserted (any host): the response byte stream is identical at
//! every worker count — throughput may vary, bytes may not. No speedup
//! gate: on a single-core CI runner the 4-worker figure is scheduling
//! noise, and the point of the record is the trajectory, not a pass bar.

use std::fmt::Write as _;
use std::time::Instant;

use leakage_service::{ServeSummary, Service, ServiceConfig};

/// Worker counts of the sweep, in output order.
const WORKERS: [usize; 2] = [1, 4];

/// Distinct job bodies; the stream cycles through these, so each run
/// sees both cold artifact-cache misses and warm hits.
const JOBS: [&str; 6] = [
    r#"{"kind":"estimate","cells":600,"die":[150,150],"sweep_points":3}"#,
    r#"{"kind":"estimate","cells":600,"die":[150,150],"sweep_points":3,"method":"linear"}"#,
    r#"{"kind":"estimate","cells":800,"die":[160,160],"sweep_points":3,"p":0.3}"#,
    r#"{"kind":"estimate","cells":800,"die":[160,160],"sweep_points":3,"dmax":50}"#,
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3,"method":"integral2d"}"#,
    r#"{"kind":"ping"}"#,
];

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(workers: usize, input: &str) -> (f64, ServeSummary, Vec<u8>) {
    let service = Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let mut out = Vec::new();
    let t0 = Instant::now();
    let summary = service
        .serve(input.as_bytes(), &mut out)
        .expect("in-memory serve cannot fail on I/O");
    (t0.elapsed().as_secs_f64(), summary, out)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: u64 = flag_value(&args, "--jobs")
        .map(|v| v.parse().expect("--jobs takes a number"))
        .unwrap_or(120);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_service.json".to_owned());
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut input = String::new();
    for i in 0..jobs {
        let body = JOBS[(i % JOBS.len() as u64) as usize];
        let _ = writeln!(&mut input, "{{\"v\":1,\"id\":{i},\"job\":{body}}}");
    }

    let mut seconds = [0.0_f64; WORKERS.len()];
    let mut reference: Option<Vec<u8>> = None;
    for (i, &w) in WORKERS.iter().enumerate() {
        let (s, summary, out) = run(w, &input);
        assert_eq!(summary.requests, jobs, "{w} workers consumed the stream");
        assert!(!summary.shutdown, "no shutdown job in the stream");
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(r, &out, "response bytes must be identical at {w} workers"),
        }
        seconds[i] = s;
        eprintln!(
            "{w} worker(s): {jobs} jobs in {s:.3} s = {:.1} jobs/s",
            jobs as f64 / s
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str("  \"runs\": [\n");
    for (i, &w) in WORKERS.iter().enumerate() {
        let comma = if i + 1 < WORKERS.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"workers\": {w}, \"seconds\": {:.6}, \"jobs_per_sec\": {:.3}}}{comma}\n",
            seconds[i],
            jobs as f64 / seconds[i],
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4v1\": {:.3}\n}}\n",
        seconds[0] / seconds[1]
    ));
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {out_path}");
}
