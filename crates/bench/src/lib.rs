//! Shared context and reporting helpers for the experiment binaries.
//!
//! Every paper figure/table has a dedicated binary in `src/bin/`; see the
//! experiment index in `DESIGN.md`. All binaries share one canonical
//! configuration so their numbers are mutually consistent.

use leakage_cells::charax::{CharMethod, Characterizer};
use leakage_cells::library::CellLibrary;
use leakage_cells::model::CharacterizedLibrary;
use leakage_numeric::parallel::{Parallelism, THREADS_ENV};
use leakage_process::correlation::TentCorrelation;
use leakage_process::Technology;

/// Canonical WID correlation cutoff distance (µm).
pub const WID_DMAX_UM: f64 = 100.0;

/// Canonical global signal probability.
pub const SIGNAL_P: f64 = 0.5;

/// Shared experiment context.
#[derive(Debug)]
pub struct Context {
    /// Technology card (90 nm class).
    pub tech: Technology,
    /// The 62-cell library.
    pub lib: CellLibrary,
    /// Analytically characterized library (13-point fits).
    pub charlib: CharacterizedLibrary,
}

/// Builds the canonical context (technology, library, characterization).
///
/// # Panics
///
/// Panics if the static configuration fails to characterize — that is a
/// bug, not an input error, so the experiment binaries fail loudly.
pub fn context() -> Context {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charlib = Characterizer::new(&tech)
        .characterize_library(&lib, CharMethod::Analytical { sweep_points: 13 })
        .expect("static library characterizes cleanly");
    Context { tech, lib, charlib }
}

/// The canonical WID correlation model.
///
/// # Panics
///
/// Never (static valid parameter).
pub fn wid() -> TentCorrelation {
    TentCorrelation::new(WID_DMAX_UM).expect("static valid cutoff")
}

/// Applies the shared `--threads N` experiment flag: when present in the
/// process arguments (as `--threads N` or `--threads=N`), exports it via
/// `CHIPLEAK_THREADS` so every `Parallelism::auto()` call in the run obeys
/// it (`0` or absent = all hardware threads). Returns the resolved budget.
///
/// Call this first in every experiment binary's `main`.
pub fn apply_threads_flag() -> Parallelism {
    let args: Vec<String> = std::env::args().collect();
    let value = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--threads=").map(str::to_owned))
        });
    if let Some(v) = value {
        std::env::set_var(THREADS_ENV, v);
    }
    Parallelism::auto()
}

/// Prints a markdown table: header row + aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Formats a value in scientific notation with 4 significant digits.
pub fn sci(v: f64) -> String {
    format!("{v:.3e}")
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0123), "1.23%");
        assert!(sci(1234.5).contains('e'));
    }

    #[test]
    fn wid_has_canonical_cutoff() {
        use leakage_process::correlation::SpatialCorrelation;
        assert_eq!(wid().support_radius(), Some(WID_DMAX_UM));
    }
}
