//! The exploration engine: one [`Explorer`] per `model()` call, a DFS
//! stack of scheduling choices persisted across iterations, and a
//! cooperatively-serialized set of OS threads (exactly one model
//! thread runs between decision points).

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to unwind model threads once an iteration has
/// already failed (deadlock or an assertion in another thread). Never
/// reported; the first *real* failure is.
pub(crate) struct ModelAbort;

/// One backtrackable scheduling decision: which of `options` enabled
/// threads ran. Points with a single option are not recorded.
struct Choice {
    chosen: usize,
    options: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

enum Failure {
    /// All live threads blocked; the string renders their states.
    Deadlock(String),
    /// A model thread panicked (test assertion); payload is kept
    /// separately so the orchestrator can resume it.
    Panic,
}

struct Sched {
    threads: Vec<ThreadState>,
    active: usize,
    /// Per-mutex owner, indexed by registration order.
    mutexes: Vec<Option<usize>>,
    /// Per-condvar FIFO waiter queue, indexed by registration order.
    condvars: Vec<VecDeque<usize>>,
    /// DFS choice stack — persists across iterations.
    stack: Vec<Choice>,
    /// Replay cursor into `stack` for the current iteration.
    cursor: usize,
    preemptions: usize,
    spurious_left: usize,
    finished: usize,
    failure: Option<Failure>,
    payload: Option<Box<dyn Any + Send>>,
}

impl Sched {
    fn runnable(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.threads[t] == ThreadState::Runnable)
            .collect()
    }

    fn condvar_blocked(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| matches!(self.threads[t], ThreadState::BlockedCondvar(_)))
            .collect()
    }

    fn render_states(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.threads.iter().enumerate() {
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(&format!("thread {i}: {t:?}"));
        }
        out
    }
}

/// Search configuration; see [`Builder`].
#[derive(Clone, Copy)]
struct Config {
    preemption_bound: Option<usize>,
    max_iterations: usize,
    spurious_budget: usize,
}

pub(crate) struct Explorer {
    sched: Mutex<Sched>,
    cv: Condvar,
    cfg: Config,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Explorer>, usize)>> = const { RefCell::new(None) };
}

/// The `(explorer, thread id)` of the calling model thread, if any.
pub(crate) fn current() -> Option<(Arc<Explorer>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl Explorer {
    fn new(cfg: Config) -> Explorer {
        Explorer {
            sched: Mutex::new(Sched {
                threads: Vec::new(),
                active: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                stack: Vec::new(),
                cursor: 0,
                preemptions: 0,
                spurious_left: 0,
                finished: 0,
                failure: None,
                payload: None,
            }),
            cv: Condvar::new(),
            cfg,
            os_handles: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn abort(&self) -> ! {
        std::panic::panic_any(ModelAbort)
    }

    /// Takes (or records) the next DFS choice among `n` options.
    fn choose(&self, s: &mut Sched, n: usize) -> usize {
        debug_assert!(n > 0, "choose() requires at least one option");
        if n == 1 {
            return 0;
        }
        if s.cursor < s.stack.len() {
            let c = s.stack[s.cursor].chosen;
            s.cursor += 1;
            return c;
        }
        s.stack.push(Choice {
            chosen: 0,
            options: n,
        });
        s.cursor += 1;
        0
    }

    /// Picks and activates the next thread. `opts` are runnable ids;
    /// condvar-blocked threads are appended as spurious-wake options
    /// while the iteration's budget lasts. Returns the picked id.
    fn pick_next(&self, s: &mut Sched, opts: Vec<usize>) -> usize {
        let mut all = opts;
        let spur_from = all.len();
        if s.spurious_left > 0 {
            all.extend(s.condvar_blocked());
        }
        let idx = self.choose(s, all.len());
        let pick = all[idx];
        if idx >= spur_from {
            // Spurious wakeup: pull the waiter out of its queue.
            if let ThreadState::BlockedCondvar(cid) = s.threads[pick] {
                s.condvars[cid].retain(|&t| t != pick);
            }
            s.threads[pick] = ThreadState::Runnable;
            s.spurious_left -= 1;
        }
        s.active = pick;
        self.cv.notify_all();
        pick
    }

    /// Blocks the calling model thread until it is scheduled again.
    fn wait_for_turn<'a>(
        &'a self,
        mut s: MutexGuard<'a, Sched>,
        me: usize,
    ) -> MutexGuard<'a, Sched> {
        loop {
            if s.failure.is_some() {
                drop(s);
                self.abort();
            }
            if s.active == me && s.threads[me] == ThreadState::Runnable {
                return s;
            }
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Decision point for a *running* thread: the scheduler may switch
    /// to any other runnable thread (charging the preemption budget)
    /// or let `me` continue.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            self.abort();
        }
        let opts = s.runnable();
        debug_assert!(opts.contains(&me));
        let bounded = self
            .cfg
            .preemption_bound
            .is_some_and(|b| s.preemptions >= b);
        let pick = if bounded {
            s.active = me;
            me
        } else {
            self.pick_next(&mut s, opts)
        };
        if pick != me {
            s.preemptions += 1;
            let s = self.wait_for_turn(s, me);
            drop(s);
        }
    }

    /// Cede point for a thread that just blocked or finished (its
    /// state is already set by the caller). Detects deadlock, picks a
    /// successor, and — unless finished — waits to be rescheduled.
    fn cede<'a>(&'a self, mut s: MutexGuard<'a, Sched>, me: usize) -> MutexGuard<'a, Sched> {
        let opts = s.runnable();
        if opts.is_empty() {
            if s.finished == s.threads.len() {
                // Iteration complete; wake the orchestrator.
                self.cv.notify_all();
                return s;
            }
            let msg = s.render_states();
            s.failure = Some(Failure::Deadlock(msg));
            self.cv.notify_all();
            if s.threads[me] == ThreadState::Finished {
                return s;
            }
            drop(s);
            self.abort();
        }
        self.pick_next(&mut s, opts);
        if s.threads[me] == ThreadState::Finished {
            return s;
        }
        self.wait_for_turn(s, me)
    }

    // ---- primitive registration -----------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut s = self.lock();
        s.mutexes.push(None);
        s.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut s = self.lock();
        s.condvars.push(VecDeque::new());
        s.condvars.len() - 1
    }

    // ---- mutex ----------------------------------------------------

    pub(crate) fn acquire(&self, me: usize, mid: usize) {
        self.yield_point(me);
        let mut s = self.lock();
        loop {
            if s.failure.is_some() {
                drop(s);
                self.abort();
            }
            match s.mutexes[mid] {
                None => {
                    s.mutexes[mid] = Some(me);
                    return;
                }
                Some(owner) if owner == me => {
                    let msg = format!("thread {me} re-acquired model mutex {mid} it already holds");
                    s.failure = Some(Failure::Deadlock(msg));
                    self.cv.notify_all();
                    drop(s);
                    self.abort();
                }
                Some(_) => {
                    s.threads[me] = ThreadState::BlockedMutex(mid);
                    s = self.cede(s, me);
                }
            }
        }
    }

    /// Re-acquire without a leading decision point (used when waking
    /// from a condvar: being scheduled *was* the decision).
    fn acquire_resumed(&self, me: usize, mid: usize) {
        let mut s = self.lock();
        loop {
            if s.failure.is_some() {
                drop(s);
                self.abort();
            }
            match s.mutexes[mid] {
                None => {
                    s.mutexes[mid] = Some(me);
                    return;
                }
                Some(_) => {
                    s.threads[me] = ThreadState::BlockedMutex(mid);
                    s = self.cede(s, me);
                }
            }
        }
    }

    /// Guard-drop path: must never panic mid-unwind, so a failed
    /// iteration makes this a no-op.
    pub(crate) fn release(&self, me: usize, mid: usize) {
        let mut s = self.lock();
        if s.failure.is_some() {
            return;
        }
        debug_assert_eq!(s.mutexes[mid], Some(me), "release by non-owner");
        s.mutexes[mid] = None;
        for state in s.threads.iter_mut() {
            if *state == ThreadState::BlockedMutex(mid) {
                *state = ThreadState::Runnable;
            }
        }
    }

    // ---- condvar --------------------------------------------------

    /// Atomically queues `me` on the condvar, releases the mutex, and
    /// blocks; on wakeup (notify or spurious) re-acquires the mutex.
    pub(crate) fn cv_wait(&self, me: usize, cid: usize, mid: usize) {
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            self.abort();
        }
        debug_assert_eq!(s.mutexes[mid], Some(me), "wait without holding the mutex");
        s.condvars[cid].push_back(me);
        s.mutexes[mid] = None;
        for state in s.threads.iter_mut() {
            if *state == ThreadState::BlockedMutex(mid) {
                *state = ThreadState::Runnable;
            }
        }
        s.threads[me] = ThreadState::BlockedCondvar(cid);
        let s = self.cede(s, me);
        drop(s);
        self.acquire_resumed(me, mid);
    }

    pub(crate) fn notify_one(&self, me: usize, cid: usize) {
        self.yield_point(me);
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            self.abort();
        }
        if let Some(t) = s.condvars[cid].pop_front() {
            s.threads[t] = ThreadState::Runnable;
        }
    }

    pub(crate) fn notify_all(&self, me: usize, cid: usize) {
        self.yield_point(me);
        let mut s = self.lock();
        if s.failure.is_some() {
            drop(s);
            self.abort();
        }
        while let Some(t) = s.condvars[cid].pop_front() {
            s.threads[t] = ThreadState::Runnable;
        }
    }

    // ---- threads --------------------------------------------------

    /// Registers a new model thread (Runnable) and returns its id.
    fn register_thread(&self) -> usize {
        let mut s = self.lock();
        s.threads.push(ThreadState::Runnable);
        s.threads.len() - 1
    }

    pub(crate) fn spawn_model(
        self: &Arc<Self>,
        me: usize,
        body: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let tid = self.register_thread();
        let exp = Arc::clone(self);
        let handle = std::thread::spawn(move || thread_main(exp, tid, body));
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        // The spawn itself is a decision point: the child may run
        // immediately or the parent may continue.
        self.yield_point(me);
        tid
    }

    pub(crate) fn join(&self, me: usize, target: usize) {
        self.yield_point(me);
        let mut s = self.lock();
        while s.threads[target] != ThreadState::Finished {
            if s.failure.is_some() {
                drop(s);
                self.abort();
            }
            s.threads[me] = ThreadState::BlockedJoin(target);
            s = self.cede(s, me);
        }
    }

    // ---- iteration driving ----------------------------------------

    /// Runs one iteration of `f` under the current choice stack.
    /// Panics (deadlock) or resumes (assertion) on failure.
    fn run_iteration(self: &Arc<Self>, f: Arc<dyn Fn() + Send + Sync>) {
        {
            let mut s = self.lock();
            s.threads.clear();
            s.threads.push(ThreadState::Runnable);
            s.active = 0;
            s.mutexes.clear();
            s.condvars.clear();
            s.cursor = 0;
            s.preemptions = 0;
            s.spurious_left = self.cfg.spurious_budget;
            s.finished = 0;
            s.failure = None;
            s.payload = None;
        }
        let exp = Arc::clone(self);
        let handle = std::thread::spawn(move || thread_main(exp, 0, Box::new(move || f())));
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
        let (deadlock, payload) = {
            let mut s = self.lock();
            while s.finished < s.threads.len() {
                s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            let deadlock = match s.failure.take() {
                Some(Failure::Deadlock(msg)) => Some(msg),
                _ => None,
            };
            (deadlock, s.payload.take())
        };
        let handles: Vec<_> = self
            .os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(p) = payload {
            resume_unwind(p);
        }
        if let Some(msg) = deadlock {
            panic!("loomlite: deadlock detected ({msg})");
        }
    }

    /// Advances the DFS stack to the next unexplored schedule;
    /// `false` when the search space is exhausted.
    fn advance(&self) -> bool {
        let mut s = self.lock();
        while let Some(top) = s.stack.last_mut() {
            if top.chosen + 1 < top.options {
                top.chosen += 1;
                return true;
            }
            s.stack.pop();
        }
        false
    }
}

/// Body shared by thread 0 and spawned model threads: wait for the
/// first schedule, run, record the outcome, pass the baton.
fn thread_main(exp: Arc<Explorer>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exp), tid)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let s = exp.lock();
        let s = exp.wait_for_turn(s, tid);
        drop(s);
        body();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut s = exp.lock();
    s.threads[tid] = ThreadState::Finished;
    s.finished += 1;
    // Wake any joiners.
    for state in s.threads.iter_mut() {
        if *state == ThreadState::BlockedJoin(tid) {
            *state = ThreadState::Runnable;
        }
    }
    match result {
        Ok(()) => {
            let s = exp.cede(s, tid);
            drop(s);
        }
        Err(p) => {
            if p.downcast_ref::<ModelAbort>().is_none() && s.payload.is_none() {
                s.failure = Some(Failure::Panic);
                s.payload = Some(p);
            }
            exp.cv.notify_all();
        }
    }
}

/// Explores every schedule of `f` with the default configuration
/// (preemption bound 3, spurious budget 1). Panics on the first
/// failing schedule, replaying its assertion or deadlock report.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f);
}

/// Tunable exploration: `check` returns the number of schedules run.
pub struct Builder {
    /// Max involuntary context switches per schedule (`None` =
    /// unbounded — exact but potentially exponential).
    pub preemption_bound: Option<usize>,
    /// Abort the search (panic) past this many schedules.
    pub max_iterations: usize,
    /// Spurious condvar wakeups injected per schedule.
    pub spurious_budget: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(3),
            max_iterations: 500_000,
            spurious_budget: 1,
        }
    }
}

impl Builder {
    pub fn check<F>(&self, f: F) -> usize
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            current().is_none(),
            "loomlite: nested model() is not supported"
        );
        let cfg = Config {
            preemption_bound: self.preemption_bound,
            max_iterations: self.max_iterations,
            spurious_budget: self.spurious_budget,
        };
        let exp = Arc::new(Explorer::new(cfg));
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= cfg.max_iterations,
                "loomlite: search exceeded {} schedules — reduce the model",
                cfg.max_iterations
            );
            exp.run_iteration(Arc::clone(&f));
            if !exp.advance() {
                return iterations;
            }
        }
    }
}
