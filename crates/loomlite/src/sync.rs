//! Dual-mode sync primitives: `loom::sync::{Mutex, Condvar}` plus the
//! atomics the model tests use. Constructed on a model thread they are
//! scheduler-mediated; constructed anywhere else they delegate to
//! `std::sync` (so ordinary unit tests keep working under
//! `--cfg loom`).

use std::sync::Arc as StdArc;

use crate::sched::{current, Explorer};

pub use std::sync::{Arc, LockResult, PoisonError};

pub mod atomic;

struct ModelHandle {
    exp: StdArc<Explorer>,
    id: usize,
}

fn model_handle(register: impl FnOnce(&Explorer) -> usize) -> Option<ModelHandle> {
    current().map(|(exp, _)| {
        let id = register(&exp);
        ModelHandle { exp, id }
    })
}

/// Calling-thread id on the owning explorer; panics if a
/// model-constructed primitive escapes to a non-model thread.
fn model_tid() -> usize {
    current()
        .map(|(_, tid)| tid)
        .expect("loomlite: model-constructed primitive used outside model()")
}

/// A mutex whose acquisition order is explored by the scheduler when
/// created inside `model()`. Data always lives in an inner
/// `std::sync::Mutex`, which the model keeps uncontended.
pub struct Mutex<T> {
    model: Option<ModelHandle>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            model: model_handle(Explorer::register_mutex),
            inner: std::sync::Mutex::new(value),
        }
    }

    fn raw_lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.model {
            Some(h) => {
                h.exp.acquire(model_tid(), h.id);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(self.raw_lock()),
                })
            }
            None => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                })),
            },
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases the model lock (if any) on drop,
/// after the inner std guard.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(h) = &self.lock.model {
            h.exp.release(model_tid(), h.id);
        }
    }
}

/// A condition variable; model mode explores notify ordering and
/// budgeted spurious wakeups.
pub struct Condvar {
    model: Option<ModelHandle>,
    real: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            model: model_handle(Explorer::register_condvar),
            real: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match (&self.model, &guard.lock.model) {
            (Some(cv), Some(mx)) => {
                // Invariant: the inner std guard is held only while the
                // model lock is owned, so it must drop before ceding.
                drop(guard.inner.take());
                cv.exp.cv_wait(model_tid(), cv.id, mx.id);
                guard.inner = Some(guard.lock.raw_lock());
                Ok(guard)
            }
            (None, None) => {
                let inner = guard.inner.take().expect("guard taken");
                match self.real.wait(inner) {
                    Ok(g) => {
                        guard.inner = Some(g);
                        Ok(guard)
                    }
                    Err(p) => {
                        guard.inner = Some(p.into_inner());
                        Err(PoisonError::new(guard))
                    }
                }
            }
            _ => panic!("loomlite: condvar and mutex from different modes"),
        }
    }

    pub fn notify_one(&self) {
        match &self.model {
            Some(cv) => cv.exp.notify_one(model_tid(), cv.id),
            None => self.real.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match &self.model {
            Some(cv) => cv.exp.notify_all(model_tid(), cv.id),
            None => self.real.notify_all(),
        }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
