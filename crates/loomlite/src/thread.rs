//! Dual-mode `loom::thread`: model threads are registered with the
//! scheduler and cooperatively serialized; outside `model()` this is
//! plain `std::thread`.

use std::sync::{Arc, Mutex, PoisonError};

use crate::sched::{current, Explorer};

enum Handle<T> {
    Model {
        exp: Arc<Explorer>,
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

pub struct JoinHandle<T> {
    handle: Handle<T>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.handle {
            Handle::Model { exp, tid, slot } => {
                let me = current()
                    .map(|(_, t)| t)
                    .expect("loomlite: join() on a model handle outside model()");
                exp.join(me, tid);
                let v = slot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("loomlite: joined thread produced no value");
                Ok(v)
            }
            Handle::Real(h) => h.join(),
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some((exp, me)) => {
            let slot = Arc::new(Mutex::new(None));
            let out = Arc::clone(&slot);
            let tid = exp.spawn_model(
                me,
                Box::new(move || {
                    let v = f();
                    *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                }),
            );
            JoinHandle {
                handle: Handle::Model { exp, tid, slot },
            }
        }
        None => JoinHandle {
            handle: Handle::Real(std::thread::spawn(f)),
        },
    }
}

pub fn yield_now() {
    match current() {
        Some((exp, me)) => exp.yield_point(me),
        None => std::thread::yield_now(),
    }
}
