//! A minimal, dependency-free model checker exposing a subset of the
//! `loom` crate's API (`loom::sync::{Mutex, Condvar}`, `loom::thread`,
//! `loom::model`). Service code opts in with `--cfg loom`:
//!
//! ```toml
//! [target.'cfg(loom)'.dependencies]
//! loom = { package = "chipleak-loom", path = "../loomlite" }
//! ```
//!
//! and swaps its sync imports behind the cfg, exactly as it would for
//! the real loom. The checker then runs a closure under **every**
//! schedule of its cooperatively-serialized threads (bounded DFS over
//! scheduling choices), instead of the handful an OS scheduler happens
//! to produce.
//!
//! ## Model
//!
//! - Sequential consistency only: at most one model thread executes at
//!   a time, and every synchronization operation (mutex acquire,
//!   condvar wait/notify, atomic access, spawn/join, `yield_now`) is a
//!   *decision point* where the scheduler may switch threads. This is
//!   enough to exhaust lock/condvar protocol interleavings — the
//!   hazards lint rules L12–L15 reason about statically — though it
//!   does not model weak memory reorderings.
//! - **Spurious condvar wakeups** are explored (budgeted per
//!   iteration, default 1): a blocked waiter may be chosen to wake
//!   with no notify, which is what breaks non-predicate-looped waits.
//! - **Deadlock detection**: if no thread is runnable and not all have
//!   finished, the iteration fails with the blocked-thread states.
//! - **Preemption bounding** (default 3, à la CHESS): involuntary
//!   switches away from a still-runnable thread are budgeted, keeping
//!   the search tractable; voluntary blocking never charges the
//!   budget. `Builder { preemption_bound: None, .. }` disables it.
//!
//! ## Dual mode
//!
//! Primitives constructed *outside* a `model()` closure transparently
//! delegate to `std::sync` — so a crate compiled with `--cfg loom`
//! still runs its ordinary unit tests; only code under `model()` is
//! scheduled by the checker.

pub mod sync;
pub mod thread;

mod sched;

pub use sched::{model, Builder};

#[cfg(test)]
mod tests;
