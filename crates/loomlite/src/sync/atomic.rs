//! Sequentially-consistent model atomics: every access is a decision
//! point when the calling thread is under `model()`; plain `std`
//! atomics otherwise. `Ordering` is accepted for API parity but the
//! model always explores SeqCst interleavings (no weak memory).

use crate::sched::current;

pub use std::sync::atomic::Ordering;

fn maybe_yield() {
    if let Some((exp, tid)) = current() {
        exp.yield_point(tid);
    }
}

macro_rules! model_atomic {
    ($name:ident, $std:ty, $val:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            v: $std,
        }

        impl $name {
            pub fn new(v: $val) -> Self {
                Self { v: <$std>::new(v) }
            }

            pub fn load(&self, _order: Ordering) -> $val {
                maybe_yield();
                self.v.load(Ordering::SeqCst)
            }

            pub fn store(&self, val: $val, _order: Ordering) {
                maybe_yield();
                self.v.store(val, Ordering::SeqCst)
            }

            pub fn swap(&self, val: $val, _order: Ordering) -> $val {
                maybe_yield();
                self.v.swap(val, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                cur: $val,
                new: $val,
                _ok: Ordering,
                _err: Ordering,
            ) -> Result<$val, $val> {
                maybe_yield();
                self.v
                    .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    };
}

model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);

macro_rules! model_atomic_arith {
    ($name:ident, $val:ty) => {
        impl $name {
            pub fn fetch_add(&self, val: $val, _order: Ordering) -> $val {
                maybe_yield();
                self.v.fetch_add(val, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, val: $val, _order: Ordering) -> $val {
                maybe_yield();
                self.v.fetch_sub(val, Ordering::SeqCst)
            }

            pub fn fetch_or(&self, val: $val, _order: Ordering) -> $val {
                maybe_yield();
                self.v.fetch_or(val, Ordering::SeqCst)
            }
        }
    };
}

model_atomic_arith!(AtomicUsize, usize);
model_atomic_arith!(AtomicU64, u64);
