//! Self-checks for the model checker: it must explore real
//! interleavings, catch the classic condvar/lock bugs, and stay out of
//! the way outside `model()`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex, PoisonError};
use crate::{model, thread, Builder};

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

#[test]
fn counter_under_mutex_is_exact() {
    let iterations = Builder::default().check(|| {
        let n = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            handles.push(thread::spawn(move || {
                let mut g = n.lock().unwrap_or_else(PoisonError::into_inner);
                *g += 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let g = n.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(*g, 2);
    });
    assert!(
        iterations > 1,
        "expected multiple schedules, got {iterations}"
    );
}

#[test]
fn atomic_increments_are_exact() {
    model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            handles.push(thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn ab_ba_lock_order_deadlocks() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder {
            spurious_budget: 0,
            ..Builder::default()
        }
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap_or_else(PoisonError::into_inner);
                let _gb = b2.lock().unwrap_or_else(PoisonError::into_inner);
            });
            {
                let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
            }
            h.join().unwrap();
        });
    }));
    let msg = panic_message(result.expect_err("AB/BA must be caught"));
    assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
}

#[test]
fn non_looped_condvar_wait_fails_under_spurious_wakeup() {
    // The classic bug L15 forbids statically: `if !flag { wait() }`
    // instead of `while !flag { wait() }`. A spurious (or early)
    // wakeup returns with the predicate still false.
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = Arc::clone(&state);
            let h = thread::spawn(move || {
                let (flag, cv) = &*setter;
                *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
                cv.notify_one();
            });
            let (flag, cv) = &*state;
            let mut g = flag.lock().unwrap_or_else(PoisonError::into_inner);
            if !*g {
                g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
            assert!(*g, "woke with predicate still false");
            drop(g);
            h.join().unwrap();
        });
    }));
    let msg = panic_message(result.expect_err("non-looped wait must fail"));
    assert!(
        msg.contains("predicate still false"),
        "unexpected panic: {msg}"
    );
}

#[test]
fn looped_condvar_wait_passes() {
    model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = Arc::clone(&state);
        let h = thread::spawn(move || {
            let (flag, cv) = &*setter;
            *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
            cv.notify_one();
        });
        let (flag, cv) = &*state;
        let mut g = flag.lock().unwrap_or_else(PoisonError::into_inner);
        while !*g {
            g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        drop(g);
        h.join().unwrap();
    });
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    // Non-atomic check-then-wait: the notifier can fire between the
    // lockless check and the wait, leaving the waiter blocked forever.
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder {
            spurious_budget: 0,
            ..Builder::default()
        }
        .check(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let setter = Arc::clone(&state);
            let h = thread::spawn(move || {
                let (flag, cv) = &*setter;
                *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
                cv.notify_one();
            });
            let (flag, cv) = &*state;
            let ready = { *flag.lock().unwrap_or_else(PoisonError::into_inner) };
            if !ready {
                // BUG: the flag may flip (and notify fire) right here.
                let g = flag.lock().unwrap_or_else(PoisonError::into_inner);
                let g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                drop(g);
            }
            h.join().unwrap();
        });
    }));
    let msg = panic_message(result.expect_err("lost wakeup must be caught"));
    assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
}

#[test]
fn reentrant_lock_is_reported() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let m = Mutex::new(0u32);
            let _a = m.lock().unwrap_or_else(PoisonError::into_inner);
            let _b = m.lock().unwrap_or_else(PoisonError::into_inner);
        });
    }));
    let msg = panic_message(result.expect_err("reentrant lock must be caught"));
    assert!(msg.contains("re-acquired"), "unexpected panic: {msg}");
}

#[test]
fn preemption_bound_shrinks_search() {
    let run = |bound| {
        Builder {
            preemption_bound: bound,
            spurious_budget: 0,
            ..Builder::default()
        }
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n = Arc::clone(&n);
                handles.push(thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                    n.fetch_add(1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::SeqCst), 4);
        })
    };
    let bounded = run(Some(1));
    let unbounded = run(None);
    assert!(
        bounded < unbounded,
        "bound 1 ({bounded}) should explore fewer schedules than unbounded ({unbounded})"
    );
}

#[test]
fn primitives_work_outside_model() {
    // Real mode: plain std behaviour, OS threads truly concurrent.
    let state = Arc::new((Mutex::new(0u32), Condvar::new()));
    let s2 = Arc::clone(&state);
    let h = thread::spawn(move || {
        let (m, cv) = &*s2;
        *m.lock().unwrap_or_else(PoisonError::into_inner) = 7;
        cv.notify_all();
    });
    let (m, cv) = &*state;
    let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
    while *g == 0 {
        g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    assert_eq!(*g, 7);
    drop(g);
    h.join().unwrap();
}
