//! Small dense matrices with the factorizations the leakage flow needs.
//!
//! The workspace only ever factors *small* systems (cell fitting: 3×3 normal
//! equations; DC operating points: ≤ ~12 nodes; Cholesky field sampling on
//! modest grids), so a straightforward row-major `Vec<f64>` representation
//! with textbook `O(n³)` algorithms is the right tool — no BLAS, no unsafe.

use crate::error::NumericError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use leakage_numeric::Matrix;
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
/// let chol = a.cholesky().unwrap();
/// let x = chol.solve(&[2.0, 1.0]);
/// // verify A x = b
/// let b = a.mul_vec(&x).unwrap();
/// assert!((b[0] - 2.0).abs() < 1e-12 && (b[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `rows` is empty or the
    /// rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix, NumericError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NumericError::InvalidArgument {
                reason: "from_rows requires at least one non-empty row".into(),
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NumericError::InvalidArgument {
                reason: "all rows must have the same length".into(),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a square matrix from a flat row-major slice.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len() != n*n`.
    pub fn from_flat(n: usize, data: &[f64]) -> Result<Matrix, NumericError> {
        if data.len() != n * n || n == 0 {
            return Err(NumericError::InvalidArgument {
                reason: format!("expected {} entries for a {n}x{n} matrix", n * n),
            });
        }
        Ok(Matrix {
            rows: n,
            cols: n,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing storage (`rows * cols` values).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major backing storage; row `r` occupies
    /// `[r * cols, (r + 1) * cols)`.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if inner dimensions differ.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        if self.cols != other.rows {
            return Err(NumericError::ShapeMismatch {
                op: "matrix multiply",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, NumericError> {
        if v.len() != self.cols {
            return Err(NumericError::ShapeMismatch {
                op: "matrix-vector multiply",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, NumericError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericError::ShapeMismatch {
                op: "matrix add",
                lhs: (self.rows, self.cols),
                rhs: (other.rows, other.cols),
            });
        }
        let mut out = self.clone();
        for (o, b) in out.data.iter_mut().zip(&other.data) {
            *o += b;
        }
        Ok(out)
    }

    /// Returns `self` scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Maximum absolute entry (∞-norm building block).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Cholesky factorization of a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NotPositiveDefinite`] if a pivot is
    /// non-positive, and [`NumericError::InvalidArgument`] if not square.
    pub fn cholesky(&self) -> Result<Cholesky, NumericError> {
        if !self.is_square() {
            return Err(NumericError::InvalidArgument {
                reason: "cholesky requires a square matrix".into(),
            });
        }
        let n = self.rows;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NumericError::NotPositiveDefinite { pivot: i });
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(Cholesky { n, l })
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] on a vanishing pivot and
    /// [`NumericError::InvalidArgument`] if not square.
    pub fn lu(&self) -> Result<Lu, NumericError> {
        if !self.is_square() {
            return Err(NumericError::InvalidArgument {
                reason: "lu requires a square matrix".into(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        debug_assert!(a.len() == n * n, "square matrix checked above");
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < 1e-300 {
                return Err(NumericError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                a[i * n + k] = factor;
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Ok(Lu { n, a, perm, sign })
    }

    /// Solves `self * x = b` via LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`Matrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        if b.len() != self.rows {
            return Err(NumericError::ShapeMismatch {
                op: "solve",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        Ok(self.lu()?.solve(b))
    }

    /// Determinant via LU.
    ///
    /// # Errors
    ///
    /// Returns an error only for non-square input; a singular matrix yields
    /// determinant `0.0`.
    pub fn det(&self) -> Result<f64, NumericError> {
        if !self.is_square() {
            return Err(NumericError::InvalidArgument {
                reason: "det requires a square matrix".into(),
            });
        }
        match self.lu() {
            Ok(lu) => Ok(lu.det()),
            Err(NumericError::Singular { .. }) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Inverse via LU.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Singular`] if the matrix is singular.
    pub fn inverse(&self) -> Result<Matrix, NumericError> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.iter_mut().for_each(|v| *v = 0.0);
            e[j] = 1.0;
            let col = lu.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:12.6e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    l: Vec<f64>,
}

impl Cholesky {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` of the lower-triangular factor (zero above diagonal).
    pub fn factor(&self, i: usize, j: usize) -> f64 {
        if j > i {
            0.0
        } else {
            self.l[i * self.n + j]
        }
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let n = self.n;
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[i * n + k] * y[k];
            }
            y[i] = sum / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[k * n + i] * x[k];
            }
            x[i] = sum / self.l[i * n + i];
        }
        x
    }

    /// Applies the factor: returns `L v` (used to color white noise when
    /// sampling correlated Gaussians).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim()`.
    pub fn mul_factor(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "vector length must match dimension");
        let n = self.n;
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.l[i * n + k] * v[k]; // chipleak-lint: allow(l10): fixed-k row dot product; Kahan would change golden-pinned bits
            }
            out[i] = acc;
        }
        out
    }

    /// Log-determinant of the original matrix `A`.
    pub fn log_det(&self) -> f64 {
        let n = self.n;
        (0..n).map(|i| self.l[i * n + i].ln()).sum::<f64>() * 2.0
    }
}

/// LU factorization with partial pivoting (`P A = L U`).
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    /// Packed factors: strict lower = multipliers, upper incl. diagonal = U.
    a: Vec<f64>,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length must match dimension");
        let n = self.n;
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower factor.
        for i in 1..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.a[i * n + k] * x[k];
            }
            x[i] = sum;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.a[i * n + k] * x[k];
            }
            x[i] = sum / self.a[i * n + i];
        }
        x
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let n = self.n;
        self.sign * (0..n).map(|i| self.a[i * n + i]).product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn identity_multiplication_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.mul(&i).unwrap(), a);
        assert_eq!(i.mul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn mul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.mul(&b), Err(NumericError::ShapeMismatch { .. })));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1: &[f64] = &[1.0, 2.0];
        let r2: &[f64] = &[3.0];
        assert!(Matrix::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn lu_solve_recovers_known_solution() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        // Known system with solution (2, 3, -1).
        let b = [8.0, -11.0, -3.0];
        let x = a.solve(&b).unwrap();
        assert_close(x[0], 2.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
        assert_close(x[2], -1.0, 1e-12);
    }

    #[test]
    fn lu_pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-14);
        assert_close(x[1], 2.0, 1e-14);
    }

    #[test]
    fn det_of_singular_is_zero() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_close(a.det().unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn det_known_value() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        assert_close(a.det().unwrap(), -14.0, 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert_close(prod[(i, j)], if i == j { 1.0 } else { 0.0 }, 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_matches_known_factor() {
        // A = [[4, 12, -16], [12, 37, -43], [-16, -43, 98]] has
        // L = [[2,0,0],[6,1,0],[-8,5,3]] (classic example).
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let c = a.cholesky().unwrap();
        assert_close(c.factor(0, 0), 2.0, 1e-12);
        assert_close(c.factor(1, 0), 6.0, 1e-12);
        assert_close(c.factor(1, 1), 1.0, 1e-12);
        assert_close(c.factor(2, 0), -8.0, 1e-12);
        assert_close(c.factor(2, 1), 5.0, 1e-12);
        assert_close(c.factor(2, 2), 3.0, 1e-12);
        assert_close(c.factor(0, 2), 0.0, 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(NumericError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholesky_solve_agrees_with_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let b = [1.0, -2.0, 3.5];
        let x1 = a.cholesky().unwrap().solve(&b);
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert_close(*u, *v, 1e-12);
        }
    }

    #[test]
    fn cholesky_mul_factor_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let c = a.cholesky().unwrap();
        // L * L^T column check via mul_factor on unit vectors:
        let l_e0 = c.mul_factor(&[1.0, 0.0]);
        let l_e1 = c.mul_factor(&[0.0, 1.0]);
        // A[0][0] = row0(L) . row0(L)
        let a00 = l_e0[0] * l_e0[0] + l_e1[0] * l_e1[0];
        assert_close(a00, 4.0, 1e-12);
    }

    #[test]
    fn cholesky_log_det_matches_lu_det() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]).unwrap();
        let ld = a.cholesky().unwrap().log_det();
        assert_close(ld.exp(), a.det().unwrap(), 1e-9);
    }

    #[test]
    #[should_panic(expected = "matrix index out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::identity(2);
        let b = a.scaled(2.0).add(&a).unwrap();
        assert_close(b[(0, 0)], 3.0, 0.0);
        assert_close(b[(0, 1)], 0.0, 0.0);
    }
}
