//! Numerical quadrature for the constant-time leakage estimators.
//!
//! The paper's O(1) estimators (Eqs. 20 and 25) replace the O(n) lattice sum
//! by integrals of `weight(x, y) · ρ(√(x²+y²))`. Correlation functions are
//! smooth except possibly at a compact-support cutoff, so composite
//! Gauss–Legendre plus an adaptive Simpson fallback covers every case.

use crate::error::NumericError;

/// Gauss–Legendre nodes and weights on `[-1, 1]` for a given order.
///
/// Nodes are computed by Newton iteration on the Legendre polynomial with
/// the Chebyshev asymptotic as the initial guess; accurate to ~1e-15 for
/// orders up to several hundred.
///
/// # Example
///
/// ```
/// let (x, w) = leakage_numeric::integrate::gauss_legendre_rule(8);
/// let total: f64 = w.iter().sum();
/// assert!((total - 2.0).abs() < 1e-12); // weights sum to length of [-1,1]
/// # let _ = x;
/// ```
///
/// # Panics
///
/// Panics if `order == 0`.
pub fn gauss_legendre_rule(order: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(order > 0, "quadrature order must be positive");
    let n = order;
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-like initial guess for the i-th root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(x) and P'_n(x) by recurrence.
            let mut p0 = 1.0;
            let mut p1 = x;
            for k in 2..=n {
                let kf = k as f64;
                let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
                p0 = p1;
                p1 = p2;
            }
            // p1 = P_n, p0 = P_{n-1}
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
    }
    (nodes, weights)
}

/// Integrates `f` over `[a, b]` with a single Gauss–Legendre rule.
///
/// # Example
///
/// ```
/// use leakage_numeric::integrate::gauss_legendre;
/// let v = gauss_legendre(|x| x * x, 0.0, 1.0, 16);
/// assert!((v - 1.0 / 3.0).abs() < 1e-14);
/// ```
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, order: usize) -> f64 {
    let (nodes, weights) = gauss_legendre_rule(order);
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    let mut acc = 0.0;
    for (x, w) in nodes.iter().zip(&weights) {
        acc += w * f(mid + half * x);
    }
    acc * half
}

/// Integrates `f` over `[a, b]` by splitting into `panels` equal panels,
/// each handled by a Gauss–Legendre rule of the given order.
///
/// Useful when the integrand has a kink (e.g. a compact-support correlation
/// cutoff) whose location is unknown.
pub fn composite_gauss_legendre<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    order: usize,
    panels: usize,
) -> f64 {
    assert!(panels > 0, "panel count must be positive");
    let (nodes, weights) = gauss_legendre_rule(order);
    let h = (b - a) / panels as f64;
    let mut acc = 0.0;
    for p in 0..panels {
        let lo = a + p as f64 * h;
        let half = 0.5 * h;
        let mid = lo + half;
        for (x, w) in nodes.iter().zip(&weights) {
            acc += w * f(mid + half * x);
        }
    }
    acc * 0.5 * h
}

/// Adaptive Simpson integration to a requested absolute tolerance.
///
/// # Errors
///
/// Returns [`NumericError::NoConvergence`] if the recursion depth budget is
/// exhausted before reaching `tol`, and [`NumericError::InvalidArgument`]
/// for a non-positive tolerance.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    tol: f64,
) -> Result<f64, NumericError> {
    if !(tol > 0.0) {
        return Err(NumericError::InvalidArgument {
            reason: "tolerance must be positive".into(),
        });
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    let mut budget = 20_000usize;
    let v = simpson_rec(f, a, b, fa, fm, fb, whole, tol, 60, &mut budget)?;
    Ok(v)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn simpson_rec<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
    budget: &mut usize,
) -> Result<f64, NumericError> {
    if *budget == 0 || depth == 0 {
        return Err(NumericError::NoConvergence {
            what: "adaptive simpson",
            iterations: 20_000,
        });
    }
    *budget -= 1;
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        Ok(left + right + delta / 15.0)
    } else {
        let lv = simpson_rec(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1, budget)?;
        let rv = simpson_rec(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1, budget)?;
        Ok(lv + rv)
    }
}

/// 2-D tensor-product Gauss–Legendre integral of `f` over
/// `[ax, bx] × [ay, by]`.
///
/// This is the workhorse of the O(1) rectangular estimator (paper Eq. 20):
/// the integrand `(W−x)(H−y)ρ(√(x²+y²))` is smooth on the interior, so a
/// modest composite rule reaches well below the model error.
pub fn gauss_legendre_2d<F: Fn(f64, f64) -> f64>(
    f: F,
    ax: f64,
    bx: f64,
    ay: f64,
    by: f64,
    order: usize,
    panels: usize,
) -> f64 {
    assert!(panels > 0, "panel count must be positive");
    let (nodes, weights) = gauss_legendre_rule(order);
    let hx = (bx - ax) / panels as f64;
    let hy = (by - ay) / panels as f64;
    let mut acc = 0.0;
    for px in 0..panels {
        let lox = ax + px as f64 * hx;
        let midx = lox + 0.5 * hx;
        for py in 0..panels {
            let loy = ay + py as f64 * hy;
            let midy = loy + 0.5 * hy;
            for (xi, wx) in nodes.iter().zip(&weights) {
                let x = midx + 0.5 * hx * xi;
                for (yi, wy) in nodes.iter().zip(&weights) {
                    let y = midy + 0.5 * hy * yi;
                    acc += wx * wy * f(x, y);
                }
            }
        }
    }
    acc * 0.25 * hx * hy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_nodes_are_symmetric_and_sorted() {
        for order in [1, 2, 3, 5, 8, 16, 33, 64] {
            let (x, w) = gauss_legendre_rule(order);
            assert_eq!(x.len(), order);
            for i in 1..order {
                assert!(x[i] > x[i - 1], "nodes must be increasing");
            }
            for i in 0..order {
                assert!((x[i] + x[order - 1 - i]).abs() < 1e-14, "symmetry");
                assert!(w[i] > 0.0, "weights positive");
            }
            let total: f64 = w.iter().sum();
            assert!((total - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gl_exact_for_polynomials_up_to_2n_minus_1() {
        // Order-4 rule integrates x^7 exactly.
        let v = gauss_legendre(|x| x.powi(7), 0.0, 1.0, 4);
        assert!((v - 1.0 / 8.0).abs() < 1e-14);
        // ... but not x^8 exactly; still close.
        let v8 = gauss_legendre(|x| x.powi(8), 0.0, 1.0, 4);
        assert!((v8 - 1.0 / 9.0).abs() < 1e-4);
    }

    #[test]
    fn gl_known_transcendental() {
        let v = gauss_legendre(f64::exp, 0.0, 1.0, 24);
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-13);
    }

    #[test]
    fn composite_handles_kink() {
        // tent function: 1-x for x<1 else 0; integral over [0,2] = 0.5
        let f = |x: f64| (1.0 - x).max(0.0);
        let v = composite_gauss_legendre(f, 0.0, 2.0, 16, 64);
        assert!((v - 0.5).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn adaptive_simpson_smooth() {
        let v = adaptive_simpson(&|x: f64| x.sin(), 0.0, std::f64::consts::PI, 1e-10).unwrap();
        assert!((v - 2.0).abs() < 1e-8);
    }

    #[test]
    fn adaptive_simpson_kink() {
        let v = adaptive_simpson(&|x: f64| (1.0 - x).max(0.0), 0.0, 2.0, 1e-10).unwrap();
        assert!((v - 0.5).abs() < 1e-8);
    }

    #[test]
    fn adaptive_simpson_rejects_bad_tol() {
        assert!(adaptive_simpson(&|x: f64| x, 0.0, 1.0, 0.0).is_err());
        assert!(adaptive_simpson(&|x: f64| x, 0.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn quad_2d_separable() {
        // ∫∫ xy over [0,1]² = 1/4
        let v = gauss_legendre_2d(|x, y| x * y, 0.0, 1.0, 0.0, 1.0, 8, 1);
        assert!((v - 0.25).abs() < 1e-13);
    }

    #[test]
    fn quad_2d_radial() {
        // ∫∫ exp(-(x²+y²)) over [0,3]² ≈ (√π/2 · erf(3))² ≈ (0.886207·0.99998)²
        let v = gauss_legendre_2d(|x, y| (-(x * x + y * y)).exp(), 0.0, 3.0, 0.0, 3.0, 16, 4);
        let erf3 = crate::special::erf(3.0);
        let expected = (0.5 * std::f64::consts::PI.sqrt() * erf3).powi(2);
        assert!((v - expected).abs() < 1e-10, "got {v}, want {expected}");
    }

    #[test]
    fn reversed_interval_negates() {
        let a = gauss_legendre(|x| x * x, 0.0, 2.0, 8);
        let b = gauss_legendre(|x| x * x, 2.0, 0.0, 8);
        assert!((a + b).abs() < 1e-13);
    }
}
