//! Special functions: error function and the normal distribution helpers.

/// Error function, accurate to near machine precision (power series for
/// small arguments, Lentz continued fraction for the complementary tail).
///
/// # Example
///
/// ```
/// let v = leakage_numeric::special::erf(1.0);
/// assert!((v - 0.8427007929497149).abs() < 1e-14);
/// ```
pub fn erf(x: f64) -> f64 {
    let z = x.abs();
    let v = if z < 3.0 {
        erf_series(z)
    } else {
        1.0 - erfc_cfrac(z)
    };
    if x >= 0.0 {
        v
    } else {
        -v
    }
}

/// Power series erf(x) = (2/√π) Σ (−1)ⁿ x^{2n+1} / (n!(2n+1)), |x| ≲ 3.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for n in 1..200 {
        let nf = n as f64;
        term *= -x2 / nf;
        let add = term / (2.0 * nf + 1.0);
        sum += add;
        if add.abs() < 1e-18 * sum.abs() {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// erfc(x) for x ≥ 3 via the classic continued fraction
/// erfc(x) = exp(−x²)/(x√π) · 1/(1 + 1/(2x²)/(1 + 2/(2x²)/(1 + …)))
/// evaluated with modified Lentz.
fn erfc_cfrac(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let x2 = x * x;
    let mut f = TINY;
    let mut c = f;
    let mut d = 0.0;
    // Continued fraction: b0 = x, a1 = 1, b1 = x... use the form
    // erfc(x)·√π·e^{x²} = 1/(x + 1/2/(x + 1/(x + 3/2/(x + 2/(x + ...)))))
    // a_n = n/2, b_n = x.
    for n in 0..200 {
        let an = if n == 0 { 1.0 } else { n as f64 / 2.0 };
        let bn = x;
        d = bn + an * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = bn + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    // First step seeds f with 1/(x + ...), so here f already equals the CF.
    f * (-x2).exp() / std::f64::consts::PI.sqrt()
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (Acklam's algorithm, relative error < 1.15e-9).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile level must be in (0, 1)");
    // Coefficients for Acklam's rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step for full double-ish precision.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12, "odd symmetry");
        assert!((erf(6.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_symmetry_and_extremes() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        for x in [-3.0, -1.0, 0.5, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
        }
        assert!(normal_cdf(8.0) > 1.0 - 1e-12);
        assert!(normal_cdf(-8.0) < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-7,
                "p = {p}: cdf(quantile) = {}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((normal_quantile(0.841_344_746) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "quantile level must be in (0, 1)")]
    fn quantile_rejects_zero() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        assert!((normal_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-15);
    }
}
