//! Error type shared by the numerical kernels.

use std::fmt;

/// Errors produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A matrix operation received operands of incompatible shape.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left/first operand.
        lhs: (usize, usize),
        /// Shape of the right/second operand.
        rhs: (usize, usize),
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// LU factorization hit a (numerically) singular pivot.
    Singular {
        /// Index of the singular pivot.
        pivot: usize,
    },
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Routine that failed.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside the routine's domain.
    InvalidArgument {
        /// What was wrong with the argument.
        reason: String,
    },
    /// A worker closure panicked inside a fault-tolerant parallel region
    /// ([`crate::parallel::Parallelism::try_map_chunks`]).
    WorkerPanic {
        /// Smallest chunk index whose closure panicked (deterministic:
        /// independent of scheduling).
        chunk: usize,
        /// Panic payload when it was a string; `"<non-string panic>"`
        /// otherwise.
        message: String,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NumericError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite at pivot {pivot}")
            }
            NumericError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            NumericError::InvalidArgument { reason } => {
                write!(f, "invalid argument: {reason}")
            }
            NumericError::WorkerPanic { chunk, message } => {
                write!(f, "worker panicked on chunk {chunk}: {message}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumericError::ShapeMismatch {
                op: "mul",
                lhs: (2, 3),
                rhs: (4, 5),
            },
            NumericError::NotPositiveDefinite { pivot: 1 },
            NumericError::Singular { pivot: 0 },
            NumericError::NoConvergence {
                what: "newton",
                iterations: 10,
            },
            NumericError::InvalidArgument {
                reason: "n must be positive".into(),
            },
            NumericError::WorkerPanic {
                chunk: 3,
                message: "boom".into(),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
