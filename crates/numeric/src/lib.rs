//! Self-contained numerical kernels for the full-chip leakage workspace.
//!
//! This crate deliberately avoids external linear-algebra dependencies: the
//! leakage estimators only need *small* dense matrices (cell fitting uses
//! 3×3 normal equations, the correlation map a 2×2 Gaussian quadratic form),
//! 1-D/2-D quadrature for the constant-time estimators, an FFT for
//! circulant-embedding field sampling, and streaming statistics for the
//! Monte-Carlo engines.
//!
//! # Example
//!
//! ```
//! use leakage_numeric::integrate::gauss_legendre;
//!
//! // ∫₀^π sin(x) dx = 2
//! let v = gauss_legendre(|x| x.sin(), 0.0, std::f64::consts::PI, 32);
//! assert!((v - 2.0).abs() < 1e-12);
//! ```

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod error;
pub mod fft;
pub mod integrate;
pub mod interp;
pub mod matrix;
pub mod parallel;
pub mod quadform;
pub mod regression;
pub mod special;
pub mod stats;

pub use error::NumericError;
pub use matrix::Matrix;
pub use parallel::Parallelism;

// Re-export the observability layer so downstream crates can name
// `Instruments` without a direct `leakage-obs` dependency.
pub use leakage_obs as obs;
pub use leakage_obs::Instruments;
