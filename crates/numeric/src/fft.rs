//! Radix-2 FFT used for circulant-embedding sampling of correlated
//! channel-length fields.
//!
//! The Monte-Carlo engine embeds the (stationary) within-die covariance on a
//! doubled torus; sampling then costs two 2-D FFTs instead of an `O(n³)`
//! Cholesky factorization. Grids are padded to powers of two.

use crate::error::NumericError;
use crate::parallel::Parallelism;
use leakage_obs::Instruments;

/// A complex number as a `(re, im)` pair; minimal on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Complex {
        Complex { re: 0.0, im: 0.0 }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// Rounds `n` up to the next power of two (identity on powers of two).
///
/// # Example
///
/// ```
/// assert_eq!(leakage_numeric::fft::next_pow2(5), 8);
/// assert_eq!(leakage_numeric::fft::next_pow2(8), 8);
/// assert_eq!(leakage_numeric::fft::next_pow2(1), 1);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT on a power-of-two-length buffer.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the length is not a power
/// of two (or is zero).
pub fn fft(data: &mut [Complex]) -> Result<(), NumericError> {
    transform(data, false)
}

/// In-place inverse FFT (includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the length is not a power
/// of two (or is zero).
pub fn ifft(data: &mut [Complex]) -> Result<(), NumericError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), NumericError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(NumericError::InvalidArgument {
            reason: format!("fft length must be a power of two, got {n}"),
        });
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Iterative Cooley–Tukey butterflies. Every `i + k + len / 2` stays
    // below `n` because `len` divides the power-of-two `n` checked above.
    debug_assert!(n.is_power_of_two());
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wl = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wl;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place 2-D FFT on a row-major `rows × cols` buffer; both dimensions
/// must be powers of two.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn fft2d(data: &mut [Complex], rows: usize, cols: usize) -> Result<(), NumericError> {
    fft2d_with(data, rows, cols, Parallelism::serial())
}

/// In-place inverse 2-D FFT (normalized by `1/(rows·cols)`).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn ifft2d(data: &mut [Complex], rows: usize, cols: usize) -> Result<(), NumericError> {
    ifft2d_with(data, rows, cols, Parallelism::serial())
}

/// [`fft2d`] with an explicit thread budget. Row transforms run on disjoint
/// row slices; column transforms run as row transforms of the transpose.
/// Bit-identical to the serial [`fft2d`] for every thread count.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn fft2d_with(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
) -> Result<(), NumericError> {
    fft2d_instrumented(data, rows, cols, par, Instruments::none())
}

/// [`fft2d_with`] reporting to an injected [`Instruments`]: one span plus
/// call/point counters per transform. The metrics are recorded from the
/// calling thread, so they are identical for every thread budget.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn fft2d_instrumented(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
    ins: Instruments<'_>,
) -> Result<(), NumericError> {
    let _span = ins.span("numeric.fft2d");
    ins.add("numeric.fft2d.calls", 1);
    ins.add("numeric.fft2d.points", (rows * cols) as u64);
    transform2d(data, rows, cols, false, par)
}

/// [`ifft2d`] with an explicit thread budget; see [`fft2d_with`].
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn ifft2d_with(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
) -> Result<(), NumericError> {
    ifft2d_instrumented(data, rows, cols, par, Instruments::none())
}

/// [`ifft2d_with`] reporting to an injected [`Instruments`]; see
/// [`fft2d_instrumented`].
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn ifft2d_instrumented(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
    ins: Instruments<'_>,
) -> Result<(), NumericError> {
    let _span = ins.span("numeric.ifft2d");
    ins.add("numeric.ifft2d.calls", 1);
    ins.add("numeric.ifft2d.points", (rows * cols) as u64);
    transform2d(data, rows, cols, true, par)?;
    scale_inverse(data, rows, cols);
    Ok(())
}

fn scale_inverse(data: &mut [Complex], rows: usize, cols: usize) {
    let scale = (rows * cols) as f64;
    for v in data.iter_mut() {
        v.re /= scale;
        v.im /= scale;
    }
}

fn transform2d(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    inverse: bool,
    par: Parallelism,
) -> Result<(), NumericError> {
    if data.len() != rows * cols {
        return Err(NumericError::InvalidArgument {
            reason: format!("buffer length {} does not match {rows}x{cols}", data.len()),
        });
    }
    if !rows.is_power_of_two() || !cols.is_power_of_two() {
        return Err(NumericError::InvalidArgument {
            reason: format!("fft2d dimensions must be powers of two, got {rows}x{cols}"),
        });
    }
    // All row-major indexing below relies on the length check above.
    debug_assert!(data.len() == rows * cols);
    if par.is_serial() {
        // Rows.
        for r in 0..rows {
            transform(&mut data[r * cols..(r + 1) * cols], inverse)?;
        }
        // Columns (gather/scatter through a scratch buffer).
        let mut col = vec![Complex::zero(); rows];
        for c in 0..cols {
            for r in 0..rows {
                col[r] = data[r * cols + c];
            }
            transform(&mut col, inverse)?;
            for r in 0..rows {
                data[r * cols + c] = col[r];
            }
        }
        return Ok(());
    }
    // Rows: disjoint `cols`-length slices, validated above so the inner
    // transform cannot fail.
    par.for_each_chunk_mut(data, cols, |_, row| {
        // chipleak-lint: allow(l5): dimensions validated as powers of two at fn entry
        transform(row, inverse).expect("row length validated as power of two");
    });
    // Columns: transpose, transform the transposed rows, transpose back.
    // Each column transform sees exactly the bytes the gather/scatter serial
    // path would feed it, so the result is bit-identical.
    let mut t = vec![Complex::zero(); rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = data[r * cols + c];
        }
    }
    par.for_each_chunk_mut(&mut t, rows, |_, col| {
        // chipleak-lint: allow(l5): dimensions validated as powers of two at fn entry
        transform(col, inverse).expect("column length validated as power of two");
    });
    for r in 0..rows {
        for c in 0..cols {
            data[r * cols + c] = t[c * rows + r];
        }
    }
    Ok(())
}

/// A precomputed radix-2 FFT plan for one transform length.
///
/// [`fft`]/[`ifft`] recompute the per-stage twiddle factors with an
/// iterative recurrence (`w ← w·wₗ`) on every call — roughly half the
/// arithmetic in the butterfly loop. A plan stores those twiddles (plus the
/// bit-reversal permutation) once and reuses them, which is what makes
/// batched Monte-Carlo sampling cheap: one plan per torus grid, thousands
/// of executions.
///
/// The tables are generated by the *identical* recurrence the direct
/// transform uses — not by `cos`/`sin` per index — so a planned transform
/// is **bit-identical** to [`fft`]/[`ifft`] on the same input. Tests pin
/// this on random buffers.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal swaps `(i, j)` with `i < j`, in the order the direct
    /// transform performs them.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated: stage `len` contributes
    /// `len/2` factors, `n - 1` total.
    fwd: Vec<Complex>,
    /// Inverse twiddles (conjugate recurrence), same layout.
    inv: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `n` is not a power of
    /// two (or is zero).
    pub fn new(n: usize) -> Result<FftPlan, NumericError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(NumericError::InvalidArgument {
                reason: format!("fft plan length must be a power of two, got {n}"),
            });
        }
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        Ok(FftPlan {
            n,
            swaps,
            fwd: stage_twiddles(n, false),
            inv: stage_twiddles(n, true),
        })
    }

    /// The transform length the plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-1 plan, whose transform is a no-op.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// In-place forward FFT; bit-identical to [`fft`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan length.
    pub fn forward(&self, data: &mut [Complex]) -> Result<(), NumericError> {
        self.check_len(data)?;
        self.run(data, &self.fwd);
        Ok(())
    }

    /// In-place inverse FFT including the `1/n` normalization;
    /// bit-identical to [`ifft`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan length.
    pub fn inverse(&self, data: &mut [Complex]) -> Result<(), NumericError> {
        self.check_len(data)?;
        self.run(data, &self.inv);
        let n = self.n as f64;
        for v in data.iter_mut() {
            v.re /= n;
            v.im /= n;
        }
        Ok(())
    }

    fn check_len(&self, data: &[Complex]) -> Result<(), NumericError> {
        if data.len() != self.n {
            return Err(NumericError::InvalidArgument {
                reason: format!("plan length {} vs buffer length {}", self.n, data.len()),
            });
        }
        Ok(())
    }

    /// Shared butterfly pass over a precomputed twiddle table. Identical
    /// data flow to `transform`, with the `w ← w·wₗ` recurrence replaced
    /// by a table read of the very values that recurrence produces. The
    /// blocks are walked through `chunks_exact_mut`/`split_at_mut` so the
    /// inner loop carries no bounds checks; the butterfly arithmetic and
    /// its evaluation order are unchanged, keeping the pass bit-identical
    /// to the direct transform.
    fn run(&self, data: &mut [Complex], twiddles: &[Complex]) {
        debug_assert!(
            data.len() == self.n && twiddles.len() + 1 == self.n.max(1),
            "buffer and twiddle table sized by the plan"
        );
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let n = self.n;
        let mut len = 2;
        let mut offset = 0;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[offset..offset + half];
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for ((x, y), w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage) {
                    let u = *x;
                    let v = *y * *w;
                    *x = u + v;
                    *y = u - v;
                }
            }
            offset += half;
            len <<= 1;
        }
    }
}

/// Twiddle factors for all stages of a length-`n` transform, concatenated
/// in stage order, generated with the same `w ← w·wₗ` recurrence as the
/// direct transform (bit-for-bit the values it would recompute).
fn stage_twiddles(n: usize, inverse: bool) -> Vec<Complex> {
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wl = Complex::new(ang.cos(), ang.sin());
        let mut w = Complex::new(1.0, 0.0);
        for _ in 0..len / 2 {
            out.push(w);
            w = w * wl;
        }
        len <<= 1;
    }
    out
}

/// A 2-D FFT plan: one [`FftPlan`] per dimension plus the data-movement
/// strategy of [`fft2d_with`], so planned 2-D transforms are bit-identical
/// to the free functions for every thread budget.
#[derive(Debug, Clone)]
pub struct Fft2dPlan {
    rows: usize,
    cols: usize,
    row_plan: FftPlan,
    col_plan: FftPlan,
}

impl Fft2dPlan {
    /// Builds a plan for row-major `rows × cols` buffers.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is not
    /// a power of two (or is zero).
    pub fn new(rows: usize, cols: usize) -> Result<Fft2dPlan, NumericError> {
        Ok(Fft2dPlan {
            rows,
            cols,
            row_plan: FftPlan::new(cols)?,
            col_plan: FftPlan::new(rows)?,
        })
    }

    /// Number of rows the plan expects.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns the plan expects.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of points per buffer.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the plan transforms a single point (a no-op).
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// In-place forward 2-D FFT; bit-identical to [`fft2d_with`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan shape.
    pub fn forward_with(&self, data: &mut [Complex], par: Parallelism) -> Result<(), NumericError> {
        let mut scratch = Vec::new();
        self.forward_scratch_with(data, &mut scratch, par)
    }

    /// In-place inverse 2-D FFT (normalized); bit-identical to
    /// [`ifft2d_with`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan shape.
    pub fn inverse_with(&self, data: &mut [Complex], par: Parallelism) -> Result<(), NumericError> {
        let mut scratch = Vec::new();
        self.inverse_scratch_with(data, &mut scratch, par)
    }

    /// [`Fft2dPlan::forward_with`] reusing a caller-owned scratch buffer
    /// (grown as needed, never shrunk) so batched callers pay zero
    /// steady-state allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan shape.
    pub fn forward_scratch_with(
        &self,
        data: &mut [Complex],
        scratch: &mut Vec<Complex>,
        par: Parallelism,
    ) -> Result<(), NumericError> {
        self.process(data, scratch, par, false)
    }

    /// [`Fft2dPlan::forward_scratch_with`] computing only the first
    /// `keep_cols` columns of the output. The row pass still runs in full
    /// (every output column depends on it), but the column pass transforms
    /// only columns `< keep_cols`; those columns come out **bit-identical**
    /// to the full transform, while columns `>= keep_cols` are left in
    /// their intermediate post-row-pass state and must not be read.
    ///
    /// This is the circulant field sampler's hot path: the torus is padded
    /// to a power of two, but only the physical sub-grid is ever extracted,
    /// so the padding columns' transforms are pure waste.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan shape.
    pub fn forward_cols_scratch_with(
        &self,
        data: &mut [Complex],
        scratch: &mut Vec<Complex>,
        par: Parallelism,
        keep_cols: usize,
    ) -> Result<(), NumericError> {
        let (rows, cols) = (self.rows, self.cols);
        if data.len() != rows * cols {
            return Err(NumericError::InvalidArgument {
                reason: format!("buffer length {} does not match {rows}x{cols}", data.len()),
            });
        }
        let keep = keep_cols.min(cols);
        debug_assert!(data.len() == rows * cols, "length checked above");
        if keep == cols {
            return self.forward_scratch_with(data, scratch, par);
        }
        let row_pass = |plan: &FftPlan, buf: &mut [Complex]| plan.run(buf, &plan.fwd);
        if par.is_serial() {
            for r in 0..rows {
                row_pass(&self.row_plan, &mut data[r * cols..(r + 1) * cols]);
            }
            scratch.resize(rows, Complex::zero());
            let col = &mut scratch[..rows];
            for c in 0..keep {
                for r in 0..rows {
                    col[r] = data[r * cols + c];
                }
                row_pass(&self.col_plan, col);
                for r in 0..rows {
                    data[r * cols + c] = col[r];
                }
            }
            return Ok(());
        }
        par.for_each_chunk_mut(data, cols, |_, row| row_pass(&self.row_plan, row));
        scratch.resize(rows * keep, Complex::zero());
        let t = &mut scratch[..rows * keep];
        for r in 0..rows {
            for c in 0..keep {
                t[c * rows + r] = data[r * cols + c];
            }
        }
        par.for_each_chunk_mut(t, rows, |_, col| row_pass(&self.col_plan, col));
        for r in 0..rows {
            for c in 0..keep {
                data[r * cols + c] = t[c * rows + r];
            }
        }
        Ok(())
    }

    /// [`Fft2dPlan::inverse_with`] reusing a caller-owned scratch buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `data.len()` does not
    /// match the plan shape.
    pub fn inverse_scratch_with(
        &self,
        data: &mut [Complex],
        scratch: &mut Vec<Complex>,
        par: Parallelism,
    ) -> Result<(), NumericError> {
        self.process(data, scratch, par, true)?;
        scale_inverse(data, self.rows, self.cols);
        Ok(())
    }

    /// Shared driver mirroring `transform2d`'s data movement exactly:
    /// serial = rows in place, then gather/scatter each column through a
    /// `rows`-length scratch; parallel = rows as disjoint slices, then
    /// transpose / transform / transpose-back. Either way every column
    /// transform sees the same bytes the direct path feeds it.
    fn process(
        &self,
        data: &mut [Complex],
        scratch: &mut Vec<Complex>,
        par: Parallelism,
        inverse: bool,
    ) -> Result<(), NumericError> {
        let (rows, cols) = (self.rows, self.cols);
        if data.len() != rows * cols {
            return Err(NumericError::InvalidArgument {
                reason: format!("buffer length {} does not match {rows}x{cols}", data.len()),
            });
        }
        debug_assert!(data.len() == rows * cols, "length checked above");
        let run_1d = |plan: &FftPlan, buf: &mut [Complex]| {
            if inverse {
                // Normalization is applied once over the full 2-D buffer
                // (matching `transform2d` + `scale_inverse`), so the 1-D
                // stages run unnormalized here.
                plan.run(buf, &plan.inv);
            } else {
                plan.run(buf, &plan.fwd);
            }
        };
        if par.is_serial() {
            for r in 0..rows {
                run_1d(&self.row_plan, &mut data[r * cols..(r + 1) * cols]);
            }
            scratch.resize(rows, Complex::zero());
            let col = &mut scratch[..rows];
            for c in 0..cols {
                for r in 0..rows {
                    col[r] = data[r * cols + c];
                }
                run_1d(&self.col_plan, col);
                for r in 0..rows {
                    data[r * cols + c] = col[r];
                }
            }
            return Ok(());
        }
        par.for_each_chunk_mut(data, cols, |_, row| run_1d(&self.row_plan, row));
        scratch.resize(rows * cols, Complex::zero());
        let t = &mut scratch[..rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = data[r * cols + c];
            }
        }
        par.for_each_chunk_mut(t, rows, |_, col| run_1d(&self.col_plan, col));
        for r in 0..rows {
            for c in 0..cols {
                data[r * cols + c] = t[c * rows + r];
            }
        }
        Ok(())
    }
}

/// A keyed cache of shared [`Fft2dPlan`]s.
///
/// Building a plan costs the same trigonometric work one direct transform
/// would spend on twiddles; callers that construct many samplers over the
/// same torus grid (characterization sweeps, estimator services) share one
/// plan per `(rows, cols)` key through this cache. Hits and misses are
/// reported to the injected [`Instruments`] under
/// `numeric.fft.plan_cache.{hits,misses}`, and depend only on the sequence
/// of `plan_2d` calls — never on thread count — so instrumented runs stay
/// snapshot-identical for every thread budget.
/// One cache slot: either the finished plan, or a claim by the thread
/// currently building it (single flight — concurrent askers for the
/// same key wait instead of duplicating the trigonometric work).
#[derive(Debug)]
enum PlanSlot {
    /// Some thread is building this plan outside the lock.
    Pending,
    /// The shared plan.
    Ready(std::sync::Arc<Fft2dPlan>),
}

#[derive(Debug, Default)]
pub struct FftPlanCache {
    plans: std::sync::Mutex<std::collections::BTreeMap<(usize, usize), PlanSlot>>,
    /// Signalled whenever a `Pending` slot resolves (published or vacated).
    built: std::sync::Condvar,
}

impl FftPlanCache {
    /// An empty cache.
    pub fn new() -> FftPlanCache {
        FftPlanCache::default()
    }

    /// Returns the shared plan for `rows × cols`, building it on first use.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is not
    /// a power of two (or is zero).
    pub fn plan_2d(
        &self,
        rows: usize,
        cols: usize,
    ) -> Result<std::sync::Arc<Fft2dPlan>, NumericError> {
        self.plan_2d_instrumented(rows, cols, Instruments::none())
    }

    /// [`FftPlanCache::plan_2d`] reporting hit/miss counters to `ins`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if either dimension is not
    /// a power of two (or is zero).
    pub fn plan_2d_instrumented(
        &self,
        rows: usize,
        cols: usize,
        ins: Instruments<'_>,
    ) -> Result<std::sync::Arc<Fft2dPlan>, NumericError> {
        let key = (rows, cols);
        loop {
            let mut plans = self
                .plans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match plans.get(&key) {
                Some(PlanSlot::Ready(plan)) => {
                    ins.add("numeric.fft.plan_cache.hits", 1);
                    return Ok(std::sync::Arc::clone(plan));
                }
                Some(PlanSlot::Pending) => {
                    // Another thread is building this plan. Wait for the
                    // slot to resolve, then re-inspect from the top: the
                    // builder may have failed and vacated the slot, in
                    // which case this thread becomes a fresh asker.
                    let waited = self
                        .built
                        .wait_while(plans, |m| matches!(m.get(&key), Some(PlanSlot::Pending)))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    drop(waited);
                    continue;
                }
                None => {}
            }
            // Single flight: claim the slot, build with the lock released
            // (plan construction is exactly the trigonometric kernel work
            // L13 forbids under a guard), then publish or vacate. The
            // first asker owns the miss, errors count neither side, and
            // waiters resolve as ordinary hits — so the counters keep
            // their call-sequence determinism.
            plans.insert(key, PlanSlot::Pending);
            drop(plans);
            let built = Fft2dPlan::new(rows, cols);
            let mut plans = self
                .plans
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            return match built {
                Ok(plan) => {
                    let plan = std::sync::Arc::new(plan);
                    plans.insert(key, PlanSlot::Ready(std::sync::Arc::clone(&plan)));
                    drop(plans);
                    ins.add("numeric.fft.plan_cache.misses", 1);
                    self.built.notify_all();
                    Ok(plan)
                }
                Err(e) => {
                    plans.remove(&key);
                    drop(plans);
                    self.built.notify_all();
                    Err(e)
                }
            };
        }
    }

    /// Number of distinct plans currently cached (`Pending` claims are
    /// not plans and do not count).
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .filter(|slot| matches!(slot, PlanSlot::Ready(_)))
            .count()
    }

    /// `true` when no plan has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let orig = data.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_roundtrips() {
        for n in [1, 2, 4, 8, 64, 256] {
            roundtrip(n);
        }
    }

    #[test]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::zero(); 6];
        assert!(fft(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft(&mut empty).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::zero(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data).unwrap();
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 8];
        fft(&mut data).unwrap();
        assert!((data[0].re - 8.0).abs() < 1e-12);
        for v in &data[1..] {
            assert!(v.norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for k in 0..n {
            let mut acc = Complex::zero();
            for (j, xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + *xj * Complex::new(ang.cos(), ang.sin());
            }
            assert!((acc.re - fast[k].re).abs() < 1e-9);
            assert!((acc.im - fast[k].im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut freq = x.clone();
        fft(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn fft2d_roundtrips() {
        let (rows, cols) = (8, 16);
        let mut data: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let orig = data.clone();
        fft2d(&mut data, rows, cols).unwrap();
        ifft2d(&mut data, rows, cols).unwrap();
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft2d_rejects_bad_shape() {
        let mut data = vec![Complex::zero(); 12];
        assert!(fft2d(&mut data, 4, 4).is_err());
        let mut data = vec![Complex::zero(); 12];
        assert!(fft2d(&mut data, 3, 4).is_err());
    }

    #[test]
    fn fft2d_parallel_is_bit_identical_to_serial() {
        let (rows, cols) = (16, 32);
        let base: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let mut serial = base.clone();
        fft2d(&mut serial, rows, cols).unwrap();
        for threads in [2, 3, 8] {
            let mut par = base.clone();
            fft2d_with(&mut par, rows, cols, Parallelism::threads(threads)).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
        // Inverse round-trips through the parallel path too.
        let mut rt = serial.clone();
        ifft2d_with(&mut rt, rows, cols, Parallelism::threads(4)).unwrap();
        let mut rt_serial = serial;
        ifft2d(&mut rt_serial, rows, cols).unwrap();
        assert_eq!(rt, rt_serial);
    }

    fn wavy(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect()
    }

    #[test]
    fn plan_forward_is_bit_identical_to_fft() {
        for n in [1, 2, 4, 8, 64, 256] {
            let plan = FftPlan::new(n).unwrap();
            assert_eq!(plan.len(), n);
            let mut planned = wavy(n);
            let mut direct = planned.clone();
            plan.forward(&mut planned).unwrap();
            fft(&mut direct).unwrap();
            assert_eq!(planned, direct, "n = {n}");
        }
    }

    #[test]
    fn plan_inverse_is_bit_identical_to_ifft() {
        for n in [1, 2, 8, 128] {
            let plan = FftPlan::new(n).unwrap();
            let mut planned = wavy(n);
            let mut direct = planned.clone();
            plan.inverse(&mut planned).unwrap();
            ifft(&mut direct).unwrap();
            assert_eq!(planned, direct, "n = {n}");
        }
    }

    #[test]
    fn plan_rejects_bad_lengths() {
        assert!(FftPlan::new(0).is_err());
        assert!(FftPlan::new(6).is_err());
        let plan = FftPlan::new(8).unwrap();
        let mut short = vec![Complex::zero(); 4];
        assert!(plan.forward(&mut short).is_err());
        assert!(plan.inverse(&mut short).is_err());
    }

    #[test]
    fn plan2d_is_bit_identical_to_fft2d_for_any_thread_count() {
        let (rows, cols) = (16, 32);
        let plan = Fft2dPlan::new(rows, cols).unwrap();
        let base = wavy(rows * cols);
        for threads in [1, 2, 3, 8] {
            let par = Parallelism::threads(threads);
            let mut planned = base.clone();
            let mut direct = base.clone();
            plan.forward_with(&mut planned, par).unwrap();
            fft2d_with(&mut direct, rows, cols, par).unwrap();
            assert_eq!(planned, direct, "forward, threads = {threads}");
            plan.inverse_with(&mut planned, par).unwrap();
            ifft2d_with(&mut direct, rows, cols, par).unwrap();
            assert_eq!(planned, direct, "inverse, threads = {threads}");
        }
    }

    #[test]
    fn plan2d_scratch_reuse_matches_fresh_scratch() {
        let (rows, cols) = (8, 8);
        let plan = Fft2dPlan::new(rows, cols).unwrap();
        let mut scratch = Vec::new();
        let base = wavy(rows * cols);
        for round in 0..3 {
            let mut reused = base.clone();
            let mut fresh = base.clone();
            plan.forward_scratch_with(&mut reused, &mut scratch, Parallelism::serial())
                .unwrap();
            plan.forward_with(&mut fresh, Parallelism::serial())
                .unwrap();
            assert_eq!(reused, fresh, "round {round}");
        }
    }

    #[test]
    fn pruned_forward_matches_full_on_kept_columns() {
        let (rows, cols) = (32, 16);
        let plan = Fft2dPlan::new(rows, cols).unwrap();
        let base = wavy(rows * cols);
        let mut full = base.clone();
        plan.forward_with(&mut full, Parallelism::serial()).unwrap();
        for keep in [0, 1, 7, cols, cols + 5] {
            for threads in [1, 2, 3, 8] {
                let par = Parallelism::threads(threads);
                let mut pruned = base.clone();
                let mut scratch = Vec::new();
                plan.forward_cols_scratch_with(&mut pruned, &mut scratch, par, keep)
                    .unwrap();
                for r in 0..rows {
                    for c in 0..keep.min(cols) {
                        assert_eq!(
                            pruned[r * cols + c],
                            full[r * cols + c],
                            "keep = {keep}, threads = {threads}, ({r}, {c})"
                        );
                    }
                }
            }
        }
        let mut short = vec![Complex::zero(); 5];
        let mut scratch = Vec::new();
        assert!(plan
            .forward_cols_scratch_with(&mut short, &mut scratch, Parallelism::serial(), 4)
            .is_err());
    }

    #[test]
    fn plan2d_rejects_mismatched_buffer() {
        let plan = Fft2dPlan::new(4, 4).unwrap();
        let mut data = vec![Complex::zero(); 12];
        assert!(plan.forward_with(&mut data, Parallelism::serial()).is_err());
        assert!(Fft2dPlan::new(3, 4).is_err());
    }

    #[test]
    fn plan_cache_shares_plans_and_counts_hits() {
        use leakage_obs::{AggregatingRecorder, FakeClock};
        let recorder = AggregatingRecorder::new();
        let clock = FakeClock::new(0);
        let ins = Instruments::new(&recorder, &clock);
        let cache = FftPlanCache::new();
        assert!(cache.is_empty());
        let a = cache.plan_2d_instrumented(8, 16, ins).unwrap();
        let b = cache.plan_2d_instrumented(8, 16, ins).unwrap();
        let c = cache.plan_2d_instrumented(16, 8, ins).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        let snap = recorder.snapshot();
        assert_eq!(snap.counters.get("numeric.fft.plan_cache.hits"), Some(&1));
        assert_eq!(snap.counters.get("numeric.fft.plan_cache.misses"), Some(&2));
        assert!(cache.plan_2d(6, 8).is_err());
    }

    #[test]
    fn plan_cache_racing_mixed_keys_builds_each_plan_once() {
        use leakage_obs::{AggregatingRecorder, FakeClock};
        let recorder = AggregatingRecorder::new();
        let cache = std::sync::Arc::new(FftPlanCache::new());
        let keys: Vec<(usize, usize)> = vec![(8, 8), (8, 16), (16, 16)];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let keys = keys.clone();
                let recorder = &recorder;
                scope.spawn(move || {
                    let clock = FakeClock::new(0);
                    let ins = Instruments::new(recorder, &clock);
                    for (r, c) in keys {
                        let plan = cache.plan_2d_instrumented(r, c, ins).unwrap();
                        assert_eq!((plan.rows, plan.cols), (r, c));
                    }
                });
            }
        });
        assert_eq!(cache.len(), keys.len());
        let snap = recorder.snapshot();
        let hits = snap
            .counters
            .get("numeric.fft.plan_cache.hits")
            .copied()
            .unwrap_or(0);
        let misses = snap
            .counters
            .get("numeric.fft.plan_cache.misses")
            .copied()
            .unwrap_or(0);
        assert_eq!(
            misses,
            keys.len() as u64,
            "single flight: each plan built exactly once (hits={hits})"
        );
        assert_eq!(hits + misses, 4 * keys.len() as u64);
    }

    #[test]
    fn plan_cache_error_vacates_slot_and_counts_nothing() {
        use leakage_obs::{AggregatingRecorder, FakeClock};
        let recorder = AggregatingRecorder::new();
        let clock = FakeClock::new(0);
        let ins = Instruments::new(&recorder, &clock);
        let cache = FftPlanCache::new();
        assert!(cache.plan_2d_instrumented(3, 4, ins).is_err());
        assert!(cache.is_empty(), "failed builds must not leave a claim");
        let snap = recorder.snapshot();
        assert_eq!(snap.counters.get("numeric.fft.plan_cache.hits"), None);
        assert_eq!(snap.counters.get("numeric.fft.plan_cache.misses"), None);
        // The key stays buildable for a later (still failing) asker and
        // valid keys are unaffected.
        assert!(cache.plan_2d(3, 4).is_err());
        assert!(cache.plan_2d(4, 4).is_ok());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }
}
