//! Radix-2 FFT used for circulant-embedding sampling of correlated
//! channel-length fields.
//!
//! The Monte-Carlo engine embeds the (stationary) within-die covariance on a
//! doubled torus; sampling then costs two 2-D FFTs instead of an `O(n³)`
//! Cholesky factorization. Grids are padded to powers of two.

use crate::error::NumericError;
use crate::parallel::Parallelism;
use leakage_obs::Instruments;

/// A complex number as a `(re, im)` pair; minimal on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// The additive identity.
    pub fn zero() -> Complex {
        Complex { re: 0.0, im: 0.0 }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// Rounds `n` up to the next power of two (identity on powers of two).
///
/// # Example
///
/// ```
/// assert_eq!(leakage_numeric::fft::next_pow2(5), 8);
/// assert_eq!(leakage_numeric::fft::next_pow2(8), 8);
/// assert_eq!(leakage_numeric::fft::next_pow2(1), 1);
/// ```
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place forward FFT on a power-of-two-length buffer.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the length is not a power
/// of two (or is zero).
pub fn fft(data: &mut [Complex]) -> Result<(), NumericError> {
    transform(data, false)
}

/// In-place inverse FFT (includes the `1/n` normalization).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if the length is not a power
/// of two (or is zero).
pub fn ifft(data: &mut [Complex]) -> Result<(), NumericError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), NumericError> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(NumericError::InvalidArgument {
            reason: format!("fft length must be a power of two, got {n}"),
        });
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Iterative Cooley–Tukey butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wl = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wl;
            }
            i += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// In-place 2-D FFT on a row-major `rows × cols` buffer; both dimensions
/// must be powers of two.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn fft2d(data: &mut [Complex], rows: usize, cols: usize) -> Result<(), NumericError> {
    fft2d_with(data, rows, cols, Parallelism::serial())
}

/// In-place inverse 2-D FFT (normalized by `1/(rows·cols)`).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn ifft2d(data: &mut [Complex], rows: usize, cols: usize) -> Result<(), NumericError> {
    ifft2d_with(data, rows, cols, Parallelism::serial())
}

/// [`fft2d`] with an explicit thread budget. Row transforms run on disjoint
/// row slices; column transforms run as row transforms of the transpose.
/// Bit-identical to the serial [`fft2d`] for every thread count.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn fft2d_with(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
) -> Result<(), NumericError> {
    fft2d_instrumented(data, rows, cols, par, Instruments::none())
}

/// [`fft2d_with`] reporting to an injected [`Instruments`]: one span plus
/// call/point counters per transform. The metrics are recorded from the
/// calling thread, so they are identical for every thread budget.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn fft2d_instrumented(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
    ins: Instruments<'_>,
) -> Result<(), NumericError> {
    let _span = ins.span("numeric.fft2d");
    ins.add("numeric.fft2d.calls", 1);
    ins.add("numeric.fft2d.points", (rows * cols) as u64);
    transform2d(data, rows, cols, false, par)
}

/// [`ifft2d`] with an explicit thread budget; see [`fft2d_with`].
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn ifft2d_with(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
) -> Result<(), NumericError> {
    ifft2d_instrumented(data, rows, cols, par, Instruments::none())
}

/// [`ifft2d_with`] reporting to an injected [`Instruments`]; see
/// [`fft2d_instrumented`].
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] on bad dimensions.
pub fn ifft2d_instrumented(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    par: Parallelism,
    ins: Instruments<'_>,
) -> Result<(), NumericError> {
    let _span = ins.span("numeric.ifft2d");
    ins.add("numeric.ifft2d.calls", 1);
    ins.add("numeric.ifft2d.points", (rows * cols) as u64);
    transform2d(data, rows, cols, true, par)?;
    scale_inverse(data, rows, cols);
    Ok(())
}

fn scale_inverse(data: &mut [Complex], rows: usize, cols: usize) {
    let scale = (rows * cols) as f64;
    for v in data.iter_mut() {
        v.re /= scale;
        v.im /= scale;
    }
}

fn transform2d(
    data: &mut [Complex],
    rows: usize,
    cols: usize,
    inverse: bool,
    par: Parallelism,
) -> Result<(), NumericError> {
    if data.len() != rows * cols {
        return Err(NumericError::InvalidArgument {
            reason: format!("buffer length {} does not match {rows}x{cols}", data.len()),
        });
    }
    if !rows.is_power_of_two() || !cols.is_power_of_two() {
        return Err(NumericError::InvalidArgument {
            reason: format!("fft2d dimensions must be powers of two, got {rows}x{cols}"),
        });
    }
    if par.is_serial() {
        // Rows.
        for r in 0..rows {
            transform(&mut data[r * cols..(r + 1) * cols], inverse)?;
        }
        // Columns (gather/scatter through a scratch buffer).
        let mut col = vec![Complex::zero(); rows];
        for c in 0..cols {
            for r in 0..rows {
                col[r] = data[r * cols + c];
            }
            transform(&mut col, inverse)?;
            for r in 0..rows {
                data[r * cols + c] = col[r];
            }
        }
        return Ok(());
    }
    // Rows: disjoint `cols`-length slices, validated above so the inner
    // transform cannot fail.
    par.for_each_chunk_mut(data, cols, |_, row| {
        // chipleak-lint: allow(l5): dimensions validated as powers of two at fn entry
        transform(row, inverse).expect("row length validated as power of two");
    });
    // Columns: transpose, transform the transposed rows, transpose back.
    // Each column transform sees exactly the bytes the gather/scatter serial
    // path would feed it, so the result is bit-identical.
    let mut t = vec![Complex::zero(); rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            t[c * rows + r] = data[r * cols + c];
        }
    }
    par.for_each_chunk_mut(&mut t, rows, |_, col| {
        // chipleak-lint: allow(l5): dimensions validated as powers of two at fn entry
        transform(col, inverse).expect("column length validated as power of two");
    });
    for r in 0..rows {
        for c in 0..cols {
            data[r * cols + c] = t[c * rows + r];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let mut data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let orig = data.clone();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_roundtrips() {
        for n in [1, 2, 4, 8, 64, 256] {
            roundtrip(n);
        }
    }

    #[test]
    fn fft_rejects_non_pow2() {
        let mut data = vec![Complex::zero(); 6];
        assert!(fft(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft(&mut empty).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::zero(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data).unwrap();
        for v in &data {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 8];
        fft(&mut data).unwrap();
        assert!((data[0].re - 8.0).abs() < 1e-12);
        for v in &data[1..] {
            assert!(v.norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.1).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for k in 0..n {
            let mut acc = Complex::zero();
            for (j, xj) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc + *xj * Complex::new(ang.cos(), ang.sin());
            }
            assert!((acc.re - fast[k].re).abs() < 1e-9);
            assert!((acc.im - fast[k].im).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut freq = x.clone();
        fft(&mut freq).unwrap();
        let freq_energy: f64 = freq.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn fft2d_roundtrips() {
        let (rows, cols) = (8, 16);
        let mut data: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let orig = data.clone();
        fft2d(&mut data, rows, cols).unwrap();
        ifft2d(&mut data, rows, cols).unwrap();
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn fft2d_rejects_bad_shape() {
        let mut data = vec![Complex::zero(); 12];
        assert!(fft2d(&mut data, 4, 4).is_err());
        let mut data = vec![Complex::zero(); 12];
        assert!(fft2d(&mut data, 3, 4).is_err());
    }

    #[test]
    fn fft2d_parallel_is_bit_identical_to_serial() {
        let (rows, cols) = (16, 32);
        let base: Vec<Complex> = (0..rows * cols)
            .map(|i| Complex::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let mut serial = base.clone();
        fft2d(&mut serial, rows, cols).unwrap();
        for threads in [2, 3, 8] {
            let mut par = base.clone();
            fft2d_with(&mut par, rows, cols, Parallelism::threads(threads)).unwrap();
            assert_eq!(serial, par, "threads = {threads}");
        }
        // Inverse round-trips through the parallel path too.
        let mut rt = serial.clone();
        ifft2d_with(&mut rt, rows, cols, Parallelism::threads(4)).unwrap();
        let mut rt_serial = serial;
        ifft2d(&mut rt_serial, rows, cols).unwrap();
        assert_eq!(rt, rt_serial);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1023), 1024);
        assert_eq!(next_pow2(1024), 1024);
    }
}
