//! Least-squares fitting used for cell leakage characterization.
//!
//! The paper (after Rao et al., TVLSI'04) models cell leakage as
//! `X = a·exp(bL + cL²)`, i.e. `ln X = ln a + bL + cL²`, which is *linear in
//! the parameters* — a plain polynomial least-squares fit on `(L, ln X)`
//! samples recovers `(ln a, b, c)` exactly for noiseless data.

use crate::error::NumericError;
use crate::matrix::Matrix;

/// Result of a polynomial least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients, lowest order first: `y ≈ Σ coeffs[k]·x^k`.
    pub coeffs: Vec<f64>,
    /// Coefficient of determination on the fitting data.
    pub r_squared: f64,
    /// Root-mean-square residual on the fitting data.
    pub rms_residual: f64,
}

impl PolyFit {
    /// Evaluates the fitted polynomial at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // Horner evaluation, highest order first.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }
}

/// Fits `y ≈ Σ_{k≤degree} c_k x^k` by normal equations.
///
/// The small degrees used here (≤ 3) make normal equations perfectly
/// adequate; inputs are centered and scaled internally for conditioning.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if there are fewer samples
/// than coefficients, and [`NumericError::Singular`] if the design matrix
/// is rank-deficient (e.g. all `x` identical).
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit, NumericError> {
    if xs.len() != ys.len() {
        return Err(NumericError::InvalidArgument {
            reason: format!("x and y lengths differ: {} vs {}", xs.len(), ys.len()),
        });
    }
    let p = degree + 1;
    if xs.len() < p {
        return Err(NumericError::InvalidArgument {
            reason: format!("need at least {p} samples for degree {degree}"),
        });
    }
    // Center/scale x for conditioning; refit in t = (x - mx)/sx.
    let mx = crate::stats::mean(xs);
    let sx = {
        let s = crate::stats::sample_std(xs);
        if s > 0.0 {
            s
        } else {
            1.0
        }
    };
    let ts: Vec<f64> = xs.iter().map(|x| (x - mx) / sx).collect();

    // Normal equations in the scaled variable.
    let mut ata = Matrix::zeros(p, p);
    let mut atb = vec![0.0; p];
    let mut powers = vec![0.0; p];
    for (t, y) in ts.iter().zip(ys) {
        let mut tp = 1.0;
        for pw in powers.iter_mut() {
            *pw = tp;
            tp *= t;
        }
        for i in 0..p {
            atb[i] += powers[i] * y;
            for j in 0..p {
                ata[(i, j)] += powers[i] * powers[j];
            }
        }
    }
    let scaled = ata.solve(&atb)?;

    // Expand back to raw-x coefficients: y = Σ s_k ((x-mx)/sx)^k.
    let mut coeffs = vec![0.0; p];
    // Binomial expansion of ((x - mx)/sx)^k.
    for (k, &sk) in scaled.iter().enumerate() {
        // ((x - mx)^k) = Σ_j C(k,j) x^j (-mx)^{k-j}
        let mut binom = 1.0_f64; // C(k, 0)
        for j in 0..=k {
            let term = sk / sx.powi(k as i32) * binom * (-mx).powi((k - j) as i32);
            coeffs[j] += term;
            // C(k, j+1) = C(k, j) * (k - j) / (j + 1)
            binom = binom * (k - j) as f64 / (j + 1) as f64;
        }
    }

    // Fit quality in the raw variable.
    let my = crate::stats::mean(ys);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let fit = PolyFit {
        coeffs: coeffs.clone(),
        r_squared: 0.0,
        rms_residual: 0.0,
    };
    for (x, y) in xs.iter().zip(ys) {
        let e = y - fit.eval(*x);
        ss_res += e * e; // chipleak-lint: allow(l10): fixed sample order; Kahan would change golden-pinned bits
        ss_tot += (y - my) * (y - my);
    }
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Ok(PolyFit {
        coeffs,
        r_squared: r2,
        rms_residual: (ss_res / xs.len() as f64).sqrt(),
    })
}

/// Fits the leakage functional form `X = a·exp(bL + cL²)` from `(L, X)`
/// samples by quadratic regression on `(L, ln X)`.
///
/// Returns `(a, b, c)` plus the fit's R² in log space.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if any leakage sample is not
/// strictly positive (its logarithm would be undefined) or there are fewer
/// than three samples; propagates regression errors.
pub fn fit_exp_quadratic(
    lengths: &[f64],
    leakages: &[f64],
) -> Result<(f64, f64, f64, f64), NumericError> {
    if leakages.iter().any(|&x| !(x > 0.0)) {
        return Err(NumericError::InvalidArgument {
            reason: "leakage samples must be strictly positive".into(),
        });
    }
    let logs: Vec<f64> = leakages.iter().map(|x| x.ln()).collect();
    let fit = polyfit(lengths, &logs, 2)?;
    debug_assert!(
        fit.coeffs.len() == 3,
        "degree-2 polyfit returns three coefficients"
    );
    let a = fit.coeffs[0].exp();
    Ok((a, fit.coeffs[1], fit.coeffs[2], fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polyfit_recovers_exact_quadratic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1 - 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 - 3.0 * x + 0.5 * x * x).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        assert!((fit.coeffs[0] - 2.0).abs() < 1e-10);
        assert!((fit.coeffs[1] + 3.0).abs() < 1e-10);
        assert!((fit.coeffs[2] - 0.5).abs() < 1e-10);
        assert!(fit.r_squared > 1.0 - 1e-12);
        assert!(fit.rms_residual < 1e-10);
    }

    #[test]
    fn polyfit_handles_offset_scale() {
        // Poorly conditioned raw values (x around 9e-8, like channel lengths
        // in meters) — centering/scaling must keep this stable.
        let xs: Vec<f64> = (0..10).map(|i| 9.0e-8 + i as f64 * 1e-9).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0e8 * x).collect();
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!((fit.coeffs[1] - 2.0e8).abs() / 2.0e8 < 1e-6);
    }

    #[test]
    fn polyfit_degree_zero_is_mean() {
        let ys = [1.0, 2.0, 3.0, 4.0];
        let xs = [0.0, 1.0, 2.0, 3.0];
        let fit = polyfit(&xs, &ys, 0).unwrap();
        assert!((fit.coeffs[0] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn polyfit_too_few_samples_errors() {
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn polyfit_mismatched_lengths_error() {
        assert!(polyfit(&[1.0, 2.0, 3.0], &[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn polyfit_identical_x_is_singular() {
        let r = polyfit(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0], 1);
        assert!(r.is_err());
    }

    #[test]
    fn eval_horner_matches_direct() {
        let fit = PolyFit {
            coeffs: vec![1.0, -2.0, 3.0],
            r_squared: 1.0,
            rms_residual: 0.0,
        };
        let x = 1.7;
        assert!((fit.eval(x) - (1.0 - 2.0 * x + 3.0 * x * x)).abs() < 1e-12);
    }

    #[test]
    fn fit_exp_quadratic_roundtrip() {
        // Synthetic leakage with a = 5e-9, b = -80 (per unit L), c = 200.
        let (a, b, c) = (5e-9, -80.0, 200.0);
        let ls: Vec<f64> = (0..30).map(|i| 0.05 + i as f64 * 0.005).collect();
        let xs: Vec<f64> = ls.iter().map(|l| a * (b * l + c * l * l).exp()).collect();
        let (fa, fb, fc, r2) = fit_exp_quadratic(&ls, &xs).unwrap();
        assert!((fa - a).abs() / a < 1e-6, "a: {fa}");
        assert!((fb - b).abs() / b.abs() < 1e-6, "b: {fb}");
        assert!((fc - c).abs() / c < 1e-6, "c: {fc}");
        assert!(r2 > 1.0 - 1e-10);
    }

    #[test]
    fn fit_exp_quadratic_rejects_nonpositive() {
        assert!(fit_exp_quadratic(&[1.0, 2.0, 3.0], &[1.0, 0.0, 2.0]).is_err());
        assert!(fit_exp_quadratic(&[1.0, 2.0, 3.0], &[1.0, -1.0, 2.0]).is_err());
    }
}
