//! Moment-generating functions of Gaussian quadratic forms.
//!
//! Two closed forms drive the paper's analytical cell model:
//!
//! * **Univariate** (Eqs. 1–5): with `L ~ N(μ, σ²)` and
//!   `Y = ln X = ln a + bL + cL²`, `E[e^{tY}]` follows from the non-central
//!   χ² MGF.
//! * **Bivariate** (the `f_{m,n}` correlation map of §2.1.3, whose details
//!   the paper omits): `E[X_m X_n] = E[exp(u'x + x'Cx)]` for bivariate
//!   normal channel lengths `x = (L₁, L₂)` with correlation `ρ_L`.
//!
//! For `x ~ N(μ, Σ)`:
//! `E[exp(x'Cx + u'x)] = |I − 2ΣC|^{−1/2} · exp(½ v'M⁻¹v − ½ μ'Σ⁻¹μ)`
//! with `M = Σ⁻¹ − 2C` and `v = Σ⁻¹μ + u`, valid when `M` is positive
//! definite.

use crate::error::NumericError;

/// `E[exp(t·(c·L² + b·L + k))]` for `L ~ N(mu, sigma²)`.
///
/// This is the moment-generating function of `Y = k + bL + cL²` evaluated
/// at `t`; setting `k = ln a`, `t = 1` gives the cell mean leakage
/// `μ_X = M_Y(1)` and `t = 2` gives `E[X²]` (paper Eqs. 1–2).
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] if `sigma < 0` or the MGF does
/// not exist at `t` (i.e. `1 − 2tcσ² ≤ 0`).
///
/// # Example
///
/// ```
/// use leakage_numeric::quadform::gaussian_quadratic_mgf;
///
/// // With c = 0 this must reduce to the lognormal mean:
/// // E[exp(b L)] = exp(b μ + b² σ²/2).
/// let v = gaussian_quadratic_mgf(1.0, 0.0, 2.0, 0.5, 1.0, 0.2).unwrap();
/// let expected = (2.0 * 1.0 + 0.5 + 0.5f64 * 4.0 * 0.04).exp();
/// assert!((v - expected).abs() / expected < 1e-12);
/// ```
pub fn gaussian_quadratic_mgf(
    t: f64,
    c: f64,
    b: f64,
    k: f64,
    mu: f64,
    sigma: f64,
) -> Result<f64, NumericError> {
    if sigma < 0.0 {
        return Err(NumericError::InvalidArgument {
            reason: "sigma must be non-negative".into(),
        });
    }
    if sigma == 0.0 {
        // Degenerate: L is deterministic.
        return Ok((t * (c * mu * mu + b * mu + k)).exp());
    }
    let denom = 1.0 - 2.0 * t * c * sigma * sigma;
    if denom <= 0.0 {
        return Err(NumericError::InvalidArgument {
            reason: format!("mgf does not exist: 1 - 2tcσ² = {denom} ≤ 0"),
        });
    }
    // Complete the square: Y = K3 + K1 (Z + K2)² with Z ~ N(0,1) when c≠0;
    // handle c == 0 (pure lognormal) separately to avoid division by c.
    if c == 0.0 {
        return Ok((t * (b * mu + k) + 0.5 * t * t * b * b * sigma * sigma).exp());
    }
    let k1 = c * sigma * sigma;
    let k2 = (b / (2.0 * c) + mu) / sigma;
    let k3 = k + b * mu + c * mu * mu - c * (b / (2.0 * c) + mu).powi(2);
    // Non-central χ²(1, λ = K2²) MGF at K1·t: (1−2K1t)^{−1/2} exp(λK1t/(1−2K1t))
    let s = k1 * t;
    Ok(denom.powf(-0.5) * ((k2 * k2 * s) / (1.0 - 2.0 * s) + k3 * t).exp())
}

/// The paper's `(K₁, K₂, K₃)` triplet (Eqs. 4–5) for a fitted cell
/// `X = a·exp(bL + cL²)` under `L ~ N(μ, σ²)`.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] when `c == 0` or `σ ≤ 0`
/// (the triplet is defined through `b/2c` and `1/σ`).
pub fn k_triplet(
    a: f64,
    b: f64,
    c: f64,
    mu: f64,
    sigma: f64,
) -> Result<(f64, f64, f64), NumericError> {
    if c == 0.0 {
        return Err(NumericError::InvalidArgument {
            reason: "K-triplet requires c != 0".into(),
        });
    }
    if !(sigma > 0.0) {
        return Err(NumericError::InvalidArgument {
            reason: "K-triplet requires sigma > 0".into(),
        });
    }
    if !(a > 0.0) {
        return Err(NumericError::InvalidArgument {
            reason: "K-triplet requires a > 0".into(),
        });
    }
    let k1 = c * sigma * sigma;
    let k2 = (b / (2.0 * c) + mu) / sigma;
    let k3 = a.ln() + b * mu + c * mu * mu - c * (b / (2.0 * c) + mu).powi(2);
    Ok((k1, k2, k3))
}

/// `E[exp(x'Cx + u'x)]` for bivariate normal `x ~ N(mu, Sigma)` with
/// diagonal-free notation: `C = diag-symmetric [[c1, 0], [0, c2]]`,
/// `u = (b1, b2)`, `Sigma = [[s1², ρ s1 s2], [ρ s1 s2, s2²]]`.
///
/// This exactly evaluates `E[exp(b₁L₁ + c₁L₁² + b₂L₂ + c₂L₂²)]`, the
/// cross-moment kernel of the `f_{m,n}` leakage-correlation mapping.
///
/// # Errors
///
/// Returns [`NumericError::InvalidArgument`] for invalid `ρ ∉ (−1, 1)` or
/// non-positive standard deviations, and when the integral diverges
/// (`M = Σ⁻¹ − 2C` not positive definite).
#[allow(clippy::too_many_arguments)]
pub fn bivariate_exp_quadratic_mean(
    c1: f64,
    b1: f64,
    c2: f64,
    b2: f64,
    mu1: f64,
    mu2: f64,
    s1: f64,
    s2: f64,
    rho: f64,
) -> Result<f64, NumericError> {
    if !(s1 > 0.0 && s2 > 0.0) {
        return Err(NumericError::InvalidArgument {
            reason: "standard deviations must be positive".into(),
        });
    }
    if !(-1.0 < rho && rho < 1.0) {
        // Perfect correlation collapses to the univariate case; callers
        // should use `gaussian_quadratic_mgf` directly at |rho| = 1.
        return Err(NumericError::InvalidArgument {
            reason: format!("correlation must lie in (-1, 1), got {rho}"),
        });
    }
    // Σ and Σ⁻¹ in closed form.
    let det_sigma = s1 * s1 * s2 * s2 * (1.0 - rho * rho);
    let inv11 = s2 * s2 / det_sigma;
    let inv22 = s1 * s1 / det_sigma;
    let inv12 = -rho * s1 * s2 / det_sigma;
    // M = Σ⁻¹ − 2C with C = diag(c1, c2).
    let m11 = inv11 - 2.0 * c1;
    let m22 = inv22 - 2.0 * c2;
    let m12 = inv12;
    let det_m = m11 * m22 - m12 * m12;
    if !(m11 > 0.0 && det_m > 0.0) {
        return Err(NumericError::InvalidArgument {
            reason: "integral diverges: Σ⁻¹ − 2C is not positive definite".into(),
        });
    }
    // v = Σ⁻¹ μ + u.
    let v1 = inv11 * mu1 + inv12 * mu2 + b1;
    let v2 = inv12 * mu1 + inv22 * mu2 + b2;
    // v' M⁻¹ v  via closed-form 2×2 inverse.
    let quad_v = (m22 * v1 * v1 - 2.0 * m12 * v1 * v2 + m11 * v2 * v2) / det_m;
    // μ' Σ⁻¹ μ.
    let quad_mu = inv11 * mu1 * mu1 + 2.0 * inv12 * mu1 * mu2 + inv22 * mu2 * mu2;
    // |I − 2ΣC| = |Σ|·|Σ⁻¹ − 2C| = det_sigma · det_m  (equals 1 when C = 0).
    let det_factor = det_sigma * det_m;
    Ok(det_factor.powf(-0.5) * (0.5 * (quad_v - quad_mu)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_mgf_matches_monte_carlo_shape() {
        // Spot check against a brute-force quadrature of the defining
        // integral for a representative leakage-like parameter set.
        let (c, b, k) = (150.0, -60.0, -18.0);
        let (mu, sigma) = (0.09, 0.005);
        let analytic = gaussian_quadratic_mgf(1.0, c, b, k, mu, sigma).unwrap();
        let numeric = crate::integrate::gauss_legendre(
            |l| {
                let z = (l - mu) / sigma;
                let pdf = (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt());
                (c * l * l + b * l + k).exp() * pdf
            },
            mu - 10.0 * sigma,
            mu + 10.0 * sigma,
            96,
        );
        assert!(
            (analytic - numeric).abs() / numeric < 1e-9,
            "analytic {analytic}, numeric {numeric}"
        );
    }

    #[test]
    fn scalar_mgf_degenerate_sigma() {
        let v = gaussian_quadratic_mgf(1.0, 2.0, 3.0, 0.5, 1.0, 0.0).unwrap();
        assert!((v - (2.0 + 3.0 + 0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn scalar_mgf_divergence_detected() {
        // 2tcσ² ≥ 1 ⇒ no MGF.
        assert!(gaussian_quadratic_mgf(1.0, 1.0, 0.0, 0.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn k_triplet_matches_paper_formulas() {
        let (a, b, c, mu, sigma) = (2e-9, -50.0, 120.0, 0.09, 0.004);
        let (k1, k2, k3) = k_triplet(a, b, c, mu, sigma).unwrap();
        assert!((k1 - c * sigma * sigma).abs() < 1e-15);
        assert!((k2 - (b / (2.0 * c) + mu) / sigma).abs() < 1e-9);
        let expect_k3 =
            a.ln() + b * mu + c * mu * mu - c * (b / (2.0 * c) + mu) * (b / (2.0 * c) + mu);
        assert!((k3 - expect_k3).abs() < 1e-12);
    }

    #[test]
    fn k_triplet_rejects_degenerate() {
        assert!(k_triplet(1.0, 1.0, 0.0, 0.0, 1.0).is_err());
        assert!(k_triplet(1.0, 1.0, 1.0, 0.0, 0.0).is_err());
        assert!(k_triplet(0.0, 1.0, 1.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn bivariate_independent_factorizes() {
        // With ρ = 0 the expectation factorizes into two univariate MGFs.
        let (c1, b1) = (80.0, -30.0);
        let (c2, b2) = (120.0, -45.0);
        let (mu1, mu2, s1, s2) = (0.09, 0.09, 0.005, 0.004);
        let joint = bivariate_exp_quadratic_mean(c1, b1, c2, b2, mu1, mu2, s1, s2, 1e-300).unwrap();
        let m1 = gaussian_quadratic_mgf(1.0, c1, b1, 0.0, mu1, s1).unwrap();
        let m2 = gaussian_quadratic_mgf(1.0, c2, b2, 0.0, mu2, s2).unwrap();
        assert!(
            (joint - m1 * m2).abs() / (m1 * m2) < 1e-10,
            "joint {joint} vs product {}",
            m1 * m2
        );
    }

    #[test]
    fn bivariate_near_perfect_correlation_matches_univariate() {
        // At ρ → 1 with identical marginals, E[X₁X₂] → E[X²] of one variable.
        let (c, b) = (100.0, -40.0);
        let (mu, s) = (0.09, 0.005);
        // 1−ρ can't be too small: Σ⁻¹ entries blow up as 1/(1−ρ²) and the
        // 2×2 determinant cancellation costs ~eps/(1−ρ²) relative accuracy.
        let joint = bivariate_exp_quadratic_mean(c, b, c, b, mu, mu, s, s, 1.0 - 1e-7).unwrap();
        let second = gaussian_quadratic_mgf(2.0, c, b, 0.0, mu, s).unwrap();
        assert!(
            (joint - second).abs() / second < 1e-3,
            "joint {joint} vs E[X²] {second}"
        );
    }

    #[test]
    fn bivariate_matches_2d_quadrature() {
        let (c1, b1) = (60.0, -25.0);
        let (c2, b2) = (90.0, -35.0);
        let (mu1, mu2, s1, s2, rho) = (0.09, 0.092, 0.004, 0.005, 0.6);
        let analytic = bivariate_exp_quadratic_mean(c1, b1, c2, b2, mu1, mu2, s1, s2, rho).unwrap();
        // Brute-force 2-D quadrature of the defining integral.
        let det = s1 * s1 * s2 * s2 * (1.0 - rho * rho);
        let numeric = crate::integrate::gauss_legendre_2d(
            |x, y| {
                let dx = x - mu1;
                let dy = y - mu2;
                let q =
                    (dx * dx * s2 * s2 - 2.0 * rho * s1 * s2 * dx * dy + dy * dy * s1 * s1) / det;
                let pdf = (-0.5 * q).exp() / (2.0 * std::f64::consts::PI * det.sqrt());
                (c1 * x * x + b1 * x + c2 * y * y + b2 * y).exp() * pdf
            },
            mu1 - 8.0 * s1,
            mu1 + 8.0 * s1,
            mu2 - 8.0 * s2,
            mu2 + 8.0 * s2,
            32,
            4,
        );
        assert!(
            (analytic - numeric).abs() / numeric < 1e-8,
            "analytic {analytic}, numeric {numeric}"
        );
    }

    #[test]
    fn bivariate_rejects_bad_inputs() {
        assert!(bivariate_exp_quadratic_mean(1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.5).is_err());
        assert!(bivariate_exp_quadratic_mean(1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.5).is_err());
        // Divergent quadratic (huge positive c against small variance gap).
        assert!(bivariate_exp_quadratic_mean(1e9, 0.0, 1e9, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0).is_err());
    }
}
