//! Streaming and batch statistics for Monte-Carlo characterization.

/// Numerically stable streaming mean/variance accumulator (Welford).
///
/// # Example
///
/// ```
/// use leakage_numeric::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (biased, `1/n`) variance.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observed value (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Compensated (Kahan–Neumaier) accumulator for long floating-point sums.
///
/// The running compensation term recovers the low-order bits lost when many
/// small terms are folded into a large partial sum, which matters for the
/// O(n²) pair-covariance sums in the exact estimator: at 10k gates the naive
/// sum folds ~5·10⁷ terms spanning several orders of magnitude.
///
/// # Example
///
/// ```
/// use leakage_numeric::stats::KahanSum;
///
/// let mut s = KahanSum::new();
/// s.add(1.0);
/// for _ in 0..10 {
///     s.add(1e-16);
/// }
/// assert!(s.sum() > 1.0); // a naive f64 sum would stay exactly 1.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Creates a zeroed accumulator.
    pub fn new() -> KahanSum {
        KahanSum::default()
    }

    /// Adds one term (Neumaier variant: also safe when `x` dominates the
    /// running sum).
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Folds another accumulator in, preserving both compensation terms.
    pub fn merge(&mut self, other: &KahanSum) {
        self.add(other.sum);
        self.compensation += other.compensation;
    }

    /// The compensated total.
    pub fn sum(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Compensated sum of a slice, in slice order.
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.sum()
}

/// Sample mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        kahan_sum(xs) / xs.len() as f64
    }
}

/// Unbiased sample variance of a slice (0 for fewer than two items).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let mut acc = KahanSum::new();
    for x in xs {
        acc.add((x - m) * (x - m));
    }
    acc.sum() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation of a slice.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns 0 when either input is degenerate (length < 2 or zero variance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation requires equal lengths");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = KahanSum::new();
    let mut sxx = KahanSum::new();
    let mut syy = KahanSum::new();
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy.add(dx * dy);
        sxx.add(dx * dx);
        syy.add(dy * dy);
    }
    let (sxy, sxx, syy) = (sxy.sum(), sxx.sum(), syy.sum());
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Linearly interpolated `q`-quantile (`0 ≤ q ≤ 1`) of the data.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted = xs.to_vec();
    // total_cmp orders NaN deterministically (to the end) instead of
    // panicking mid-sort on exotic input.
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn running_stats_single_value() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn running_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - mean(&xs)).abs() < 1e-12);
        assert!((s.sample_variance() - sample_variance(&xs)).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let (a, b) = xs.split_at(20);
        let mut sa = RunningStats::new();
        let mut sb = RunningStats::new();
        a.iter().for_each(|&x| sa.push(x));
        b.iter().for_each(|&x| sb.push(x));
        sa.merge(&sb);
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        assert_eq!(sa.count(), whole.count());
        assert!((sa.mean() - whole.mean()).abs() < 1e-12);
        assert!((sa.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(3.0);
        let before = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
    }

    #[test]
    fn kahan_recovers_lost_low_bits() {
        // 1 + 1e16 - 1e16 == 1 exactly under compensation; naive sum gives 0.
        let xs = [1.0, 1e16, -1e16];
        assert_eq!(kahan_sum(&xs), 1.0);
        assert_eq!(xs.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn kahan_merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.11).cos() * 10f64.powi(i % 17 - 8))
            .collect();
        let mut whole = KahanSum::new();
        xs.iter().for_each(|&x| whole.add(x));
        let (a, b) = xs.split_at(341);
        let mut sa = KahanSum::new();
        let mut sb = KahanSum::new();
        a.iter().for_each(|&x| sa.add(x));
        b.iter().for_each(|&x| sb.add(x));
        sa.merge(&sb);
        assert!((sa.sum() - whole.sum()).abs() <= 1e-12 * whole.sum().abs());
    }

    #[test]
    fn correlation_perfect() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson_correlation(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degenerate_is_zero() {
        assert_eq!(pearson_correlation(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "quantile of empty slice")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }
}
