//! Deterministic data-parallel execution for the leakage hot paths.
//!
//! Every parallel loop in the workspace is expressed as a *fixed chunk
//! decomposition* of the work followed by an in-order reduction of the
//! per-chunk results. The decomposition depends only on the problem size —
//! never on the thread count — and each chunk's internal evaluation order
//! is fixed, so the result is **bit-identical** for any thread count,
//! including the serial path. That property keeps `tests/determinism.rs`
//! honest: experiments cite exact numbers, and turning parallelism on or
//! off must not change them.
//!
//! Thread-count resolution, in priority order:
//!
//! 1. an explicit builder/API override ([`Parallelism::threads`]);
//! 2. the `CHIPLEAK_THREADS` environment variable (`0` or unset = auto);
//! 3. [`std::thread::available_parallelism`].
//!
//! With the `parallel` cargo feature disabled every path degrades
//! gracefully to `threads = 1` and no thread is ever spawned.
//!
//! # Example
//!
//! ```
//! use leakage_numeric::parallel::Parallelism;
//!
//! // Sum of squares over 4 chunks; identical for any thread count.
//! let partials = Parallelism::threads(2).map_chunks(4, |c| {
//!     let lo = c * 25;
//!     (lo..lo + 25).map(|i| (i * i) as u64).sum::<u64>()
//! });
//! assert_eq!(partials.iter().sum::<u64>(), (0..100u64).map(|i| i * i).sum());
//! ```

use crate::error::NumericError;
#[cfg(feature = "parallel")]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted by [`Parallelism::auto`] (`0` = auto).
pub const THREADS_ENV: &str = "CHIPLEAK_THREADS";

/// Best-effort human-readable rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

#[cfg(feature = "parallel")]
fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(feature = "parallel")]
fn env_threads() -> Option<usize> {
    let raw = std::env::var(THREADS_ENV).ok()?;
    let parsed = raw.trim().parse::<usize>().ok()?;
    (parsed > 0).then_some(parsed)
}

/// A resolved worker-thread budget (always ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Resolves from `CHIPLEAK_THREADS`, falling back to the hardware
    /// thread count. Always 1 when the `parallel` feature is off.
    pub fn auto() -> Parallelism {
        Parallelism::threads(0)
    }

    /// An explicit thread count; `0` means [`Parallelism::auto`]. Clamped
    /// to 1 when the `parallel` feature is off.
    pub fn threads(n: usize) -> Parallelism {
        #[cfg(not(feature = "parallel"))]
        {
            let _ = n;
            Parallelism { threads: 1 }
        }
        #[cfg(feature = "parallel")]
        {
            let threads = match n {
                0 => env_threads().unwrap_or_else(hardware_threads),
                n => n,
            };
            Parallelism {
                threads: threads.max(1),
            }
        }
    }

    /// Exactly one worker; never spawns.
    pub fn serial() -> Parallelism {
        Parallelism { threads: 1 }
    }

    /// The resolved worker count.
    pub fn thread_count(self) -> usize {
        self.threads
    }

    /// `true` when no threads will be spawned.
    pub fn is_serial(self) -> bool {
        self.threads == 1
    }

    /// Computes `f(0), f(1), …, f(n_chunks - 1)` and returns the results in
    /// chunk order. Chunks are claimed dynamically by the worker pool, but
    /// since each chunk is evaluated independently and the output vector is
    /// ordered by chunk index, the result does not depend on scheduling.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from `f` on the calling thread.
    pub fn map_chunks<T, F>(self, n_chunks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            return (0..n_chunks).map(f).collect();
        }
        #[cfg(not(feature = "parallel"))]
        {
            // Unreachable in practice: every constructor clamps the budget
            // to 1 without the feature. Kept so serial builds compile
            // without ever referencing std::thread; the explicit `return`
            // (needless only in serial builds, where this block is the
            // function tail) keeps the two cfg arms symmetric.
            #[allow(clippy::needless_return)]
            return (0..n_chunks).map(f).collect();
        }
        #[cfg(feature = "parallel")]
        {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
            let collected = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n_chunks {
                                    break;
                                }
                                local.push((i, f(i)));
                            }
                            local
                        })
                    })
                    .collect();
                let mut all = Vec::with_capacity(n_chunks);
                for h in handles {
                    match h.join() {
                        Ok(local) => all.extend(local),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                all
            });
            for (i, v) in collected {
                debug_assert!(i < slots.len(), "workers only claim indexes below n_chunks");
                slots[i] = Some(v);
            }
            slots
                .into_iter()
                // chipleak-lint: allow(no-unwrap-in-library): the atomic counter hands out every index in 0..n_chunks exactly once
                .map(|s| s.expect("every chunk index claimed exactly once"))
                .collect()
        }
    }

    /// Fault-tolerant [`Parallelism::map_chunks`]: a panic inside `f` is
    /// caught instead of unwinding the caller, and surfaces as
    /// [`NumericError::WorkerPanic`] naming the *smallest* panicked chunk
    /// index.
    ///
    /// Every chunk is attempted exactly once regardless of where panics
    /// occur or how many threads run — there is no early exit — so side
    /// effects visible to the caller (for example observability counters
    /// incremented by `f`) are identical for every thread budget, and the
    /// reported chunk index is deterministic.
    ///
    /// `f` runs under [`std::panic::AssertUnwindSafe`]; if it shares
    /// interior-mutable state, the caller must ensure a mid-update panic
    /// cannot leave that state torn.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::WorkerPanic`] when at least one chunk's
    /// closure panicked.
    pub fn try_map_chunks<T, F>(self, n_chunks: usize, f: F) -> Result<Vec<T>, NumericError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let attempts = self.map_chunks(n_chunks, |i| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                .map_err(|p| panic_message(p.as_ref()))
        });
        let mut out = Vec::with_capacity(n_chunks);
        let mut first: Option<(usize, String)> = None;
        for (i, attempt) in attempts.into_iter().enumerate() {
            match attempt {
                Ok(v) => out.push(v),
                Err(message) => {
                    // Attempts arrive in chunk order, so the first error
                    // seen is the smallest panicked index.
                    if first.is_none() {
                        first = Some((i, message));
                    }
                }
            }
        }
        match first {
            None => Ok(out),
            Some((chunk, message)) => Err(NumericError::WorkerPanic { chunk, message }),
        }
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements (the
    /// last may be shorter) and runs `f(chunk_index, chunk)` on each, with
    /// chunks distributed round-robin over the workers. Chunks are disjoint
    /// `&mut` windows, so the outcome is scheduling-independent.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`; re-raises a panic from `f`.
    pub fn for_each_chunk_mut<T, F>(self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        if data.is_empty() {
            return;
        }
        let n_chunks = data.len().div_ceil(chunk_len);
        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            // Needless only in serial builds, where the cfg block below
            // compiles away and this early-out becomes the function tail.
            #[allow(clippy::needless_return)]
            return;
        }
        #[cfg(feature = "parallel")]
        {
            let mut buckets: Vec<Vec<(usize, &mut [T])>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                buckets[i % workers].push((i, chunk));
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(|| {
                            for (i, chunk) in bucket {
                                f(i, chunk);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    if let Err(payload) = h.join() {
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::auto()
    }
}

/// Even, thread-count-independent split of `len` items into `n_chunks`
/// ranges: chunk `i` covers `[start, end)` with the sizes differing by at
/// most one item.
pub fn chunk_bounds(i: usize, n_chunks: usize, len: usize) -> (usize, usize) {
    debug_assert!(i < n_chunks);
    let start = (i as u128 * len as u128 / n_chunks as u128) as usize;
    let end = ((i as u128 + 1) * len as u128 / n_chunks as u128) as usize;
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_resolution() {
        assert_eq!(Parallelism::serial().thread_count(), 1);
        assert!(Parallelism::serial().is_serial());
        let auto = Parallelism::auto();
        assert!(auto.thread_count() >= 1);
        #[cfg(feature = "parallel")]
        assert_eq!(Parallelism::threads(3).thread_count(), 3);
        #[cfg(not(feature = "parallel"))]
        assert_eq!(Parallelism::threads(3).thread_count(), 1);
    }

    #[test]
    fn map_chunks_matches_serial_for_any_thread_count() {
        let work = |c: usize| {
            let (lo, hi) = chunk_bounds(c, 37, 1000);
            (lo..hi).map(|i| (i as f64).sqrt()).sum::<f64>()
        };
        let serial = Parallelism::serial().map_chunks(37, work);
        for t in [2, 3, 8, 64] {
            let par = Parallelism::threads(t).map_chunks(37, work);
            assert_eq!(serial, par, "threads = {t}");
        }
    }

    #[test]
    fn map_chunks_handles_edge_counts() {
        assert!(Parallelism::threads(4).map_chunks(0, |_| 0u8).is_empty());
        assert_eq!(Parallelism::threads(4).map_chunks(1, |i| i), vec![0]);
    }

    #[test]
    fn for_each_chunk_mut_covers_every_element_once() {
        let mut data = vec![0u32; 103];
        Parallelism::threads(5).for_each_chunk_mut(&mut data, 10, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (k, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (k / 10) as u32, "element {k}");
        }
    }

    #[test]
    fn chunk_bounds_partition() {
        let mut covered = 0;
        for i in 0..7 {
            let (lo, hi) = chunk_bounds(i, 7, 23);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, 23);
    }

    #[test]
    fn try_map_chunks_matches_map_chunks_when_nothing_panics() {
        let work = |c: usize| {
            let (lo, hi) = chunk_bounds(c, 9, 100);
            (lo..hi).map(|i| i as u64).sum::<u64>()
        };
        let plain = Parallelism::serial().map_chunks(9, work);
        for t in [1, 2, 8] {
            let tried = Parallelism::threads(t)
                .try_map_chunks(9, work)
                .expect("no panics injected");
            assert_eq!(tried, plain, "threads = {t}");
        }
    }

    #[test]
    fn try_map_chunks_reports_smallest_panicked_chunk() {
        for t in [1, 2, 8] {
            let err = Parallelism::threads(t)
                .try_map_chunks(8, |i| {
                    if i == 5 || i == 2 {
                        panic!("injected fault in chunk {i}");
                    }
                    i
                })
                .expect_err("panics were injected");
            assert_eq!(
                err,
                NumericError::WorkerPanic {
                    chunk: 2,
                    message: "injected fault in chunk 2".into(),
                },
                "threads = {t}"
            );
        }
    }

    #[test]
    fn try_map_chunks_attempts_every_chunk_despite_panics() {
        // No early exit: caller-visible side effects must be identical for
        // every thread budget even when some chunks panic.
        use std::sync::atomic::{AtomicUsize, Ordering};
        for t in [1, 2, 8] {
            let attempted = AtomicUsize::new(0);
            let _ = Parallelism::threads(t).try_map_chunks(16, |i| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if i % 3 == 0 {
                    panic!("injected");
                }
                i
            });
            assert_eq!(attempted.load(Ordering::Relaxed), 16, "threads = {t}");
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panics_propagate() {
        Parallelism::threads(2).map_chunks(4, |i| {
            if i == 2 {
                panic!("deliberate");
            }
            i
        });
    }
}
