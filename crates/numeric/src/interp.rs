//! Piecewise-linear interpolation for tabulated functions.
//!
//! The random-gate covariance kernel `F(ρ_L)` (paper Eq. 10) is a smooth
//! monotone function of the channel-length correlation; it is tabulated
//! once per usage histogram and interpolated afterwards so that each pair
//! or quadrature node costs O(log n).

use crate::error::NumericError;

/// Piecewise-linear interpolant over strictly increasing knots.
///
/// Queries outside the knot range are clamped to the boundary values, which
/// is the right behaviour for correlation tables over `[0, 1]`.
///
/// # Example
///
/// ```
/// use leakage_numeric::interp::LinearInterp;
///
/// let f = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]).unwrap();
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// assert_eq!(f.eval(3.0), 0.0);  // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds an interpolant from knots `xs` (strictly increasing) and
    /// values `ys`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if the lengths differ, are
    /// below 2, or `xs` is not strictly increasing / contains NaN.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<LinearInterp, NumericError> {
        if xs.len() != ys.len() {
            return Err(NumericError::InvalidArgument {
                reason: format!("knot/value lengths differ: {} vs {}", xs.len(), ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(NumericError::InvalidArgument {
                reason: "need at least two knots".into(),
            });
        }
        if xs.windows(2).any(|w| !(w[1] > w[0])) {
            return Err(NumericError::InvalidArgument {
                reason: "knots must be strictly increasing".into(),
            });
        }
        if ys.iter().any(|y| y.is_nan()) {
            return Err(NumericError::InvalidArgument {
                reason: "values must not be NaN".into(),
            });
        }
        Ok(LinearInterp { xs, ys })
    }

    /// Evaluates the interpolant at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // binary search for the bracketing interval
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] * (1.0 - t) + self.ys[hi] * t
    }

    /// The knot abscissae.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// The knot ordinates.
    pub fn values(&self) -> &[f64] {
        &self.ys
    }

    /// Smallest knot.
    pub fn min_knot(&self) -> f64 {
        self.xs[0]
    }

    /// Largest knot.
    pub fn max_knot(&self) -> f64 {
        self.xs[self.xs.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_knots() {
        let f = LinearInterp::new(vec![0.0, 0.5, 1.0], vec![1.0, 2.0, -3.0]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.eval(1.0), -3.0);
    }

    #[test]
    fn linear_between_knots() {
        let f = LinearInterp::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert!((f.eval(0.5) - 1.0).abs() < 1e-15);
        assert!((f.eval(1.5) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn clamps_out_of_range() {
        let f = LinearInterp::new(vec![1.0, 2.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(f.eval(0.0), 5.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn dense_table_approximates_smooth_function() {
        let xs: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 3.0).sin()).collect();
        let f = LinearInterp::new(xs, ys).unwrap();
        for i in 0..100 {
            let x = i as f64 / 100.0 + 0.0037;
            if x > 1.0 {
                break;
            }
            assert!((f.eval(x) - (x * 3.0).sin()).abs() < 1e-5);
        }
    }
}
