//! Piecewise-linear interpolation for tabulated functions.
//!
//! The random-gate covariance kernel `F(ρ_L)` (paper Eq. 10) is a smooth
//! monotone function of the channel-length correlation; it is tabulated
//! once per usage histogram and interpolated afterwards so that each pair
//! or quadrature node costs O(log n).

use crate::error::NumericError;

/// Piecewise-linear interpolant over strictly increasing knots.
///
/// Queries outside the knot range are clamped to the boundary values, which
/// is the right behaviour for correlation tables over `[0, 1]`.
///
/// # Example
///
/// ```
/// use leakage_numeric::interp::LinearInterp;
///
/// let f = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]).unwrap();
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// assert_eq!(f.eval(3.0), 0.0);  // clamped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds an interpolant from knots `xs` (strictly increasing) and
    /// values `ys`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if the lengths differ, are
    /// below 2, or `xs` is not strictly increasing / contains NaN.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<LinearInterp, NumericError> {
        if xs.len() != ys.len() {
            return Err(NumericError::InvalidArgument {
                reason: format!("knot/value lengths differ: {} vs {}", xs.len(), ys.len()),
            });
        }
        if xs.len() < 2 {
            return Err(NumericError::InvalidArgument {
                reason: "need at least two knots".into(),
            });
        }
        if xs.iter().zip(xs.iter().skip(1)).any(|(a, b)| !(b > a)) {
            return Err(NumericError::InvalidArgument {
                reason: "knots must be strictly increasing".into(),
            });
        }
        if ys.iter().any(|y| y.is_nan()) {
            return Err(NumericError::InvalidArgument {
                reason: "values must not be NaN".into(),
            });
        }
        Ok(LinearInterp { xs, ys })
    }

    /// Evaluates the interpolant at `x`, clamping outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // `new` rejects fewer than two knots and length-mismatched values,
        // so every index below is in range.
        debug_assert!(n >= 2 && self.ys.len() == n);
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // binary search for the bracketing interval
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] * (1.0 - t) + self.ys[hi] * t
    }

    /// The knot abscissae.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// The knot ordinates.
    pub fn values(&self) -> &[f64] {
        &self.ys
    }

    /// Smallest knot.
    pub fn min_knot(&self) -> f64 {
        self.xs[0]
    }

    /// Largest knot.
    pub fn max_knot(&self) -> f64 {
        self.xs[self.xs.len() - 1]
    }
}

/// A flat bank of piecewise-linear tables sharing one *uniform dyadic* knot
/// grid over `[0, 1]`: `K` knots at `k / (K - 1)` with `K - 1` a power of
/// two.
///
/// This is the lookup structure behind the tiled exact kernel: instead of a
/// `BTreeMap` probe plus a binary search per gate pair, a table index is an
/// array offset and the bracketing interval is `floor(x · (K - 1))`. The
/// evaluation is **bit-identical** to [`LinearInterp::eval`] over the same
/// knots and values:
///
/// * the knots `k / (K - 1)` are exact in `f64` (division by a power of
///   two), so `x · (K - 1)` truncated to integer reproduces the binary
///   search's bracket `lo` exactly — including the `xs[lo] == x` tie, where
///   both paths pick `lo = k` and get `t = 0`;
/// * the interpolation weight uses the same expression
///   `(x - xs[lo]) / (xs[hi] - xs[lo])` with `xs[lo]` recomputed as
///   `lo / (K - 1)` (the identical exact value) and the denominator the
///   identical exact power of two;
/// * out-of-range inputs take the same early returns to the boundary
///   values.
///
/// The bitwise-equality property is pinned by tests against randomly filled
/// tables.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDyadicTables {
    n_tables: usize,
    n_knots: usize,
    /// `1 / (K - 1)`, exact because `K - 1` is a power of two.
    step: f64,
    /// Row-major: table `i` occupies `values[i * n_knots .. (i + 1) * n_knots]`.
    values: Vec<f64>,
}

impl UnitDyadicTables {
    /// Allocates `n_tables` zero-filled tables over `n_knots` dyadic knots.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidArgument`] if `n_knots < 2` or
    /// `n_knots - 1` is not a power of two.
    pub fn new(n_tables: usize, n_knots: usize) -> Result<UnitDyadicTables, NumericError> {
        if n_knots < 2 || !(n_knots - 1).is_power_of_two() {
            return Err(NumericError::InvalidArgument {
                reason: format!("n_knots must be 2^k + 1, got {n_knots}"),
            });
        }
        Ok(UnitDyadicTables {
            n_tables,
            n_knots,
            step: 1.0 / (n_knots - 1) as f64,
            values: vec![0.0; n_tables * n_knots],
        })
    }

    /// Number of tables in the bank.
    pub fn n_tables(&self) -> usize {
        self.n_tables
    }

    /// Number of knots per table.
    pub fn n_knots(&self) -> usize {
        self.n_knots
    }

    /// Overwrites table `idx` with `ys`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `ys.len() != n_knots`.
    pub fn set_table(&mut self, idx: usize, ys: &[f64]) {
        assert!(idx < self.n_tables, "table index {idx} out of range");
        assert_eq!(ys.len(), self.n_knots, "value count must match knot count");
        self.values[idx * self.n_knots..(idx + 1) * self.n_knots].copy_from_slice(ys);
    }

    /// The raw values of table `idx`.
    pub fn table(&self, idx: usize) -> &[f64] {
        &self.values[idx * self.n_knots..(idx + 1) * self.n_knots]
    }

    /// Evaluates table `idx` at `x`, clamping outside `[0, 1]`.
    ///
    /// Bit-identical to `LinearInterp::eval` over knots `k / (K - 1)` with
    /// the same values (see the type-level docs for the argument).
    #[inline]
    pub fn eval(&self, idx: usize, x: f64) -> f64 {
        // `new` enforces `n_knots >= 2` and sizes `values` as
        // `n_tables * n_knots`, so a valid `idx` keeps every access in range.
        debug_assert!(self.n_knots >= 2 && (idx + 1) * self.n_knots <= self.values.len());
        let ys = &self.values[idx * self.n_knots..(idx + 1) * self.n_knots];
        let k1 = (self.n_knots - 1) as f64;
        if x <= 0.0 {
            return ys[0];
        }
        if x >= 1.0 {
            return ys[self.n_knots - 1];
        }
        // floor(x · (K-1)) lands on the same bracket the binary search
        // finds; the cast truncates, which is floor for x in (0, 1).
        let lo = ((x * k1) as usize).min(self.n_knots - 2);
        let x_lo = lo as f64 * self.step;
        let t = (x - x_lo) / self.step;
        ys[lo] * (1.0 - t) + ys[lo + 1] * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_knots() {
        let f = LinearInterp::new(vec![0.0, 0.5, 1.0], vec![1.0, 2.0, -3.0]).unwrap();
        assert_eq!(f.eval(0.0), 1.0);
        assert_eq!(f.eval(0.5), 2.0);
        assert_eq!(f.eval(1.0), -3.0);
    }

    #[test]
    fn linear_between_knots() {
        let f = LinearInterp::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert!((f.eval(0.5) - 1.0).abs() < 1e-15);
        assert!((f.eval(1.5) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn clamps_out_of_range() {
        let f = LinearInterp::new(vec![1.0, 2.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(f.eval(0.0), 5.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0, f64::NAN]).is_err());
    }

    /// Deterministic pseudo-random stream for the bitwise-equality tests
    /// (xorshift; no external deps needed).
    fn prng_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn dyadic_tables_are_bit_identical_to_linear_interp() {
        for &n_knots in &[2usize, 3, 5, 33] {
            let k1 = (n_knots - 1) as f64;
            let xs: Vec<f64> = (0..n_knots).map(|k| k as f64 / k1).collect();
            let ys: Vec<f64> = prng_stream(n_knots as u64, n_knots)
                .iter()
                .map(|u| u * 2.0 - 0.5)
                .collect();
            let reference = LinearInterp::new(xs.clone(), ys.clone()).unwrap();
            let mut bank = UnitDyadicTables::new(3, n_knots).unwrap();
            bank.set_table(1, &ys);
            assert_eq!(bank.table(1), &ys[..]);
            // Knots themselves, knot neighbourhoods, random interior
            // points, and out-of-range clamps.
            let mut queries: Vec<f64> = xs.clone();
            for &x in &xs {
                queries.push(f64::from_bits(x.to_bits().wrapping_add(1)));
                if x > 0.0 {
                    queries.push(f64::from_bits(x.to_bits() - 1));
                }
            }
            queries.extend(prng_stream(99, 500));
            queries.extend([-1.0, -1e-300, 1.0 + 1e-12, 2.0]);
            for x in queries {
                assert_eq!(
                    bank.eval(1, x).to_bits(),
                    reference.eval(x).to_bits(),
                    "n_knots = {n_knots}, x = {x:e}"
                );
            }
        }
    }

    #[test]
    fn dyadic_tables_reject_non_dyadic_knot_counts() {
        assert!(UnitDyadicTables::new(1, 1).is_err());
        assert!(UnitDyadicTables::new(1, 4).is_err()); // 3 intervals
        assert!(UnitDyadicTables::new(1, 0).is_err());
        assert!(UnitDyadicTables::new(0, 33).is_ok()); // empty bank is fine
        let t = UnitDyadicTables::new(2, 33).unwrap();
        assert_eq!(t.n_tables(), 2);
        assert_eq!(t.n_knots(), 33);
    }

    #[test]
    fn dense_table_approximates_smooth_function() {
        let xs: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 3.0).sin()).collect();
        let f = LinearInterp::new(xs, ys).unwrap();
        for i in 0..100 {
            let x = i as f64 / 100.0 + 0.0037;
            if x > 1.0 {
                break;
            }
            assert!((f.eval(x) - (x * 3.0).sin()).abs() < 1e-5);
        }
    }
}
