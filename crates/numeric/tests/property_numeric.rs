//! Property-based tests of the numerical kernels.

use leakage_numeric::fft::{fft, ifft, Complex};
use leakage_numeric::integrate::{composite_gauss_legendre, gauss_legendre};
use leakage_numeric::interp::LinearInterp;
use leakage_numeric::matrix::Matrix;
use leakage_numeric::regression::polyfit;
use leakage_numeric::special::{normal_cdf, normal_quantile};
use leakage_numeric::stats::RunningStats;
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0_f64..100.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solve_then_multiply_roundtrips(
        n in 2usize..6,
        seed in proptest::collection::vec(-10.0_f64..10.0, 36 + 6),
    ) {
        // Build a well-conditioned SPD-ish matrix A = B Bᵀ + I.
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = seed[i * 6 + j];
            }
        }
        let mut a = b.mul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let rhs: Vec<f64> = seed[36..36 + n].to_vec();
        let x = a.solve(&rhs).unwrap();
        let back = a.mul_vec(&x).unwrap();
        for (u, v) in back.iter().zip(&rhs) {
            prop_assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
        // Cholesky agrees with LU on SPD systems.
        let xc = a.cholesky().unwrap().solve(&rhs);
        for (u, v) in x.iter().zip(&xc) {
            prop_assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()));
        }
    }

    #[test]
    fn determinant_of_product_multiplies(
        s in proptest::collection::vec(-3.0_f64..3.0, 8),
    ) {
        let a = Matrix::from_rows(&[&s[0..2], &s[2..4]]).unwrap();
        let b = Matrix::from_rows(&[&s[4..6], &s[6..8]]).unwrap();
        let det_ab = a.mul(&b).unwrap().det().unwrap();
        let sep = a.det().unwrap() * b.det().unwrap();
        prop_assert!((det_ab - sep).abs() < 1e-9 * (1.0 + sep.abs()));
    }

    #[test]
    fn fft_roundtrip_preserves_signal(xs in small_vec(64)) {
        let mut data: Vec<Complex> = xs.iter().map(|x| Complex::new(*x, 0.0)).collect();
        fft(&mut data).unwrap();
        ifft(&mut data).unwrap();
        for (c, x) in data.iter().zip(&xs) {
            prop_assert!((c.re - x).abs() < 1e-9);
            prop_assert!(c.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_is_linear(xs in small_vec(32), ys in small_vec(32), a in -5.0_f64..5.0) {
        let mut fx: Vec<Complex> = xs.iter().map(|x| Complex::new(*x, 0.0)).collect();
        let mut fy: Vec<Complex> = ys.iter().map(|y| Complex::new(*y, 0.0)).collect();
        let mut fz: Vec<Complex> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| Complex::new(a * x + y, 0.0))
            .collect();
        fft(&mut fx).unwrap();
        fft(&mut fy).unwrap();
        fft(&mut fz).unwrap();
        for i in 0..32 {
            prop_assert!((fz[i].re - (a * fx[i].re + fy[i].re)).abs() < 1e-7);
            prop_assert!((fz[i].im - (a * fx[i].im + fy[i].im)).abs() < 1e-7);
        }
    }

    #[test]
    fn quadrature_is_additive_over_subintervals(a in -5.0_f64..0.0, b in 0.1_f64..5.0, m in -2.0_f64..2.0) {
        let f = move |x: f64| (m * x).sin() + x * x;
        let whole = gauss_legendre(f, a, b, 48);
        let mid = 0.5 * (a + b);
        let split = gauss_legendre(f, a, mid, 48) + gauss_legendre(f, mid, b, 48);
        prop_assert!((whole - split).abs() < 1e-9 * (1.0 + whole.abs()));
        // composite with many panels agrees too
        let comp = composite_gauss_legendre(f, a, b, 16, 8);
        prop_assert!((whole - comp).abs() < 1e-9 * (1.0 + whole.abs()));
    }

    #[test]
    fn polyfit_residual_never_worse_than_lower_degree(
        xs in proptest::collection::vec(-10.0_f64..10.0, 8..20),
        noise_seed in 0u64..1000,
    ) {
        // distinct xs
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        prop_assume!(xs.len() >= 6);
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * x - 2.0 * x + ((i as u64 * noise_seed) % 7) as f64 * 0.1)
            .collect();
        let lin = polyfit(&xs, &ys, 1).unwrap();
        let quad = polyfit(&xs, &ys, 2).unwrap();
        prop_assert!(quad.rms_residual <= lin.rms_residual + 1e-12);
    }

    #[test]
    fn interp_stays_within_value_bounds(
        ys in proptest::collection::vec(-50.0_f64..50.0, 3..12),
        q in 0.0_f64..1.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let f = LinearInterp::new(xs, ys).unwrap();
        let x = q * (f.max_knot() + 2.0) - 1.0; // includes out-of-range
        let v = f.eval(x);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn normal_quantile_cdf_inverse(p in 0.001_f64..0.999) {
        let x = normal_quantile(p);
        prop_assert!((normal_cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn running_stats_invariant_under_order(mut xs in small_vec(20)) {
        let mut fwd = RunningStats::new();
        xs.iter().for_each(|&x| fwd.push(x));
        xs.reverse();
        let mut rev = RunningStats::new();
        xs.iter().for_each(|&x| rev.push(x));
        prop_assert!((fwd.mean() - rev.mean()).abs() < 1e-9);
        prop_assert!((fwd.sample_variance() - rev.sample_variance()).abs() < 1e-7);
        prop_assert_eq!(fwd.min(), rev.min());
        prop_assert_eq!(fwd.max(), rev.max());
    }
}
