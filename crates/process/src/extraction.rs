//! Robust extraction of a spatial correlation function from noisy
//! measurements (the substrate the paper takes from Xiong, Zolotov & He,
//! *"Robust extraction of spatial correlation"*, ISPD 2006 — its ref 5).
//!
//! Test structures yield sample correlations at a set of distances; raw
//! sample correlations are noisy, can exceed 1, dip negative, or violate
//! monotonicity, and used directly they may produce an invalid (indefinite)
//! covariance. Extraction enforces the properties the estimators rely on:
//!
//! 1. `ρ(0) = 1`;
//! 2. values clamped to `[0, 1]`;
//! 3. monotone non-increasing in distance (isotonic regression via
//!    pool-adjacent-violators, weighted by sample counts);
//! 4. optional compact support: once the regressed value falls below a
//!    threshold, it is snapped to zero so the 1-D polar estimator applies.

use crate::correlation::TableCorrelation;
use crate::error::ProcessError;

/// One measured correlation point: distance, sample correlation, and the
/// number of sample pairs behind it (its weight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationSample {
    /// Separation distance of the measurement pair (µm).
    pub distance: f64,
    /// Sample (Pearson) correlation at that distance.
    pub correlation: f64,
    /// Number of sample pairs (weight); must be ≥ 1.
    pub count: u64,
}

/// Extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionOptions {
    /// Values at or below this threshold are snapped to zero, giving the
    /// extracted model compact support (default 0.02).
    pub zero_threshold: f64,
}

impl Default for ExtractionOptions {
    fn default() -> Self {
        ExtractionOptions {
            zero_threshold: 0.02,
        }
    }
}

/// Extracts a valid correlation model from noisy samples.
///
/// Samples at duplicate distances are merged (weighted). A `(0, 1)` anchor
/// is always present. Returns a [`TableCorrelation`] whose support radius
/// is finite when the tail was snapped to zero.
///
/// # Errors
///
/// Returns [`ProcessError::InvalidParameter`] if no sample is given, a
/// distance is negative/non-finite, a count is zero, or a correlation is
/// non-finite.
///
/// # Example
///
/// ```
/// use leakage_process::extraction::{extract_correlation, CorrelationSample, ExtractionOptions};
/// use leakage_process::correlation::SpatialCorrelation;
///
/// // Noisy, non-monotone raw measurements.
/// let samples = [
///     CorrelationSample { distance: 10.0, correlation: 0.93, count: 400 },
///     CorrelationSample { distance: 20.0, correlation: 0.72, count: 400 },
///     CorrelationSample { distance: 30.0, correlation: 0.78, count: 100 }, // bump up: noise
///     CorrelationSample { distance: 60.0, correlation: 0.31, count: 400 },
///     CorrelationSample { distance: 90.0, correlation: -0.04, count: 400 },
/// ];
/// let model = extract_correlation(&samples, ExtractionOptions::default())?;
/// assert_eq!(model.rho(0.0), 1.0);
/// assert!(model.rho(20.0) >= model.rho(30.0)); // monotone after PAV
/// assert_eq!(model.rho(95.0), 0.0);            // snapped tail
/// assert!(model.support_radius().is_some());
/// # Ok::<(), leakage_process::ProcessError>(())
/// ```
pub fn extract_correlation(
    samples: &[CorrelationSample],
    options: ExtractionOptions,
) -> Result<TableCorrelation, ProcessError> {
    if samples.is_empty() {
        return Err(ProcessError::InvalidParameter {
            reason: "need at least one correlation sample".into(),
        });
    }
    for s in samples {
        if !(s.distance >= 0.0) || !s.distance.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("invalid sample distance {}", s.distance),
            });
        }
        if !s.correlation.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: "sample correlation must be finite".into(),
            });
        }
        if s.count == 0 {
            return Err(ProcessError::InvalidParameter {
                reason: "sample count must be at least 1".into(),
            });
        }
    }

    // Sort by distance and merge duplicates (weighted mean).
    let mut pts: Vec<(f64, f64, f64)> = samples
        .iter()
        .map(|s| (s.distance, s.correlation.clamp(-1.0, 1.0), s.count as f64))
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64, f64)> = Vec::with_capacity(pts.len());
    for (d, r, w) in pts {
        match merged.last_mut() {
            Some((md, mr, mw)) if (*md - d).abs() < 1e-12 => {
                *mr = (*mr * *mw + r * w) / (*mw + w);
                *mw += w;
            }
            _ => merged.push((d, r, w)),
        }
    }
    // Anchor ρ(0) = 1 with overwhelming weight.
    if merged[0].0 > 0.0 {
        merged.insert(0, (0.0, 1.0, f64::MAX / 1e6));
    } else {
        merged[0] = (0.0, 1.0, f64::MAX / 1e6);
    }

    // Weighted isotonic regression for a non-increasing sequence
    // (pool-adjacent-violators on the negated values).
    let values: Vec<f64> = merged.iter().map(|(_, r, _)| *r).collect();
    let weights: Vec<f64> = merged.iter().map(|(_, _, w)| *w).collect();
    let fitted = pav_non_increasing(&values, &weights);

    // Clamp into [0, 1] and snap the sub-threshold tail to zero.
    let mut rhos: Vec<f64> = fitted.iter().map(|r| r.clamp(0.0, 1.0)).collect();
    let mut snapped = false;
    for r in rhos.iter_mut() {
        if snapped || *r <= options.zero_threshold {
            *r = 0.0;
            snapped = true;
        }
    }
    let distances: Vec<f64> = merged.iter().map(|(d, _, _)| *d).collect();
    TableCorrelation::new(distances, rhos)
}

/// Weighted pool-adjacent-violators for a *non-increasing* fit.
fn pav_non_increasing(values: &[f64], weights: &[f64]) -> Vec<f64> {
    // Classic PAV computes non-decreasing fits; negate for non-increasing.
    #[derive(Clone, Copy)]
    struct Block {
        mean: f64,
        weight: f64,
        len: usize,
    }
    let mut blocks: Vec<Block> = Vec::with_capacity(values.len());
    for (v, w) in values.iter().zip(weights) {
        blocks.push(Block {
            mean: -v,
            weight: *w,
            len: 1,
        });
        while blocks.len() >= 2 {
            let b = blocks[blocks.len() - 1];
            let a = blocks[blocks.len() - 2];
            if a.mean <= b.mean {
                break;
            }
            // merge
            let merged = Block {
                mean: (a.mean * a.weight + b.mean * b.weight) / (a.weight + b.weight),
                weight: a.weight + b.weight,
                len: a.len + b.len,
            };
            blocks.pop();
            blocks.pop();
            blocks.push(merged);
        }
    }
    let mut out = Vec::with_capacity(values.len());
    for b in blocks {
        for _ in 0..b.len {
            out.push(-b.mean);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::SpatialCorrelation;

    fn sample(d: f64, r: f64, c: u64) -> CorrelationSample {
        CorrelationSample {
            distance: d,
            correlation: r,
            count: c,
        }
    }

    #[test]
    fn clean_monotone_data_passes_through() {
        let samples = [
            sample(10.0, 0.9, 100),
            sample(20.0, 0.8, 100),
            sample(40.0, 0.5, 100),
        ];
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        assert_eq!(m.rho(0.0), 1.0);
        assert!((m.rho(10.0) - 0.9).abs() < 1e-12);
        assert!((m.rho(40.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn violations_are_pooled() {
        // Bump at 30 µm must be averaged with its neighbours, weighted.
        let samples = [
            sample(10.0, 0.9, 100),
            sample(20.0, 0.5, 300),
            sample(30.0, 0.7, 100),
        ];
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        let r20 = m.rho(20.0);
        let r30 = m.rho(30.0);
        assert!(r20 >= r30, "monotone after pav");
        // pooled weighted mean of 0.5 (w 300) and 0.7 (w 100) = 0.55
        assert!((r30 - 0.55).abs() < 1e-9, "r30 {r30}");
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let samples = [sample(5.0, 1.2, 10), sample(50.0, -0.3, 10)];
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        assert!(m.rho(5.0) <= 1.0);
        assert_eq!(m.rho(50.0), 0.0);
    }

    #[test]
    fn tail_snapping_gives_compact_support() {
        let samples = [
            sample(10.0, 0.8, 10),
            sample(50.0, 0.4, 10),
            sample(100.0, 0.015, 10),
            sample(150.0, 0.01, 10),
        ];
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        assert_eq!(m.rho(100.0), 0.0);
        assert_eq!(m.support_radius(), Some(150.0));
    }

    #[test]
    fn no_snap_without_low_tail() {
        let samples = [sample(10.0, 0.9, 10), sample(50.0, 0.6, 10)];
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        assert_eq!(m.support_radius(), None);
        assert!((m.rho(1e6) - 0.6).abs() < 1e-12, "clamps to last value");
    }

    #[test]
    fn duplicate_distances_merge_weighted() {
        let samples = [sample(10.0, 0.8, 100), sample(10.0, 0.6, 300)];
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        assert!((m.rho(10.0) - 0.65).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_samples() {
        assert!(extract_correlation(&[], ExtractionOptions::default()).is_err());
        assert!(
            extract_correlation(&[sample(-1.0, 0.5, 1)], ExtractionOptions::default()).is_err()
        );
        assert!(
            extract_correlation(&[sample(1.0, f64::NAN, 1)], ExtractionOptions::default()).is_err()
        );
        assert!(extract_correlation(&[sample(1.0, 0.5, 0)], ExtractionOptions::default()).is_err());
    }

    #[test]
    fn recovers_tent_from_noisy_samples() {
        // End-to-end: noisy observations of a tent with D_max = 80.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let truth = |d: f64| (1.0 - d / 80.0_f64).max(0.0);
        let samples: Vec<CorrelationSample> = (1..=20)
            .map(|i| {
                let d = i as f64 * 5.0;
                let noise: f64 = rng.gen_range(-0.04..0.04);
                sample(d, truth(d) + noise, 500)
            })
            .collect();
        let m = extract_correlation(&samples, ExtractionOptions::default()).unwrap();
        for d in [10.0, 30.0, 50.0, 70.0] {
            assert!(
                (m.rho(d) - truth(d)).abs() < 0.06,
                "d {d}: {} vs {}",
                m.rho(d),
                truth(d)
            );
        }
        assert!(m.support_radius().is_some(), "compact support recovered");
    }
}
