//! Within-die spatial correlation models and the D2D combinator.
//!
//! The paper assumes the existence of a spatial correlation function for
//! the WID channel-length variation, `ρ_wid(d)`, depending only on the
//! distance `d` between two locations (§2, after Xiong/Zolotov/He). Any
//! model implementing [`SpatialCorrelation`] plugs into the estimators;
//! the tent (linear-decay) model matches the paper's requirement that the
//! correlation reach zero at a finite `D_max`, enabling the 1-D polar
//! constant-time estimator (§3.2.2).

use crate::error::ProcessError;
use leakage_numeric::interp::LinearInterp;

/// A within-die spatial correlation function `ρ(d)` of distance `d ≥ 0`.
///
/// Contract: `rho(0) == 1`, `|rho(d)| ≤ 1`, and `rho` depends only on the
/// scalar distance (isotropy). Implementations should be cheap — the O(n)
/// estimator calls this once per lattice offset.
pub trait SpatialCorrelation: std::fmt::Debug + Send + Sync {
    /// Correlation at distance `d` (same length unit as the die geometry).
    fn rho(&self, d: f64) -> f64;

    /// Distance beyond which `rho` is exactly zero, if the model has
    /// compact support. `None` means the correlation has an infinite tail
    /// (e.g. exponential), which rules out the plain 1-D polar estimator
    /// but not the 2-D one.
    fn support_radius(&self) -> Option<f64> {
        None
    }
}

/// Exponential decay `ρ(d) = exp(−d/λ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialCorrelation {
    length_scale: f64,
}

impl ExponentialCorrelation {
    /// Creates the model with correlation length `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if `λ ≤ 0` or non-finite.
    pub fn new(length_scale: f64) -> Result<Self, ProcessError> {
        if !(length_scale > 0.0) || !length_scale.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("length scale must be positive, got {length_scale}"),
            });
        }
        Ok(ExponentialCorrelation { length_scale })
    }

    /// The correlation length `λ`.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }
}

impl SpatialCorrelation for ExponentialCorrelation {
    fn rho(&self, d: f64) -> f64 {
        (-d.abs() / self.length_scale).exp()
    }
}

/// Gaussian (squared-exponential) decay `ρ(d) = exp(−(d/λ)²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianCorrelation {
    length_scale: f64,
}

impl GaussianCorrelation {
    /// Creates the model with correlation length `λ > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if `λ ≤ 0` or non-finite.
    pub fn new(length_scale: f64) -> Result<Self, ProcessError> {
        if !(length_scale > 0.0) || !length_scale.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("length scale must be positive, got {length_scale}"),
            });
        }
        Ok(GaussianCorrelation { length_scale })
    }

    /// The correlation length `λ`.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }
}

impl SpatialCorrelation for GaussianCorrelation {
    fn rho(&self, d: f64) -> f64 {
        let t = d / self.length_scale;
        (-t * t).exp()
    }
}

/// Tent (linear decay) model `ρ(d) = max(0, 1 − d/D_max)`.
///
/// Reaches exactly zero at `D_max`, which is what the paper's 1-D polar
/// constant-time estimator requires (§3.2.2). Note the tent function is a
/// valid 1-D covariance but only *approximately* valid in 2-D; the field
/// sampler clips small negative circulant eigenvalues when they appear.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TentCorrelation {
    dmax: f64,
}

impl TentCorrelation {
    /// Creates the model with cutoff distance `D_max > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if `D_max ≤ 0` or
    /// non-finite.
    pub fn new(dmax: f64) -> Result<Self, ProcessError> {
        if !(dmax > 0.0) || !dmax.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("cutoff distance must be positive, got {dmax}"),
            });
        }
        Ok(TentCorrelation { dmax })
    }

    /// The cutoff distance `D_max`.
    pub fn dmax(&self) -> f64 {
        self.dmax
    }
}

impl SpatialCorrelation for TentCorrelation {
    fn rho(&self, d: f64) -> f64 {
        (1.0 - d.abs() / self.dmax).max(0.0)
    }

    fn support_radius(&self) -> Option<f64> {
        Some(self.dmax)
    }
}

/// Spherical model `ρ(d) = 1 − 1.5 t + 0.5 t³` for `t = d/D_max ≤ 1`,
/// zero beyond — a positive-definite compact-support covariance common in
/// geostatistics, smoother at the origin than the tent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SphericalCorrelation {
    dmax: f64,
}

impl SphericalCorrelation {
    /// Creates the model with cutoff distance `D_max > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if `D_max ≤ 0` or
    /// non-finite.
    pub fn new(dmax: f64) -> Result<Self, ProcessError> {
        if !(dmax > 0.0) || !dmax.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("cutoff distance must be positive, got {dmax}"),
            });
        }
        Ok(SphericalCorrelation { dmax })
    }

    /// The cutoff distance `D_max`.
    pub fn dmax(&self) -> f64 {
        self.dmax
    }
}

impl SpatialCorrelation for SphericalCorrelation {
    fn rho(&self, d: f64) -> f64 {
        let t = d.abs() / self.dmax;
        if t >= 1.0 {
            0.0
        } else {
            1.0 - 1.5 * t + 0.5 * t * t * t
        }
    }

    fn support_radius(&self) -> Option<f64> {
        Some(self.dmax)
    }
}

/// Correlation tabulated from measurements (e.g. extracted per
/// Xiong/Zolotov/He, ISPD'06), linearly interpolated and clamped.
#[derive(Debug, Clone, PartialEq)]
pub struct TableCorrelation {
    table: LinearInterp,
    support: Option<f64>,
}

impl TableCorrelation {
    /// Builds a tabulated model from `(distance, ρ)` knots. The first knot
    /// must be `(0, 1)`; values must lie in `[-1, 1]`.
    ///
    /// If the last tabulated ρ is exactly 0, the model reports compact
    /// support at the last knot (queries beyond clamp to 0).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] on malformed knots.
    pub fn new(distances: Vec<f64>, rhos: Vec<f64>) -> Result<Self, ProcessError> {
        if distances.first() != Some(&0.0) {
            return Err(ProcessError::InvalidParameter {
                reason: "correlation table must start at distance 0".into(),
            });
        }
        if rhos.first() != Some(&1.0) {
            return Err(ProcessError::InvalidParameter {
                reason: "correlation at distance 0 must be 1".into(),
            });
        }
        if rhos.iter().any(|r| !(-1.0..=1.0).contains(r)) {
            return Err(ProcessError::InvalidParameter {
                reason: "correlation values must lie in [-1, 1]".into(),
            });
        }
        let support = if rhos.last() == Some(&0.0) {
            distances.last().copied()
        } else {
            None
        };
        let table = LinearInterp::new(distances, rhos)?;
        Ok(TableCorrelation { table, support })
    }
}

impl SpatialCorrelation for TableCorrelation {
    fn rho(&self, d: f64) -> f64 {
        self.table.eval(d.abs())
    }

    fn support_radius(&self) -> Option<f64> {
        self.support
    }
}

/// Total correlation combining WID and D2D components (§2):
/// `ρ_total(d) = ρ_C + (1 − ρ_C)·ρ_wid(d)` with
/// `ρ_C = σ_dd² / (σ_dd² + σ_wd²)`.
///
/// The D2D share never decays, so `ρ_total` has a floor at `ρ_C`; the 1-D
/// polar estimator handles this by splitting off the constant part
/// (paper Eq. 26).
#[derive(Debug)]
pub struct TotalCorrelation<C> {
    wid: C,
    rho_c: f64,
}

impl<C: SpatialCorrelation> TotalCorrelation<C> {
    /// Combines a WID model with a D2D variance fraction `ρ_C ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if `ρ_C` is outside
    /// `[0, 1]`.
    pub fn new(wid: C, rho_c: f64) -> Result<Self, ProcessError> {
        if !(0.0..=1.0).contains(&rho_c) {
            return Err(ProcessError::InvalidParameter {
                reason: format!("d2d variance fraction must be in [0,1], got {rho_c}"),
            });
        }
        Ok(TotalCorrelation { wid, rho_c })
    }

    /// The constant (D2D) correlation floor `ρ_C`.
    pub fn rho_c(&self) -> f64 {
        self.rho_c
    }

    /// The underlying WID model.
    pub fn wid(&self) -> &C {
        &self.wid
    }
}

impl<C: SpatialCorrelation> SpatialCorrelation for TotalCorrelation<C> {
    fn rho(&self, d: f64) -> f64 {
        self.rho_c + (1.0 - self.rho_c) * self.wid.rho(d)
    }

    fn support_radius(&self) -> Option<f64> {
        if self.rho_c == 0.0 {
            self.wid.support_radius()
        } else {
            None // the floor never decays to zero
        }
    }
}

// Allow trait objects and references to be used wherever a model is expected.
impl<C: SpatialCorrelation + ?Sized> SpatialCorrelation for &C {
    fn rho(&self, d: f64) -> f64 {
        (**self).rho(d)
    }

    fn support_radius(&self) -> Option<f64> {
        (**self).support_radius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_contract<C: SpatialCorrelation>(c: &C) {
        assert!((c.rho(0.0) - 1.0).abs() < 1e-12, "rho(0) must be 1");
        for d in [0.1, 1.0, 10.0, 100.0, 1e6] {
            let r = c.rho(d);
            assert!((-1.0..=1.0).contains(&r), "rho({d}) = {r} out of range");
        }
        // isotropy/symmetry in the scalar argument
        assert_eq!(c.rho(5.0), c.rho(-5.0_f64.abs()));
    }

    #[test]
    fn exponential_contract_and_decay() {
        let c = ExponentialCorrelation::new(50.0).unwrap();
        check_contract(&c);
        assert!((c.rho(50.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(c.support_radius().is_none());
    }

    #[test]
    fn gaussian_contract() {
        let c = GaussianCorrelation::new(30.0).unwrap();
        check_contract(&c);
        assert!((c.rho(30.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn tent_reaches_zero_at_dmax() {
        let c = TentCorrelation::new(100.0).unwrap();
        check_contract(&c);
        assert_eq!(c.rho(100.0), 0.0);
        assert_eq!(c.rho(150.0), 0.0);
        assert!((c.rho(50.0) - 0.5).abs() < 1e-12);
        assert_eq!(c.support_radius(), Some(100.0));
    }

    #[test]
    fn spherical_smooth_and_compact() {
        let c = SphericalCorrelation::new(100.0).unwrap();
        check_contract(&c);
        assert_eq!(c.rho(100.0), 0.0);
        assert_eq!(c.rho(101.0), 0.0);
        // spherical is above... actually below tent near origin? at t=0.5:
        // 1 - 0.75 + 0.0625 = 0.3125 < 0.5
        assert!((c.rho(50.0) - 0.3125).abs() < 1e-12);
        assert_eq!(c.support_radius(), Some(100.0));
    }

    #[test]
    fn table_model_interpolates_and_detects_support() {
        let c = TableCorrelation::new(vec![0.0, 50.0, 100.0], vec![1.0, 0.4, 0.0]).unwrap();
        check_contract(&c);
        assert!((c.rho(25.0) - 0.7).abs() < 1e-12);
        assert_eq!(c.support_radius(), Some(100.0));
        let open = TableCorrelation::new(vec![0.0, 100.0], vec![1.0, 0.2]).unwrap();
        assert_eq!(open.support_radius(), None);
        assert_eq!(open.rho(500.0), 0.2, "clamps to last value");
    }

    #[test]
    fn table_model_rejects_malformed() {
        assert!(TableCorrelation::new(vec![1.0, 2.0], vec![1.0, 0.0]).is_err());
        assert!(TableCorrelation::new(vec![0.0, 2.0], vec![0.9, 0.0]).is_err());
        assert!(TableCorrelation::new(vec![0.0, 2.0], vec![1.0, 1.5]).is_err());
    }

    #[test]
    fn constructors_reject_bad_scale() {
        assert!(ExponentialCorrelation::new(0.0).is_err());
        assert!(GaussianCorrelation::new(-1.0).is_err());
        assert!(TentCorrelation::new(f64::NAN).is_err());
        assert!(SphericalCorrelation::new(f64::INFINITY).is_err());
    }

    #[test]
    fn total_correlation_floor() {
        let wid = TentCorrelation::new(100.0).unwrap();
        let t = TotalCorrelation::new(wid, 0.4).unwrap();
        check_contract(&t);
        assert!((t.rho(0.0) - 1.0).abs() < 1e-12);
        assert!((t.rho(1e9) - 0.4).abs() < 1e-12);
        // halfway: 0.4 + 0.6*0.5 = 0.7
        assert!((t.rho(50.0) - 0.7).abs() < 1e-12);
        assert_eq!(t.support_radius(), None);
    }

    #[test]
    fn total_correlation_without_d2d_keeps_support() {
        let wid = TentCorrelation::new(100.0).unwrap();
        let t = TotalCorrelation::new(wid, 0.0).unwrap();
        assert_eq!(t.support_radius(), Some(100.0));
    }

    #[test]
    fn total_correlation_rejects_bad_fraction() {
        let wid = TentCorrelation::new(100.0).unwrap();
        assert!(TotalCorrelation::new(wid, 1.5).is_err());
    }

    #[test]
    fn reference_impl_forwards() {
        let c = TentCorrelation::new(10.0).unwrap();
        let r: &dyn SpatialCorrelation = &c;
        assert_eq!(r.rho(5.0), c.rho(5.0));
        let by_ref: &TentCorrelation = &c;
        assert_eq!(by_ref.support_radius(), Some(10.0));
    }
}
