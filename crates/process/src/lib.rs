//! Process-variation modeling for statistical leakage analysis.
//!
//! Variations are decomposed, following the paper (§2), into a die-to-die
//! (D2D) component shared by every device on a die and a within-die (WID)
//! component that varies across the die with a distance-dependent spatial
//! correlation:
//!
//! ```text
//! σ² = σ_dd² + σ_wd²
//! ρ_total(d) = (σ_dd² + σ_wd²·ρ_wid(d)) / (σ_dd² + σ_wd²)
//! ```
//!
//! The crate provides:
//!
//! * [`parameters`] — per-parameter variation budgets (channel length `L`,
//!   threshold voltage `Vt`) and their D2D/WID split;
//! * [`correlation`] — a family of spatial correlation models plus the
//!   D2D-aware total-correlation combinator;
//! * [`technology`] — a self-consistent 90 nm-class technology card used by
//!   the transistor-level leakage solver;
//! * [`field`] — correlated Gaussian random-field sampling on placement
//!   grids (Cholesky for small grids, FFT circulant embedding for large).
//!
//! # Example
//!
//! ```
//! use leakage_process::correlation::{SpatialCorrelation, TentCorrelation, TotalCorrelation};
//!
//! let wid = TentCorrelation::new(200.0).unwrap();      // ρ → 0 at 200 µm
//! let total = TotalCorrelation::new(wid, 0.5).unwrap(); // 50 % D2D variance
//! assert_eq!(total.rho(0.0), 1.0);
//! assert!((total.rho(1e9) - 0.5).abs() < 1e-12);        // floor at ρ_C
//! ```

// `!(x > 0.0)`-style comparisons deliberately treat NaN as invalid input;
// rewriting them per clippy would silently accept NaN. Index-based loops in
// the math kernels mirror the paper's summation notation.
#![allow(clippy::neg_cmp_op_on_partial_ord, clippy::needless_range_loop)]

pub mod correlation;
pub mod error;
pub mod extraction;
pub mod field;
pub mod hierarchical;
pub mod parameters;
pub mod technology;

pub use correlation::{SpatialCorrelation, TotalCorrelation};
pub use error::ProcessError;
pub use parameters::ParameterVariation;
pub use technology::Technology;
