//! Error type for process-model construction and sampling.

use std::fmt;

/// Errors arising while building process models or sampling fields.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessError {
    /// A model parameter was out of its valid domain.
    InvalidParameter {
        /// Description of the violated constraint.
        reason: String,
    },
    /// An underlying numerical routine failed.
    Numeric(leakage_numeric::NumericError),
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::InvalidParameter { reason } => {
                write!(f, "invalid process parameter: {reason}")
            }
            ProcessError::Numeric(e) => write!(f, "numeric failure: {e}"),
        }
    }
}

impl std::error::Error for ProcessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProcessError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<leakage_numeric::NumericError> for ProcessError {
    fn from(e: leakage_numeric::NumericError) -> ProcessError {
        ProcessError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ProcessError::InvalidParameter {
            reason: "sigma must be non-negative".into(),
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.source().is_none());

        let n = ProcessError::Numeric(leakage_numeric::NumericError::Singular { pivot: 0 });
        assert!(n.source().is_some());
    }
}
