//! A self-consistent technology card for a 90 nm-class CMOS process.
//!
//! The paper characterizes a commercial 90 nm library; we cannot ship that,
//! so this card carries the physical constants and variation magnitudes a
//! BSIM-lite subthreshold model needs to reproduce the same *behaviour*:
//! exponential leakage dependence on channel length (through Vt roll-off
//! and DIBL), the stack effect, and σ_L/L of a few percent split between
//! D2D and WID components.

use crate::error::ProcessError;
use crate::parameters::ParameterVariation;
use serde::{Deserialize, Serialize};

/// Boltzmann constant over elementary charge, V/K.
const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Device-type-specific subthreshold model parameters.
///
/// All voltages in volts; `i0` is the subthreshold current scale in amperes
/// per micron of width at `Vgs = Vth`, `L = L_nominal`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Zero-bias threshold voltage magnitude at nominal L (V).
    pub vth0: f64,
    /// DIBL coefficient (V of Vth reduction per V of |Vds|).
    pub dibl: f64,
    /// Subthreshold slope ideality factor `n` (swing = n·VT·ln10).
    pub n_factor: f64,
    /// Current scale at threshold (A/µm of width).
    pub i0_per_um: f64,
    /// Vt roll-off sensitivity: d|Vth|/dL (V per nm), negative length
    /// deltas *increase* leakage. Typical short-channel value ~ 2 mV/nm.
    pub vth_rolloff_per_nm: f64,
    /// Body-effect linearized coefficient (V of Vth increase per V of
    /// source-body reverse bias) — drives the stack effect.
    pub body_effect: f64,
    /// Gate-tunneling current density scale (A per µm of width per nm of
    /// length) at `|V_gs| = VDD`. Zero disables the mechanism (the
    /// paper's scope is subthreshold only).
    pub gate_j0: f64,
    /// Gate-tunneling exponential slope (1/V of |V_gs| below VDD).
    pub gate_beta: f64,
}

/// Technology card: supply, temperature, and variation budgets.
///
/// # Example
///
/// ```
/// use leakage_process::Technology;
///
/// let t = Technology::cmos90();
/// assert!((t.thermal_voltage() - 0.02585).abs() < 1e-4);
/// assert!(t.l_variation().relative_sigma() < 0.10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    name: String,
    vdd: f64,
    temperature: f64,
    l_variation: ParameterVariation,
    vt_sigma: f64,
    nmos: DeviceParams,
    pmos: DeviceParams,
}

impl Technology {
    /// A representative 90 nm-class card.
    ///
    /// * `VDD` 1.2 V, 300 K;
    /// * drawn channel length 90 nm with σ_L ≈ 5 % split evenly between
    ///   D2D and WID (σ_dd = σ_wd = 3.2 nm);
    /// * RDF threshold-voltage sigma 20 mV (independent per device);
    /// * NMOS/PMOS subthreshold parameters giving inverter leakage in the
    ///   nA range with a 5–10× stack-effect ratio.
    pub fn cmos90() -> Technology {
        Technology {
            name: "generic-cmos90".to_owned(),
            vdd: 1.2,
            temperature: 300.0,
            l_variation: ParameterVariation::new(90.0, 3.2, 3.2)
                // chipleak-lint: allow(l5): compile-time constants satisfy the validator
                .expect("static parameters are valid"),
            vt_sigma: 0.020,
            nmos: DeviceParams {
                vth0: 0.23,
                dibl: 0.08,
                n_factor: 1.5,
                i0_per_um: 3.0e-7,
                vth_rolloff_per_nm: 0.0022,
                body_effect: 0.18,
                gate_j0: 0.0,
                gate_beta: 0.0,
            },
            pmos: DeviceParams {
                vth0: 0.25,
                dibl: 0.07,
                n_factor: 1.5,
                i0_per_um: 1.2e-7,
                vth_rolloff_per_nm: 0.0020,
                body_effect: 0.16,
                gate_j0: 0.0,
                gate_beta: 0.0,
            },
        }
    }

    /// A representative 65 nm-class card: the next node down, with a
    /// lower supply, a larger *relative* channel-length spread and a
    /// larger WID share — the scaling trends that made statistical
    /// leakage analysis urgent. Useful for cross-node comparisons.
    pub fn cmos65() -> Technology {
        Technology {
            name: "generic-cmos65".to_owned(),
            vdd: 1.0,
            temperature: 300.0,
            // σ_L/L ≈ 6 %, with WID the larger share at this node.
            l_variation: ParameterVariation::new(65.0, 2.3, 3.2)
                // chipleak-lint: allow(l5): compile-time constants satisfy the validator
                .expect("static parameters are valid"),
            vt_sigma: 0.028,
            nmos: DeviceParams {
                vth0: 0.20,
                dibl: 0.10,
                n_factor: 1.5,
                i0_per_um: 6.0e-7,
                vth_rolloff_per_nm: 0.0030,
                body_effect: 0.17,
                gate_j0: 0.0,
                gate_beta: 0.0,
            },
            pmos: DeviceParams {
                vth0: 0.22,
                dibl: 0.09,
                n_factor: 1.5,
                i0_per_um: 2.5e-7,
                vth_rolloff_per_nm: 0.0027,
                body_effect: 0.15,
                gate_j0: 0.0,
                gate_beta: 0.0,
            },
        }
    }

    /// The 90 nm card with gate-tunneling leakage enabled — an extension
    /// beyond the paper's subthreshold-only scope, used to stress the
    /// fitted `a·exp(bL+cL²)` form with a second, nearly L-independent
    /// mechanism. At nominal corners the on-state gate leakage of an
    /// inverter is roughly a quarter of its off-state subthreshold
    /// leakage, the usual 90 nm ballpark.
    pub fn cmos90_with_gate_leakage() -> Technology {
        let mut t = Technology::cmos90();
        t.name = "generic-cmos90-gl".to_owned();
        t.nmos.gate_j0 = 8.0e-12; // A/(µm·nm) at full bias
        t.nmos.gate_beta = 6.0;
        t.pmos.gate_j0 = 1.5e-12; // PMOS tunneling is ~5x weaker
        t.pmos.gate_beta = 6.0;
        t
    }

    /// Builder-style override of the channel-length variation budget.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if the budget's nominal
    /// is not positive.
    pub fn with_l_variation(mut self, v: ParameterVariation) -> Result<Technology, ProcessError> {
        if !(v.nominal() > 0.0) {
            return Err(ProcessError::InvalidParameter {
                reason: "nominal channel length must be positive".into(),
            });
        }
        self.l_variation = v;
        Ok(self)
    }

    /// Builder-style override of the RDF threshold-voltage sigma (V).
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for a negative sigma.
    pub fn with_vt_sigma(mut self, sigma: f64) -> Result<Technology, ProcessError> {
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("vt sigma must be finite and >= 0, got {sigma}"),
            });
        }
        self.vt_sigma = sigma;
        Ok(self)
    }

    /// Builder-style override of the junction temperature (K). Leakage is
    /// strongly temperature-sensitive through both the thermal voltage and
    /// the threshold roll-down (`dV_th/dT ≈ −0.8 mV/K`, applied to both
    /// device types); this is the knob for re-characterizing a library at
    /// a hot corner.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for a non-positive or
    /// implausible (> 500 K) temperature.
    pub fn with_temperature(mut self, kelvin: f64) -> Result<Technology, ProcessError> {
        if !(kelvin > 0.0 && kelvin <= 500.0) {
            return Err(ProcessError::InvalidParameter {
                reason: format!("temperature must be in (0, 500] K, got {kelvin}"),
            });
        }
        /// Threshold-voltage temperature coefficient (V/K).
        const VTH_TEMPCO: f64 = -8.0e-4;
        let delta = VTH_TEMPCO * (kelvin - self.temperature);
        self.nmos.vth0 = (self.nmos.vth0 + delta).max(0.05);
        self.pmos.vth0 = (self.pmos.vth0 + delta).max(0.05);
        self.temperature = kelvin;
        Ok(self)
    }

    /// Technology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Junction temperature (K).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Thermal voltage `kT/q` (V).
    pub fn thermal_voltage(&self) -> f64 {
        K_OVER_Q * self.temperature
    }

    /// Channel-length variation budget (nm).
    pub fn l_variation(&self) -> ParameterVariation {
        self.l_variation
    }

    /// RDF threshold-voltage standard deviation (V), independent across
    /// devices.
    pub fn vt_sigma(&self) -> f64 {
        self.vt_sigma
    }

    /// NMOS subthreshold parameters.
    pub fn nmos(&self) -> DeviceParams {
        self.nmos
    }

    /// PMOS subthreshold parameters.
    pub fn pmos(&self) -> DeviceParams {
        self.pmos
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology::cmos90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos90_is_self_consistent() {
        let t = Technology::cmos90();
        assert!(t.vdd() > 0.0);
        assert!(t.thermal_voltage() > 0.02 && t.thermal_voltage() < 0.03);
        assert!(t.l_variation().nominal() == 90.0);
        assert!(t.l_variation().relative_sigma() > 0.01);
        assert!(t.nmos().vth0 > 0.0 && t.pmos().vth0 > 0.0);
        assert!(t.nmos().i0_per_um > t.pmos().i0_per_um, "nmos leaks more");
    }

    #[test]
    fn default_is_cmos90() {
        assert_eq!(Technology::default(), Technology::cmos90());
    }

    #[test]
    fn builder_overrides() {
        let v = ParameterVariation::new(90.0, 4.0, 2.0).unwrap();
        let t = Technology::cmos90().with_l_variation(v).unwrap();
        assert_eq!(t.l_variation(), v);
        let t = t.with_vt_sigma(0.03).unwrap();
        assert_eq!(t.vt_sigma(), 0.03);
    }

    #[test]
    fn builder_rejects_bad_values() {
        let v = ParameterVariation::new(0.0, 1.0, 1.0).unwrap();
        assert!(Technology::cmos90().with_l_variation(v).is_err());
        assert!(Technology::cmos90().with_vt_sigma(-0.1).is_err());
        assert!(Technology::cmos90().with_vt_sigma(f64::NAN).is_err());
    }

    #[test]
    fn thermal_voltage_scales_with_temperature() {
        let t = Technology::cmos90();
        let vt300 = t.thermal_voltage();
        assert!((vt300 - 8.617_333_262e-5 * 300.0).abs() < 1e-12);
        let hot = t.with_temperature(398.0).unwrap();
        assert!((hot.thermal_voltage() / vt300 - 398.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn temperature_override_validation() {
        assert!(Technology::cmos90().with_temperature(0.0).is_err());
        assert!(Technology::cmos90().with_temperature(-10.0).is_err());
        assert!(Technology::cmos90().with_temperature(900.0).is_err());
        assert!(Technology::cmos90().with_temperature(398.0).is_ok());
    }

    #[test]
    fn cmos65_scales_as_expected() {
        let n90 = Technology::cmos90();
        let n65 = Technology::cmos65();
        assert!(n65.vdd() < n90.vdd());
        assert!(n65.l_variation().nominal() < n90.l_variation().nominal());
        assert!(
            n65.l_variation().relative_sigma() > n90.l_variation().relative_sigma(),
            "relative spread grows with scaling"
        );
        assert!(
            n65.l_variation().d2d_variance_fraction() < n90.l_variation().d2d_variance_fraction(),
            "WID share grows with scaling"
        );
        assert!(n65.nmos().vth0 < n90.nmos().vth0, "thresholds drop");
        assert!(n65.vt_sigma() > n90.vt_sigma(), "RDF worsens");
    }

    #[test]
    fn hot_corner_lowers_threshold() {
        let cold = Technology::cmos90();
        let hot = cold.clone().with_temperature(398.0).unwrap();
        assert!(hot.nmos().vth0 < cold.nmos().vth0);
        assert!(hot.pmos().vth0 < cold.pmos().vth0);
        // ~0.8 mV/K over 98 K ≈ 78 mV
        assert!((cold.nmos().vth0 - hot.nmos().vth0 - 0.0784).abs() < 1e-9);
        // round-tripping back restores the threshold
        let back = hot.with_temperature(300.0).unwrap();
        assert!((back.nmos().vth0 - cold.nmos().vth0).abs() < 1e-12);
    }
}
