//! Hierarchical (quadtree) within-die correlation — the alternative WID
//! model used by the late-mode competitors the paper compares against
//! (Chang & Sapatnekar DAC'05 — the paper's ref 3 — and Agarwal et al. ICCAD'05, ref 4).
//!
//! The die is recursively partitioned into quadrants for `levels` levels;
//! each region at each level carries an independent Gaussian component
//! with a per-level variance share. Two locations correlate by the summed
//! shares of the regions they *both* fall in:
//!
//! ```text
//! ρ(p, q) = Σ_{levels ℓ where p, q share a region} w_ℓ
//! ```
//!
//! Unlike the distance-based models in [`crate::correlation`], this is
//! *not* isotropic: two points straddling a top-level quadrant boundary
//! decorrelate abruptly however close they are. The Random Gate
//! estimators assume isotropy, so [`QuadtreeCorrelation::isotropic_table`]
//! provides the distance-averaged approximation — and the
//! `quadtree_ablation` experiment measures what that approximation costs.

use crate::correlation::TableCorrelation;
use crate::error::ProcessError;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

/// Quadtree correlation model over a `width × height` die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadtreeCorrelation {
    width: f64,
    height: f64,
    /// Per-level variance shares, level 0 = whole die; sums to ≤ 1; any
    /// remainder is the purely independent per-site share.
    weights: Vec<f64>,
}

impl QuadtreeCorrelation {
    /// Creates the model.
    ///
    /// `weights[ℓ]` is the variance share of level `ℓ` (level 0 covers
    /// the whole die — within-die-wise it acts like a D2D share). The
    /// remainder `1 − Σw` is independent per location.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for non-positive die
    /// dimensions, empty/negative weights, or shares summing above 1.
    pub fn new(width: f64, height: f64, weights: Vec<f64>) -> Result<Self, ProcessError> {
        if !(width > 0.0 && height > 0.0) {
            return Err(ProcessError::InvalidParameter {
                reason: format!("die dimensions must be positive, got {width} x {height}"),
            });
        }
        if weights.is_empty() {
            return Err(ProcessError::InvalidParameter {
                reason: "need at least one level".into(),
            });
        }
        if weights.iter().any(|w| !(*w >= 0.0) || !w.is_finite()) {
            return Err(ProcessError::InvalidParameter {
                reason: "level weights must be finite and non-negative".into(),
            });
        }
        let total: f64 = weights.iter().sum();
        if total > 1.0 + 1e-12 {
            return Err(ProcessError::InvalidParameter {
                reason: format!("level weights sum to {total} > 1"),
            });
        }
        Ok(QuadtreeCorrelation {
            width,
            height,
            weights,
        })
    }

    /// A common 4-level split: 40 % whole-die, then 30/20/10 % on finer
    /// quadrants (no independent remainder).
    ///
    /// # Errors
    ///
    /// Propagates dimension validation.
    pub fn standard(width: f64, height: f64) -> Result<Self, ProcessError> {
        QuadtreeCorrelation::new(width, height, vec![0.4, 0.3, 0.2, 0.1])
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.weights.len()
    }

    /// Die width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Die height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Region index of a point at a level (row-major over the `2^ℓ × 2^ℓ`
    /// grid of that level). Points outside the die clamp to the border.
    fn region(&self, level: usize, x: f64, y: f64) -> usize {
        let divs = 1usize << level;
        let cx = ((x / self.width * divs as f64) as usize).min(divs - 1);
        let cy = ((y / self.height * divs as f64) as usize).min(divs - 1);
        cy * divs + cx
    }

    /// Correlation between two locations (position-dependent!).
    pub fn rho_between(&self, p: (f64, f64), q: (f64, f64)) -> f64 {
        let mut rho = 0.0;
        for (level, w) in self.weights.iter().enumerate() {
            if self.region(level, p.0, p.1) == self.region(level, q.0, q.1) {
                rho += w;
            } else {
                break; // regions nest: once split, all finer levels split
            }
        }
        rho
    }

    /// Samples one field over arbitrary site positions (unit variance).
    pub fn sample_field<R: Rng + ?Sized>(&self, sites: &[(f64, f64)], rng: &mut R) -> Vec<f64> {
        // Per-level, per-region independent components.
        let mut field = vec![0.0; sites.len()];
        for (level, w) in self.weights.iter().enumerate() {
            if *w == 0.0 {
                continue;
            }
            let divs = 1usize << level;
            let mut values = vec![f64::NAN; divs * divs];
            let scale = w.sqrt();
            for (i, site) in sites.iter().enumerate() {
                let r = self.region(level, site.0, site.1);
                debug_assert!(
                    r < values.len(),
                    "region() clamps into the divs x divs grid"
                );
                if values[r].is_nan() {
                    let z: f64 = StandardNormal.sample(rng);
                    values[r] = z * scale;
                }
                field[i] += values[r];
            }
        }
        let independent = (1.0 - self.weights.iter().sum::<f64>()).max(0.0);
        if independent > 0.0 {
            let scale = independent.sqrt();
            for f in field.iter_mut() {
                let z: f64 = StandardNormal.sample(rng);
                *f += z * scale;
            }
        }
        field
    }

    /// Distance-averaged isotropic approximation: for each distance bin,
    /// averages `rho_between` over random same-distance point pairs inside
    /// the die, then extracts a valid monotone table model.
    ///
    /// # Errors
    ///
    /// Propagates extraction failures (cannot occur for valid bins).
    pub fn isotropic_table<R: Rng + ?Sized>(
        &self,
        bins: usize,
        pairs_per_bin: usize,
        rng: &mut R,
    ) -> Result<TableCorrelation, ProcessError> {
        if bins < 2 || pairs_per_bin == 0 {
            return Err(ProcessError::InvalidParameter {
                reason: "need at least two bins and one pair per bin".into(),
            });
        }
        let d_max = self.width.min(self.height);
        let mut samples = Vec::with_capacity(bins);
        for b in 1..=bins {
            let d = d_max * b as f64 / bins as f64;
            let mut acc = 0.0;
            let mut count = 0usize;
            while count < pairs_per_bin {
                let x1 = rng.gen_range(0.0..self.width);
                let y1 = rng.gen_range(0.0..self.height);
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                let x2 = x1 + d * theta.cos();
                let y2 = y1 + d * theta.sin();
                if !(0.0..=self.width).contains(&x2) || !(0.0..=self.height).contains(&y2) {
                    continue;
                }
                acc += self.rho_between((x1, y1), (x2, y2));
                count += 1;
            }
            samples.push(crate::extraction::CorrelationSample {
                distance: d,
                correlation: acc / pairs_per_bin as f64,
                count: pairs_per_bin as u64,
            });
        }
        crate::extraction::extract_correlation(
            &samples,
            crate::extraction::ExtractionOptions::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::SpatialCorrelation;
    use leakage_numeric::stats::pearson_correlation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> QuadtreeCorrelation {
        QuadtreeCorrelation::standard(128.0, 128.0).unwrap()
    }

    #[test]
    fn same_point_full_correlation() {
        let m = model();
        assert!((m.rho_between((10.0, 10.0), (10.0, 10.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_region_shares() {
        let m = model();
        // Same finest cell (die/8 = 16): full share.
        let full = m.rho_between((1.0, 1.0), (2.0, 2.0));
        assert!((full - 1.0).abs() < 1e-12);
        // Opposite corners: only the level-0 share.
        let far = m.rho_between((1.0, 1.0), (127.0, 127.0));
        assert!((far - 0.4).abs() < 1e-12);
        // Same quadrant, different sub-quadrant: 0.4 + 0.3.
        let mid = m.rho_between((1.0, 1.0), (60.0, 60.0));
        assert!((mid - 0.7).abs() < 1e-12);
    }

    #[test]
    fn anisotropy_at_boundaries() {
        let m = model();
        // Two points 2 µm apart straddling the die midline decorrelate to
        // the level-0 share only — the model's defining non-isotropy.
        let straddle = m.rho_between((63.0, 10.0), (65.0, 10.0));
        assert!((straddle - 0.4).abs() < 1e-12);
        let inside = m.rho_between((60.0, 10.0), (62.0, 10.0));
        assert!((inside - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constructor_validation() {
        assert!(QuadtreeCorrelation::new(0.0, 1.0, vec![0.5]).is_err());
        assert!(QuadtreeCorrelation::new(1.0, 1.0, vec![]).is_err());
        assert!(QuadtreeCorrelation::new(1.0, 1.0, vec![-0.1]).is_err());
        assert!(QuadtreeCorrelation::new(1.0, 1.0, vec![0.7, 0.7]).is_err());
        // partial sum < 1 leaves an independent remainder: valid
        assert!(QuadtreeCorrelation::new(1.0, 1.0, vec![0.5, 0.2]).is_ok());
    }

    #[test]
    fn sampled_field_matches_model_correlation() {
        let m = model();
        let sites = [(10.0, 10.0), (20.0, 20.0), (120.0, 120.0)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for _ in 0..20_000 {
            let f = m.sample_field(&sites, &mut rng);
            a.push(f[0]);
            b.push(f[1]);
            c.push(f[2]);
        }
        let var_a = leakage_numeric::stats::sample_variance(&a);
        assert!((var_a - 1.0).abs() < 0.05, "unit variance, got {var_a}");
        let near = pearson_correlation(&a, &b);
        assert!((near - m.rho_between(sites[0], sites[1])).abs() < 0.03);
        let far = pearson_correlation(&a, &c);
        assert!((far - m.rho_between(sites[0], sites[2])).abs() < 0.03);
    }

    #[test]
    fn sampled_field_with_independent_remainder() {
        let m = QuadtreeCorrelation::new(100.0, 100.0, vec![0.3]).unwrap();
        let sites = [(10.0, 10.0), (90.0, 90.0)];
        let mut rng = StdRng::seed_from_u64(6);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..20_000 {
            let f = m.sample_field(&sites, &mut rng);
            a.push(f[0]);
            b.push(f[1]);
        }
        let rho = pearson_correlation(&a, &b);
        assert!((rho - 0.3).abs() < 0.03, "rho {rho}");
        let var = leakage_numeric::stats::sample_variance(&a);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn isotropic_table_is_valid_and_decreasing() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(7);
        let table = m.isotropic_table(16, 400, &mut rng).unwrap();
        assert_eq!(table.rho(0.0), 1.0);
        let mut prev = 1.0;
        for b in 1..=16 {
            let d = 128.0 * b as f64 / 16.0;
            let r = table.rho(d);
            assert!(r <= prev + 1e-12, "monotone at {d}");
            assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
        // Long range approaches the level-0 share.
        assert!((table.rho(120.0) - 0.4).abs() < 0.1);
    }

    #[test]
    fn isotropic_table_rejects_degenerate_request() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(8);
        assert!(m.isotropic_table(1, 10, &mut rng).is_err());
        assert!(m.isotropic_table(4, 0, &mut rng).is_err());
    }
}
