//! Correlated Gaussian random-field sampling on placement grids.
//!
//! The Monte-Carlo cross-checks need samples of the within-die channel
//! length field over the `k × m` site grid with the prescribed spatial
//! correlation. Two backends:
//!
//! * [`CholeskyFieldSampler`] — exact, `O(n³)` setup; fine up to a few
//!   thousand sites. Applies escalating diagonal jitter when the sampled
//!   covariance (e.g. a tent function, which is not guaranteed positive
//!   definite on a 2-D grid) is numerically indefinite.
//! * [`CirculantFieldSampler`] — FFT circulant embedding on a doubled
//!   torus; `O(N log N)` and exact when the embedding is non-negative,
//!   otherwise clips negative eigenvalues and reports the clipped mass.

use crate::correlation::SpatialCorrelation;
use crate::error::ProcessError;
use leakage_numeric::fft::{
    fft2d_instrumented, fft2d_with, ifft2d, next_pow2, Complex, Fft2dPlan, FftPlanCache,
};
use leakage_numeric::matrix::{Cholesky, Matrix};
use leakage_numeric::parallel::Parallelism;
use leakage_numeric::Instruments;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Geometry of the rectangular site grid (paper Fig. 4): `rows × cols`
/// sites at pitch `(pitch_x, pitch_y)`; the die is `W = cols·pitch_x` by
/// `H = rows·pitch_y`.
///
/// # Example
///
/// ```
/// use leakage_process::field::GridGeometry;
///
/// let g = GridGeometry::new(10, 20, 2.0, 3.0).unwrap();
/// assert_eq!(g.n_sites(), 200);
/// assert_eq!(g.width(), 40.0);
/// assert_eq!(g.height(), 30.0);
/// assert!((g.offset_distance(3, 4) - (6.0f64*6.0 + 12.0*12.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridGeometry {
    rows: usize,
    cols: usize,
    pitch_x: f64,
    pitch_y: f64,
}

impl GridGeometry {
    /// Creates a grid with `rows × cols` sites and the given pitches.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for zero dimensions or
    /// non-positive pitches.
    pub fn new(rows: usize, cols: usize, pitch_x: f64, pitch_y: f64) -> Result<Self, ProcessError> {
        if rows == 0 || cols == 0 {
            return Err(ProcessError::InvalidParameter {
                reason: "grid must have at least one row and column".into(),
            });
        }
        if !(pitch_x > 0.0) || !(pitch_y > 0.0) || !pitch_x.is_finite() || !pitch_y.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("pitches must be positive and finite, got ({pitch_x}, {pitch_y})"),
            });
        }
        Ok(GridGeometry {
            rows,
            cols,
            pitch_x,
            pitch_y,
        })
    }

    /// Creates the most-square grid holding at least `n` sites inside a
    /// `width × height` die: `cols ≈ width/√(area/n)`. Used when mapping a
    /// gate count and die dimensions to the RG array.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for `n == 0` or
    /// non-positive dimensions.
    pub fn for_die(n: usize, width: f64, height: f64) -> Result<Self, ProcessError> {
        if n == 0 {
            return Err(ProcessError::InvalidParameter {
                reason: "site count must be positive".into(),
            });
        }
        if !(width > 0.0 && height > 0.0) {
            return Err(ProcessError::InvalidParameter {
                reason: format!("die dimensions must be positive, got {width} x {height}"),
            });
        }
        // Pick cols/rows so sites are near-square and rows*cols >= n.
        let aspect = width / height;
        let cols = ((n as f64 * aspect).sqrt().round() as usize).max(1);
        let rows = n.div_ceil(cols);
        GridGeometry::new(rows, cols, width / cols as f64, height / rows as f64)
    }

    /// Number of site rows (`k` in the paper).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of site columns (`m` in the paper).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Horizontal site pitch (`ΔW`).
    pub fn pitch_x(&self) -> f64 {
        self.pitch_x
    }

    /// Vertical site pitch (`ΔH`).
    pub fn pitch_y(&self) -> f64 {
        self.pitch_y
    }

    /// Total number of sites `n = rows·cols`.
    pub fn n_sites(&self) -> usize {
        self.rows * self.cols
    }

    /// Die width `W = cols·ΔW`.
    pub fn width(&self) -> f64 {
        self.cols as f64 * self.pitch_x
    }

    /// Die height `H = rows·ΔH`.
    pub fn height(&self) -> f64 {
        self.rows as f64 * self.pitch_y
    }

    /// Die area `W·H`.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre-to-centre distance for an index offset `(di, dj)` =
    /// (column difference, row difference): `√((di·ΔW)² + (dj·ΔH)²)`.
    pub fn offset_distance(&self, di: i64, dj: i64) -> f64 {
        let dx = di as f64 * self.pitch_x;
        let dy = dj as f64 * self.pitch_y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Distance between two sites given as `(row, col)` pairs.
    pub fn site_distance(&self, a: (usize, usize), b: (usize, usize)) -> f64 {
        self.offset_distance(b.1 as i64 - a.1 as i64, b.0 as i64 - a.0 as i64)
    }

    /// Coordinates of a site centre.
    pub fn site_center(&self, row: usize, col: usize) -> (f64, f64) {
        (
            (col as f64 + 0.5) * self.pitch_x,
            (row as f64 + 0.5) * self.pitch_y,
        )
    }
}

/// A sampler of zero-mean correlated Gaussian fields over a grid.
pub trait FieldSampler: std::fmt::Debug {
    /// Grid geometry the sampler was built for.
    fn geometry(&self) -> GridGeometry;

    /// Draws one zero-mean field sample, row-major, length `n_sites()`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64>
    where
        Self: Sized;
}

/// Exact Cholesky-based sampler (small grids).
#[derive(Debug)]
pub struct CholeskyFieldSampler {
    geometry: GridGeometry,
    factor: Cholesky,
    jitter: f64,
}

impl CholeskyFieldSampler {
    /// Builds the sampler for `sigma²·ρ(d)` over the grid.
    ///
    /// Tent-like correlation functions are not always positive definite on
    /// a 2-D grid; escalating relative diagonal jitter (up to `1e-6`) is
    /// applied if the plain factorization fails.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for `sigma < 0`, and a
    /// numeric error if even the jittered matrix fails to factor.
    pub fn new<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
    ) -> Result<Self, ProcessError> {
        CholeskyFieldSampler::new_with(geometry, corr, sigma, Parallelism::auto())
    }

    /// [`CholeskyFieldSampler::new`] with an explicit thread budget for the
    /// O(n²) covariance assembly. Each worker fills whole matrix rows
    /// (disjoint slices; `ρ(d)` is evaluated per entry rather than mirrored
    /// across the diagonal, which costs twice the arithmetic but no shared
    /// writes), so the matrix is identical for every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`CholeskyFieldSampler::new`].
    pub fn new_with<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
        par: Parallelism,
    ) -> Result<Self, ProcessError> {
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("sigma must be finite and >= 0, got {sigma}"),
            });
        }
        let n = geometry.n_sites();
        let var = sigma * sigma;
        let mut cov = Matrix::zeros(n, n);
        par.for_each_chunk_mut(cov.as_mut_slice(), n, |a, row| {
            let (ra, ca) = (a / geometry.cols(), a % geometry.cols());
            for (b, slot) in row.iter_mut().enumerate() {
                let (rb, cb) = (b / geometry.cols(), b % geometry.cols());
                let d = geometry.site_distance((ra, ca), (rb, cb));
                *slot = var * corr.rho(d);
            }
        });
        let mut jitter = 0.0;
        let mut attempt = cov.cholesky();
        let mut rel = 1e-12;
        while attempt.is_err() && rel <= 1e-6 {
            jitter = rel * var.max(1e-300);
            let mut jittered = cov.clone();
            for i in 0..n {
                jittered[(i, i)] += jitter;
            }
            attempt = jittered.cholesky();
            rel *= 100.0;
        }
        let factor = attempt.map_err(ProcessError::from)?;
        Ok(CholeskyFieldSampler {
            geometry,
            factor,
            jitter,
        })
    }

    /// Diagonal jitter that had to be added (0 when none was needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }
}

impl FieldSampler for CholeskyFieldSampler {
    fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let n = self.geometry.n_sites();
        let white: Vec<f64> = (0..n).map(|_| StandardNormal.sample(rng)).collect();
        self.factor.mul_factor(&white)
    }
}

/// FFT circulant-embedding sampler (large grids).
///
/// Embeds the stationary covariance on a `P × Q` torus (doubled and padded
/// to powers of two) and samples by colouring complex white noise with the
/// square root of the (non-negative) eigenvalue field.
#[derive(Debug)]
pub struct CirculantFieldSampler {
    geometry: GridGeometry,
    torus_rows: usize,
    torus_cols: usize,
    /// √(λ/(P·Q)) per torus frequency.
    sqrt_scaled_eigs: Vec<f64>,
    clipped_fraction: f64,
    /// Precomputed colouring-FFT plan for the torus shape, built once at
    /// construction (optionally shared through an [`FftPlanCache`]) and
    /// reused by every draw.
    plan: Arc<Fft2dPlan>,
}

/// Reusable per-worker scratch for batched circulant draws
/// ([`CirculantFieldSampler::sample_two_into_with`]): the complex noise
/// buffer plus the FFT transpose scratch. Buffers grow on first use and are
/// reused afterwards, so steady-state draws allocate nothing.
#[derive(Debug, Default)]
pub struct FieldScratch {
    noise: Vec<Complex>,
    fft: Vec<Complex>,
}

impl FieldScratch {
    /// Creates empty scratch (buffers are sized lazily on first draw).
    pub fn new() -> FieldScratch {
        FieldScratch::default()
    }
}

impl CirculantFieldSampler {
    /// Builds the sampler for `sigma²·ρ(d)` over the grid.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for `sigma < 0`;
    /// propagates FFT shape errors (which cannot occur for the padded
    /// sizes chosen internally).
    pub fn new<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
    ) -> Result<Self, ProcessError> {
        CirculantFieldSampler::new_with(geometry, corr, sigma, Parallelism::auto())
    }

    /// [`CirculantFieldSampler::new`] with an explicit thread budget for
    /// kernel assembly and the embedding FFT. The spectrum is identical for
    /// every thread count.
    ///
    /// # Errors
    ///
    /// Same as [`CirculantFieldSampler::new`].
    pub fn new_with<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
        par: Parallelism,
    ) -> Result<Self, ProcessError> {
        CirculantFieldSampler::new_instrumented(geometry, corr, sigma, par, Instruments::none())
    }

    /// [`CirculantFieldSampler::new_with`] reporting to an injected
    /// [`Instruments`]: a span over the embedding build, the torus point
    /// count, and the clipped spectral-mass fraction as a value
    /// observation.
    ///
    /// # Errors
    ///
    /// Same as [`CirculantFieldSampler::new`].
    pub fn new_instrumented<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
        par: Parallelism,
        ins: Instruments<'_>,
    ) -> Result<Self, ProcessError> {
        CirculantFieldSampler::build(geometry, corr, sigma, par, ins, None)
    }

    /// [`CirculantFieldSampler::new_instrumented`] sharing the colouring-FFT
    /// plan through `cache`: samplers over the same torus shape (same grid
    /// dimensions after padding) reuse one plan instead of each computing
    /// its own twiddle/bit-reversal tables. Cache hits and misses are
    /// counted on `ins` (`numeric.fft.plan_cache.*`).
    ///
    /// # Errors
    ///
    /// Same as [`CirculantFieldSampler::new`].
    pub fn new_with_plan_cache<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
        par: Parallelism,
        cache: &FftPlanCache,
        ins: Instruments<'_>,
    ) -> Result<Self, ProcessError> {
        CirculantFieldSampler::build(geometry, corr, sigma, par, ins, Some(cache))
    }

    fn build<C: SpatialCorrelation>(
        geometry: GridGeometry,
        corr: &C,
        sigma: f64,
        par: Parallelism,
        ins: Instruments<'_>,
        plan_cache: Option<&FftPlanCache>,
    ) -> Result<Self, ProcessError> {
        let span = ins.span("process.circulant_build");
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("sigma must be finite and >= 0, got {sigma}"),
            });
        }
        let p = next_pow2(2 * geometry.rows());
        let q = next_pow2(2 * geometry.cols());
        let var = sigma * sigma;
        // Torus covariance kernel: distance wraps around. Workers fill
        // whole torus rows (disjoint slices).
        let mut kernel = vec![Complex::zero(); p * q];
        par.for_each_chunk_mut(&mut kernel, q, |r, row| {
            let wrap_r = r.min(p - r) as f64 * geometry.pitch_y();
            for (c, slot) in row.iter_mut().enumerate() {
                let wrap_c = c.min(q - c) as f64 * geometry.pitch_x();
                let d = (wrap_r * wrap_r + wrap_c * wrap_c).sqrt();
                *slot = Complex::new(var * corr.rho(d), 0.0);
            }
        });
        fft2d_instrumented(&mut kernel, p, q, par, ins)?;
        let mut clipped = 0.0;
        let mut total = 0.0;
        let scale = (p * q) as f64;
        let sqrt_scaled_eigs: Vec<f64> = kernel
            .iter()
            .map(|e| {
                total += e.re.abs();
                if e.re < 0.0 {
                    clipped += -e.re;
                    0.0
                } else {
                    (e.re / scale).sqrt()
                }
            })
            .collect();
        let clipped_fraction = if total > 0.0 { clipped / total } else { 0.0 };
        ins.add("process.circulant.torus_points", (p * q) as u64);
        ins.record("process.circulant.clipped_fraction", clipped_fraction);
        let plan = match plan_cache {
            Some(cache) => cache.plan_2d_instrumented(p, q, ins)?,
            None => Arc::new(Fft2dPlan::new(p, q)?),
        };
        drop(span);
        Ok(CirculantFieldSampler {
            geometry,
            torus_rows: p,
            torus_cols: q,
            sqrt_scaled_eigs,
            clipped_fraction,
            plan,
        })
    }

    /// Fraction of spectral mass that had to be clipped because the
    /// embedding was indefinite (0 for an exact embedding).
    pub fn clipped_fraction(&self) -> f64 {
        self.clipped_fraction
    }

    /// Draws **two** independent field samples for the price of one pair
    /// of FFTs (real and imaginary parts of the coloured noise).
    pub fn sample_two<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<f64>, Vec<f64>) {
        // Serial FFT: `sample_two` is typically called from already-parallel
        // Monte-Carlo workers, where nested spawning would oversubscribe.
        self.sample_two_with(rng, Parallelism::serial())
    }

    /// [`CirculantFieldSampler::sample_two`] with an explicit thread budget
    /// for the colouring FFT. The noise draw itself is sequential on `rng`,
    /// and the parallel FFT is bit-identical to the serial one, so the
    /// fields do not depend on the thread count.
    pub fn sample_two_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        par: Parallelism,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut scratch = FieldScratch::new();
        self.sample_two_into_with(rng, par, &mut a, &mut b, &mut scratch);
        (a, b)
    }

    /// Batched draw: fills `a` and `b` with two independent field samples,
    /// reusing the caller's output vectors and `scratch` so steady-state
    /// draws allocate nothing and the colouring FFT runs off the
    /// precomputed plan. Bit-identical to
    /// [`CirculantFieldSampler::sample_two`] for the same `rng` state.
    pub fn sample_two_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        a: &mut Vec<f64>,
        b: &mut Vec<f64>,
        scratch: &mut FieldScratch,
    ) {
        self.sample_two_into_with(rng, Parallelism::serial(), a, b, scratch)
    }

    /// [`CirculantFieldSampler::sample_two_into`] with an explicit thread
    /// budget for the colouring FFT.
    pub fn sample_two_into_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        par: Parallelism,
        a: &mut Vec<f64>,
        b: &mut Vec<f64>,
        scratch: &mut FieldScratch,
    ) {
        let q = self.torus_cols;
        scratch.noise.clear();
        scratch.noise.reserve(self.sqrt_scaled_eigs.len());
        for &s in &self.sqrt_scaled_eigs {
            let re: f64 = StandardNormal.sample(rng);
            let im: f64 = StandardNormal.sample(rng);
            scratch.noise.push(Complex::new(s * re, s * im));
        }
        // Forward unnormalized FFT colours the noise (see derivation in
        // module docs: real/imag parts are independent with covariance c).
        // Only the first `cols` torus columns are ever extracted below, so
        // the padding columns' transforms are pruned; kept columns are
        // bit-identical to the full transform.
        self.plan
            .forward_cols_scratch_with(
                &mut scratch.noise,
                &mut scratch.fft,
                par,
                self.geometry.cols(),
            )
            // chipleak-lint: allow(no-unwrap-in-library): the noise buffer was just filled to sqrt_scaled_eigs.len(), which equals the plan's torus size by construction
            .expect("noise buffer matches plan shape");
        let (rows, cols) = (self.geometry.rows(), self.geometry.cols());
        debug_assert!(
            scratch.noise.len() >= rows * q && cols <= q,
            "noise buffer spans the padded torus"
        );
        a.clear();
        b.clear();
        a.reserve(rows * cols);
        b.reserve(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = scratch.noise[r * q + c];
                a.push(v.re);
                b.push(v.im);
            }
        }
    }

    /// The legacy per-call draw: computes the FFT twiddle/bit-reversal
    /// tables inline and allocates fresh buffers on every call, exactly as
    /// the sampler did before plans existed. Kept as the honest baseline
    /// for the batched-sampler benchmark and as a bitwise cross-check of
    /// the planned path; produces the same bits as
    /// [`CirculantFieldSampler::sample_two_with`] for the same `rng` state.
    pub fn sample_two_unplanned_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        par: Parallelism,
    ) -> (Vec<f64>, Vec<f64>) {
        let (p, q) = (self.torus_rows, self.torus_cols);
        let mut buf: Vec<Complex> = self
            .sqrt_scaled_eigs
            .iter()
            .map(|&s| {
                let re: f64 = StandardNormal.sample(rng);
                let im: f64 = StandardNormal.sample(rng);
                Complex::new(s * re, s * im)
            })
            .collect();
        // chipleak-lint: allow(l5): torus dims are next_power_of_two by construction
        fft2d_with(&mut buf, p, q, par).expect("padded power-of-two dimensions");
        let (rows, cols) = (self.geometry.rows(), self.geometry.cols());
        let mut a = Vec::with_capacity(rows * cols);
        let mut b = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = buf[r * q + c];
                a.push(v.re);
                b.push(v.im);
            }
        }
        (a, b)
    }

    /// Reconstructs the effective (possibly clipped) covariance the
    /// sampler realizes at a given index offset — used in tests to verify
    /// the embedding.
    pub fn effective_covariance(&self, dr: usize, dc: usize) -> f64 {
        let (p, q) = (self.torus_rows, self.torus_cols);
        let mut eigs: Vec<Complex> = self
            .sqrt_scaled_eigs
            .iter()
            .map(|&s| Complex::new(s * s * (p * q) as f64, 0.0))
            .collect();
        // chipleak-lint: allow(l5): torus dims are next_power_of_two by construction
        ifft2d(&mut eigs, p, q).expect("padded power-of-two dimensions");
        eigs[(dr % p) * q + (dc % q)].re
    }
}

impl FieldSampler for CirculantFieldSampler {
    fn geometry(&self) -> GridGeometry {
        self.geometry
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.sample_two(rng).0
    }
}

/// Exact Cholesky sampler at *arbitrary* point locations (no grid).
///
/// Used when instances do not sit on a regular lattice and the
/// nearest-site approximation of the grid samplers is not wanted; cost is
/// `O(n³)` setup and `O(n²)` per draw, so it suits small designs and
/// validation runs.
#[derive(Debug)]
pub struct PointFieldSampler {
    points: Vec<(f64, f64)>,
    factor: Cholesky,
    jitter: f64,
}

impl PointFieldSampler {
    /// Builds the sampler for `sigma²·ρ(d)` over the given points.
    ///
    /// Escalating diagonal jitter (up to 1e-6 relative) is applied if the
    /// covariance is numerically indefinite, as with the grid sampler.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for an empty point set,
    /// non-finite coordinates, or `sigma < 0`; propagates factorization
    /// failure if even the jittered matrix is indefinite.
    pub fn new<C: SpatialCorrelation>(
        points: Vec<(f64, f64)>,
        corr: &C,
        sigma: f64,
    ) -> Result<Self, ProcessError> {
        PointFieldSampler::new_with(points, corr, sigma, Parallelism::auto())
    }

    /// [`PointFieldSampler::new`] with an explicit thread budget for the
    /// O(n²) covariance assembly (whole-row fills, as with
    /// [`CholeskyFieldSampler::new_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`PointFieldSampler::new`].
    pub fn new_with<C: SpatialCorrelation>(
        points: Vec<(f64, f64)>,
        corr: &C,
        sigma: f64,
        par: Parallelism,
    ) -> Result<Self, ProcessError> {
        if points.is_empty() {
            return Err(ProcessError::InvalidParameter {
                reason: "need at least one point".into(),
            });
        }
        if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(ProcessError::InvalidParameter {
                reason: "point coordinates must be finite".into(),
            });
        }
        if !(sigma >= 0.0) || !sigma.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("sigma must be finite and >= 0, got {sigma}"),
            });
        }
        let n = points.len();
        let var = sigma * sigma;
        let mut cov = Matrix::zeros(n, n);
        par.for_each_chunk_mut(cov.as_mut_slice(), n, |a, row| {
            for (b, slot) in row.iter_mut().enumerate() {
                let dx = points[a].0 - points[b].0;
                let dy = points[a].1 - points[b].1;
                *slot = var * corr.rho((dx * dx + dy * dy).sqrt());
            }
        });
        let mut jitter = 0.0;
        let mut attempt = cov.cholesky();
        let mut rel = 1e-12;
        while attempt.is_err() && rel <= 1e-6 {
            jitter = rel * var.max(1e-300);
            let mut jittered = cov.clone();
            for i in 0..n {
                jittered[(i, i)] += jitter;
            }
            attempt = jittered.cholesky();
            rel *= 100.0;
        }
        Ok(PointFieldSampler {
            points,
            factor: attempt?,
            jitter,
        })
    }

    /// The sampled point locations.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Diagonal jitter that had to be added (0 when none was needed).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Draws one zero-mean field sample, one value per point.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let n = self.points.len();
        let white: Vec<f64> = (0..n).map(|_| StandardNormal.sample(rng)).collect();
        self.factor.mul_factor(&white)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{ExponentialCorrelation, TentCorrelation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_geometry_basics() {
        let g = GridGeometry::new(4, 6, 1.5, 2.0).unwrap();
        assert_eq!(g.n_sites(), 24);
        assert_eq!(g.width(), 9.0);
        assert_eq!(g.height(), 8.0);
        assert_eq!(g.area(), 72.0);
        assert_eq!(g.offset_distance(0, 0), 0.0);
        assert!((g.offset_distance(1, 0) - 1.5).abs() < 1e-15);
        assert!((g.offset_distance(0, 1) - 2.0).abs() < 1e-15);
        assert_eq!(g.site_distance((0, 0), (3, 4)), g.offset_distance(4, 3));
    }

    #[test]
    fn grid_geometry_rejects_bad() {
        assert!(GridGeometry::new(0, 5, 1.0, 1.0).is_err());
        assert!(GridGeometry::new(5, 0, 1.0, 1.0).is_err());
        assert!(GridGeometry::new(5, 5, 0.0, 1.0).is_err());
        assert!(GridGeometry::new(5, 5, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn for_die_matches_count_and_dims() {
        let g = GridGeometry::for_die(1000, 500.0, 500.0).unwrap();
        assert!(g.n_sites() >= 1000);
        assert!((g.width() - 500.0).abs() < 1e-9);
        assert!((g.height() - 500.0).abs() < 1e-9);
        // near square sites
        assert!((g.pitch_x() / g.pitch_y() - 1.0).abs() < 0.2);
        assert!(GridGeometry::for_die(0, 1.0, 1.0).is_err());
        assert!(GridGeometry::for_die(10, -1.0, 1.0).is_err());
    }

    #[test]
    fn for_die_respects_aspect() {
        let g = GridGeometry::for_die(1000, 1000.0, 250.0).unwrap();
        assert!(g.cols() > g.rows(), "wide die gets more columns");
    }

    #[test]
    fn site_center_in_bounds() {
        let g = GridGeometry::new(2, 2, 1.0, 1.0).unwrap();
        let (x, y) = g.site_center(1, 1);
        assert_eq!((x, y), (1.5, 1.5));
    }

    #[test]
    fn cholesky_sampler_reproduces_variance_and_correlation() {
        let g = GridGeometry::new(4, 4, 10.0, 10.0).unwrap();
        let corr = ExponentialCorrelation::new(20.0).unwrap();
        let s = CholeskyFieldSampler::new(g, &corr, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n_draws = 20_000;
        let mut v00 = Vec::with_capacity(n_draws);
        let mut v01 = Vec::with_capacity(n_draws);
        for _ in 0..n_draws {
            let f = s.sample(&mut rng);
            v00.push(f[0]);
            v01.push(f[1]);
        }
        let var = leakage_numeric::stats::sample_variance(&v00);
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        let rho = leakage_numeric::stats::pearson_correlation(&v00, &v01);
        let expect = corr.rho(10.0);
        assert!((rho - expect).abs() < 0.03, "rho {rho} vs {expect}");
    }

    #[test]
    fn cholesky_sampler_handles_tent_with_jitter() {
        // A dense grid against a tent correlation may need jitter; must not fail.
        let g = GridGeometry::new(6, 6, 5.0, 5.0).unwrap();
        let corr = TentCorrelation::new(12.0).unwrap();
        let s = CholeskyFieldSampler::new(g, &corr, 1.0).unwrap();
        assert!(s.jitter() >= 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let f = s.sample(&mut rng);
        assert_eq!(f.len(), 36);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn circulant_embedding_exact_for_exponential() {
        let g = GridGeometry::new(8, 8, 5.0, 5.0).unwrap();
        let corr = ExponentialCorrelation::new(15.0).unwrap();
        let s = CirculantFieldSampler::new(g, &corr, 1.5).unwrap();
        // Exponential on a generously padded torus: eigenvalues stay ≥ 0.
        assert!(
            s.clipped_fraction() < 1e-12,
            "clipped {}",
            s.clipped_fraction()
        );
        // Effective covariance at offsets matches σ²ρ(d).
        let c0 = s.effective_covariance(0, 0);
        assert!((c0 - 2.25).abs() < 1e-9, "c0 {c0}");
        let c1 = s.effective_covariance(0, 1);
        let expect = 2.25 * corr.rho(5.0);
        // torus wrap adds a tiny positive bias at long range; small here
        assert!((c1 - expect).abs() < 0.02, "c1 {c1} vs {expect}");
    }

    #[test]
    fn circulant_sampler_statistics() {
        let g = GridGeometry::new(8, 8, 5.0, 5.0).unwrap();
        let corr = ExponentialCorrelation::new(15.0).unwrap();
        let s = CirculantFieldSampler::new(g, &corr, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let mut a0 = Vec::new();
        let mut a1 = Vec::new();
        for _ in 0..8000 {
            let (f, f2) = s.sample_two(&mut rng);
            a0.push(f[0]);
            a1.push(f[1]);
            a0.push(f2[0]);
            a1.push(f2[1]);
        }
        let var = leakage_numeric::stats::sample_variance(&a0);
        assert!((var - 1.0).abs() < 0.06, "var {var}");
        let rho = leakage_numeric::stats::pearson_correlation(&a0, &a1);
        let expect = corr.rho(5.0);
        assert!((rho - expect).abs() < 0.03, "rho {rho} vs {expect}");
    }

    #[test]
    fn circulant_and_cholesky_agree() {
        let g = GridGeometry::new(5, 7, 8.0, 6.0).unwrap();
        let corr = ExponentialCorrelation::new(25.0).unwrap();
        let chol = CholeskyFieldSampler::new(g, &corr, 1.0).unwrap();
        let circ = CirculantFieldSampler::new(g, &corr, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        // Compare empirical variance of the site-averaged field (a scalar
        // functional very sensitive to the full covariance structure).
        let mut m_chol = leakage_numeric::stats::RunningStats::new();
        let mut m_circ = leakage_numeric::stats::RunningStats::new();
        for _ in 0..6000 {
            let f = chol.sample(&mut rng);
            m_chol.push(f.iter().sum::<f64>() / f.len() as f64);
            let f = circ.sample(&mut rng);
            m_circ.push(f.iter().sum::<f64>() / f.len() as f64);
        }
        let (va, vb) = (m_chol.sample_variance(), m_circ.sample_variance());
        assert!(
            (va - vb).abs() / va < 0.12,
            "cholesky {va} vs circulant {vb}"
        );
    }

    #[test]
    fn samplers_are_bit_identical_across_thread_counts() {
        let g = GridGeometry::new(6, 9, 4.0, 5.0).unwrap();
        let corr = ExponentialCorrelation::new(18.0).unwrap();

        let chol_serial =
            CholeskyFieldSampler::new_with(g, &corr, 1.3, Parallelism::serial()).unwrap();
        let circ_serial =
            CirculantFieldSampler::new_with(g, &corr, 1.3, Parallelism::serial()).unwrap();
        let points: Vec<(f64, f64)> = (0..40)
            .map(|i| ((i % 8) as f64 * 3.0, (i / 8) as f64 * 4.0))
            .collect();
        let point_serial =
            PointFieldSampler::new_with(points.clone(), &corr, 1.3, Parallelism::serial()).unwrap();

        for threads in [2, 4] {
            let par = Parallelism::threads(threads);
            let chol = CholeskyFieldSampler::new_with(g, &corr, 1.3, par).unwrap();
            let mut r1 = StdRng::seed_from_u64(9);
            let mut r2 = StdRng::seed_from_u64(9);
            assert_eq!(
                chol_serial.sample(&mut r1),
                chol.sample(&mut r2),
                "cholesky, threads = {threads}"
            );

            let circ = CirculantFieldSampler::new_with(g, &corr, 1.3, par).unwrap();
            let mut r1 = StdRng::seed_from_u64(9);
            let mut r2 = StdRng::seed_from_u64(9);
            // Parallel-FFT draw from the parallel-built sampler vs the
            // fully serial draw.
            assert_eq!(
                circ_serial.sample_two(&mut r1),
                circ.sample_two_with(&mut r2, par),
                "circulant, threads = {threads}"
            );

            let point = PointFieldSampler::new_with(points.clone(), &corr, 1.3, par).unwrap();
            let mut r1 = StdRng::seed_from_u64(9);
            let mut r2 = StdRng::seed_from_u64(9);
            assert_eq!(
                point_serial.sample(&mut r1),
                point.sample(&mut r2),
                "points, threads = {threads}"
            );
        }
    }

    #[test]
    fn planned_draw_is_bit_identical_to_unplanned() {
        let g = GridGeometry::new(6, 9, 4.0, 5.0).unwrap();
        let corr = ExponentialCorrelation::new(18.0).unwrap();
        let s = CirculantFieldSampler::new(g, &corr, 1.1).unwrap();
        for threads in [1usize, 2, 4] {
            let par = Parallelism::threads(threads);
            let mut r1 = StdRng::seed_from_u64(77);
            let mut r2 = StdRng::seed_from_u64(77);
            let planned = s.sample_two_with(&mut r1, par);
            let unplanned = s.sample_two_unplanned_with(&mut r2, par);
            assert_eq!(planned, unplanned, "threads = {threads}");
        }
    }

    #[test]
    fn batched_scratch_reuse_matches_fresh_draws() {
        let g = GridGeometry::new(5, 5, 3.0, 3.0).unwrap();
        let corr = ExponentialCorrelation::new(10.0).unwrap();
        let s = CirculantFieldSampler::new(g, &corr, 0.9).unwrap();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut scratch = FieldScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for _ in 0..4 {
            s.sample_two_into(&mut r1, &mut a, &mut b, &mut scratch);
            let (fa, fb) = s.sample_two(&mut r2);
            assert_eq!(a, fa);
            assert_eq!(b, fb);
        }
    }

    #[test]
    fn plan_cache_shares_plans_between_same_shape_samplers() {
        let g = GridGeometry::new(6, 6, 4.0, 4.0).unwrap();
        let corr = ExponentialCorrelation::new(12.0).unwrap();
        let cache = FftPlanCache::new();
        let s1 = CirculantFieldSampler::new_with_plan_cache(
            g,
            &corr,
            1.0,
            Parallelism::serial(),
            &cache,
            Instruments::none(),
        )
        .unwrap();
        let s2 = CirculantFieldSampler::new_with_plan_cache(
            g,
            &corr,
            2.0,
            Parallelism::serial(),
            &cache,
            Instruments::none(),
        )
        .unwrap();
        assert_eq!(cache.len(), 1, "same torus shape shares one plan");
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        // Cached-plan sampler draws the same bits as an uncached one.
        let uncached = CirculantFieldSampler::new(g, &corr, 1.0).unwrap();
        assert_eq!(s1.sample_two(&mut r1), uncached.sample_two(&mut r2));
        let _ = s2;
    }

    #[test]
    fn point_sampler_matches_correlation() {
        let corr = ExponentialCorrelation::new(20.0).unwrap();
        let points = vec![(0.0, 0.0), (10.0, 0.0), (300.0, 300.0)];
        let s = PointFieldSampler::new(points, &corr, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut c = Vec::new();
        for _ in 0..20_000 {
            let f = s.sample(&mut rng);
            a.push(f[0]);
            b.push(f[1]);
            c.push(f[2]);
        }
        let var = leakage_numeric::stats::sample_variance(&a);
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        let near = leakage_numeric::stats::pearson_correlation(&a, &b);
        assert!((near - corr.rho(10.0)).abs() < 0.03, "near {near}");
        let far = leakage_numeric::stats::pearson_correlation(&a, &c);
        assert!(far.abs() < 0.03, "far {far}");
    }

    #[test]
    fn point_sampler_rejects_bad_input() {
        let corr = ExponentialCorrelation::new(20.0).unwrap();
        assert!(PointFieldSampler::new(vec![], &corr, 1.0).is_err());
        assert!(PointFieldSampler::new(vec![(f64::NAN, 0.0)], &corr, 1.0).is_err());
        assert!(PointFieldSampler::new(vec![(0.0, 0.0)], &corr, -1.0).is_err());
    }

    #[test]
    fn point_sampler_handles_coincident_points_with_jitter() {
        let corr = ExponentialCorrelation::new(20.0).unwrap();
        // Two identical points make the covariance singular; jitter saves it.
        let s = PointFieldSampler::new(vec![(5.0, 5.0), (5.0, 5.0)], &corr, 1.0).unwrap();
        assert!(s.jitter() > 0.0);
        let mut rng = StdRng::seed_from_u64(32);
        let f = s.sample(&mut rng);
        assert!((f[0] - f[1]).abs() < 1e-2, "coincident points nearly equal");
    }

    #[test]
    fn samplers_reject_negative_sigma() {
        let g = GridGeometry::new(2, 2, 1.0, 1.0).unwrap();
        let corr = ExponentialCorrelation::new(5.0).unwrap();
        assert!(CholeskyFieldSampler::new(g, &corr, -1.0).is_err());
        assert!(CirculantFieldSampler::new(g, &corr, f64::NAN).is_err());
    }

    #[test]
    fn zero_sigma_yields_zero_field() {
        let g = GridGeometry::new(3, 3, 1.0, 1.0).unwrap();
        let corr = ExponentialCorrelation::new(5.0).unwrap();
        let s = CholeskyFieldSampler::new(g, &corr, 0.0);
        // zero variance is degenerate for cholesky (diagonal zero) — it
        // may fail gracefully (not positive definite) but must not panic
        if let Ok(s) = s {
            let mut rng = StdRng::seed_from_u64(1);
            let f = s.sample(&mut rng);
            assert!(f.iter().all(|v| v.abs() < 1e-6));
        }
        let c = CirculantFieldSampler::new(g, &corr, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let f = c.sample(&mut rng);
        assert!(f.iter().all(|v| *v == 0.0));
    }
}
