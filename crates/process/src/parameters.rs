//! Per-parameter variation budgets and their D2D/WID decomposition.

use crate::error::ProcessError;
use serde::{Deserialize, Serialize};

/// Which physical transistor parameter a variation budget refers to.
///
/// Following the paper (§2.1), only channel length `L` and threshold
/// voltage `Vt` matter for leakage, due to the exponential dependence of
/// subthreshold current on both. `Vt` here means the *random dopant
/// fluctuation* component, which is independent across the die; the `Vt`
/// roll-off contribution is folded into the `L` dependence of the device
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessParameter {
    /// Transistor channel length (correlated within die).
    ChannelLength,
    /// Threshold voltage from random dopant fluctuations (independent).
    ThresholdVoltage,
}

/// Variation budget of one process parameter: a nominal value plus
/// independent D2D and WID Gaussian components.
///
/// The total standard deviation obeys `σ² = σ_dd² + σ_wd²` because the two
/// components are statistically independent.
///
/// # Example
///
/// ```
/// use leakage_process::ParameterVariation;
///
/// let l = ParameterVariation::new(90.0, 3.2, 3.2).unwrap();
/// assert!((l.total_sigma() - (2.0 * 3.2f64 * 3.2).sqrt()).abs() < 1e-12);
/// assert!((l.d2d_variance_fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterVariation {
    nominal: f64,
    sigma_d2d: f64,
    sigma_wid: f64,
}

impl ParameterVariation {
    /// Creates a variation budget.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] if the nominal value is
    /// not finite, either sigma is negative or non-finite, or both sigmas
    /// are zero *and* negative checks fail (a fully deterministic budget is
    /// allowed).
    pub fn new(nominal: f64, sigma_d2d: f64, sigma_wid: f64) -> Result<Self, ProcessError> {
        if !nominal.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("nominal must be finite, got {nominal}"),
            });
        }
        if !(sigma_d2d >= 0.0) || !sigma_d2d.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("sigma_d2d must be finite and >= 0, got {sigma_d2d}"),
            });
        }
        if !(sigma_wid >= 0.0) || !sigma_wid.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("sigma_wid must be finite and >= 0, got {sigma_wid}"),
            });
        }
        Ok(ParameterVariation {
            nominal,
            sigma_d2d,
            sigma_wid,
        })
    }

    /// Creates a budget from a total sigma and the D2D variance fraction
    /// `f ∈ [0, 1]`: `σ_dd² = f σ²`, `σ_wd² = (1−f) σ²`.
    ///
    /// # Errors
    ///
    /// Returns [`ProcessError::InvalidParameter`] for negative sigma or a
    /// fraction outside `[0, 1]`.
    pub fn from_total(
        nominal: f64,
        total_sigma: f64,
        d2d_fraction: f64,
    ) -> Result<Self, ProcessError> {
        if !(0.0..=1.0).contains(&d2d_fraction) {
            return Err(ProcessError::InvalidParameter {
                reason: format!("d2d fraction must be in [0,1], got {d2d_fraction}"),
            });
        }
        if !(total_sigma >= 0.0) || !total_sigma.is_finite() {
            return Err(ProcessError::InvalidParameter {
                reason: format!("total sigma must be finite and >= 0, got {total_sigma}"),
            });
        }
        let var = total_sigma * total_sigma;
        ParameterVariation::new(
            nominal,
            (d2d_fraction * var).sqrt(),
            ((1.0 - d2d_fraction) * var).sqrt(),
        )
    }

    /// Nominal (mean) value of the parameter.
    pub fn nominal(&self) -> f64 {
        self.nominal
    }

    /// Die-to-die standard deviation.
    pub fn sigma_d2d(&self) -> f64 {
        self.sigma_d2d
    }

    /// Within-die standard deviation.
    pub fn sigma_wid(&self) -> f64 {
        self.sigma_wid
    }

    /// Total standard deviation `√(σ_dd² + σ_wd²)`.
    pub fn total_sigma(&self) -> f64 {
        (self.sigma_d2d * self.sigma_d2d + self.sigma_wid * self.sigma_wid).sqrt()
    }

    /// Total variance `σ_dd² + σ_wd²`.
    pub fn total_variance(&self) -> f64 {
        self.sigma_d2d * self.sigma_d2d + self.sigma_wid * self.sigma_wid
    }

    /// Fraction of the total variance contributed by the D2D component
    /// (`ρ_C`, the asymptotic correlation floor). Returns 0 for a fully
    /// deterministic budget.
    pub fn d2d_variance_fraction(&self) -> f64 {
        let total = self.total_variance();
        if total == 0.0 {
            0.0
        } else {
            self.sigma_d2d * self.sigma_d2d / total
        }
    }

    /// Returns a copy with WID-only variation (D2D removed), used by the
    /// WID-only experiments of §3.1.2.
    pub fn wid_only(&self) -> ParameterVariation {
        ParameterVariation {
            nominal: self.nominal,
            sigma_d2d: 0.0,
            sigma_wid: self.sigma_wid,
        }
    }

    /// Relative variation `σ/nominal` (0 if nominal is 0).
    pub fn relative_sigma(&self) -> f64 {
        if self.nominal == 0.0 {
            0.0
        } else {
            self.total_sigma() / self.nominal.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_decomposition() {
        let p = ParameterVariation::new(90.0, 3.0, 4.0).unwrap();
        assert!((p.total_sigma() - 5.0).abs() < 1e-12);
        assert!((p.total_variance() - 25.0).abs() < 1e-12);
        assert!((p.d2d_variance_fraction() - 9.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn from_total_roundtrip() {
        let p = ParameterVariation::from_total(90.0, 5.0, 0.36).unwrap();
        assert!((p.total_sigma() - 5.0).abs() < 1e-12);
        assert!((p.sigma_d2d() - 3.0).abs() < 1e-12);
        assert!((p.sigma_wid() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid() {
        assert!(ParameterVariation::new(f64::NAN, 1.0, 1.0).is_err());
        assert!(ParameterVariation::new(90.0, -1.0, 1.0).is_err());
        assert!(ParameterVariation::new(90.0, 1.0, f64::INFINITY).is_err());
        assert!(ParameterVariation::from_total(90.0, 5.0, 1.5).is_err());
        assert!(ParameterVariation::from_total(90.0, -5.0, 0.5).is_err());
    }

    #[test]
    fn deterministic_budget_allowed() {
        let p = ParameterVariation::new(90.0, 0.0, 0.0).unwrap();
        assert_eq!(p.total_sigma(), 0.0);
        assert_eq!(p.d2d_variance_fraction(), 0.0);
        assert_eq!(p.relative_sigma(), 0.0);
    }

    #[test]
    fn wid_only_strips_d2d() {
        let p = ParameterVariation::new(90.0, 3.0, 4.0).unwrap();
        let w = p.wid_only();
        assert_eq!(w.sigma_d2d(), 0.0);
        assert_eq!(w.sigma_wid(), 4.0);
        assert_eq!(w.nominal(), 90.0);
    }

    #[test]
    fn relative_sigma() {
        let p = ParameterVariation::new(100.0, 3.0, 4.0).unwrap();
        assert!((p.relative_sigma() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<ParameterVariation>();
        assert_serde::<ProcessParameter>();
    }
}
