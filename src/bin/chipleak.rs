//! `chipleak` — command-line front end to the full-chip leakage estimator.
//!
//! ```text
//! chipleak characterize [--sweep-points N] [--out FILE.json]
//! chipleak estimate --cells N --die WxH [--dmax D] [--p P]
//!                   [--method linear|integral2d|polar1d]
//!                   [--library FILE.json] [--yield-budget AMPS]
//! chipleak iscas85  [--library FILE.json]
//! ```
//!
//! `characterize` writes the characterized library as JSON so repeated
//! estimates skip the transistor-level solves; `estimate` runs the early-
//! mode flow on given high-level characteristics; `iscas85` runs the
//! late-mode flow over the synthetic benchmark suite.
//!
//! Every command accepts `--metrics` (print deterministic counters, value
//! summaries and wall-clock spans to stderr) and `--metrics-json FILE`
//! (write the same snapshot as JSON).
//!
//! # Exit codes
//!
//! * `0` — success;
//! * `1` — usage, input, or runtime error;
//! * `2` — strict-mode refusal: the requested estimator failed a validity
//!   check and `--strict` forbids falling back (`chipleak` reports why);
//! * `3` — resilient-mode exhaustion: every rung of the fallback ladder
//!   was rejected, no valid estimate exists for this configuration.

use fullchip_leakage::cells::model::CharacterizedLibrary;
use fullchip_leakage::core::estimator::LadderStage;
use fullchip_leakage::core::{CoreError, LeakageDistribution};
use fullchip_leakage::netlist::extract::extract_characteristics;
use fullchip_leakage::netlist::iscas85;
use fullchip_leakage::obs::{AggregatingRecorder, Instruments, WallClock};
use fullchip_leakage::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

/// CLI failure carrying its documented exit code (see the module docs).
enum CliError {
    /// Usage, input, or runtime error — exit code 1.
    Runtime(String),
    /// Strict-mode refusal of an invalid estimator — exit code 2.
    StrictRefusal(String),
    /// Resilient-ladder exhaustion — exit code 3.
    Exhausted(String),
}

impl CliError {
    fn message(&self) -> &str {
        match self {
            CliError::Runtime(m) | CliError::StrictRefusal(m) | CliError::Exhausted(m) => m,
        }
    }

    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Runtime(_) => ExitCode::from(1),
            CliError::StrictRefusal(_) => ExitCode::from(2),
            CliError::Exhausted(_) => ExitCode::from(3),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Runtime(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Runtime(m.to_owned())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Global flag: `--threads N` caps the worker pool of every parallel
    // hot path (0 or absent = all hardware threads).
    if let Some(threads) = opts.get("threads") {
        if threads.parse::<usize>().is_err() {
            eprintln!("error: --threads must be a non-negative integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
        std::env::set_var(fullchip_leakage::core::parallel::THREADS_ENV, threads);
    }
    // Global flags: `--metrics` / `--metrics-json FILE` attach a recorder
    // to the instrumented hot paths. Off by default: the commands then run
    // against the zero-overhead no-op recorder.
    let want_metrics = opts.contains_key("metrics") || opts.contains_key("metrics-json");
    let recorder = AggregatingRecorder::new();
    let clock = WallClock;
    let ins = if want_metrics {
        Instruments::new(&recorder, &clock)
    } else {
        Instruments::none()
    };
    let result = match command.as_str() {
        "characterize" => cmd_characterize(&opts, ins),
        "estimate" => cmd_estimate(&opts, ins),
        "estimate-file" => cmd_estimate_file(&opts, ins),
        "iscas85" => cmd_iscas85(&opts, ins),
        other => Err(CliError::Runtime(format!(
            "unknown command {other}\n{USAGE}"
        ))),
    };
    let result = result.and_then(|()| {
        if !want_metrics {
            return Ok(());
        }
        let snapshot = recorder.snapshot();
        if opts.contains_key("metrics") {
            eprintln!("{}", snapshot.to_text());
        }
        if let Some(path) = opts.get("metrics-json") {
            std::fs::write(path, snapshot.to_json_string())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        Ok(())
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message());
            e.exit_code()
        }
    }
}

const USAGE: &str = "usage:
  chipleak characterize [--sweep-points N] [--out FILE.json]
  chipleak estimate --cells N --die WxH [--dmax D] [--p P]
                    [--method linear|integral2d|polar1d|exact-lattice]
                    [--mix uniform|control|datapath|memory|clock]
                    [--library FILE.json] [--yield-budget AMPS]
                    [--resilient | --strict]
  chipleak estimate-file --placement FILE.txt [--dmax D] [--p P]
                    [--library FILE.json] [--exact true]
  chipleak iscas85  [--library FILE.json]

estimate modes:
  --resilient         run the validity-guarded fallback ladder
                      (polar1d -> integral2d -> linear -> exact-lattice),
                      report any degradation, exit 3 if every rung fails
  --strict            run only --method; if it fails a validity check,
                      refuse to fall back and exit 2

global flags:
  --threads N         worker threads for the parallel hot paths (0 = all cores)
  --metrics           print hot-path counters/spans to stderr after the run
  --metrics-json FILE write the metrics snapshot as JSON

exit codes:
  0 success   1 usage/input/runtime error
  2 strict-mode refusal   3 resilient-ladder exhaustion";

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["metrics", "resilient", "strict"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {flag}"))?;
        if BOOLEAN_FLAGS.contains(&key) {
            out.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        out.insert(key.to_owned(), value.clone());
    }
    Ok(out)
}

fn parse_stage(method: &str) -> Result<LadderStage, CliError> {
    match method {
        "linear" => Ok(LadderStage::Linear),
        "integral2d" => Ok(LadderStage::Integral2d),
        "polar1d" => Ok(LadderStage::Polar1d),
        "exact-lattice" => Ok(LadderStage::ExactLattice),
        other => Err(CliError::Runtime(format!(
            "unknown method {other}; use linear|integral2d|polar1d|exact-lattice"
        ))),
    }
}

fn load_or_characterize(
    opts: &HashMap<String, String>,
    tech: &Technology,
    ins: Instruments<'_>,
) -> Result<CharacterizedLibrary, String> {
    if let Some(path) = opts.get("library") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        return serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"));
    }
    eprintln!("characterizing the 62-cell library (pass --library FILE.json to reuse one) ...");
    let lib = CellLibrary::standard_62();
    Characterizer::new(tech)
        .characterize_library_instrumented(&lib, CharMethod::default(), Parallelism::auto(), ins)
        .map_err(|e| e.to_string())
}

fn cmd_characterize(opts: &HashMap<String, String>, ins: Instruments<'_>) -> Result<(), CliError> {
    let sweep_points: usize = opts
        .get("sweep-points")
        .map(|v| v.parse().map_err(|e| format!("--sweep-points: {e}")))
        .transpose()?
        .unwrap_or(13);
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    eprintln!(
        "characterizing {} cells at {sweep_points} sweep points ...",
        lib.len()
    );
    let charlib = Characterizer::new(&tech)
        .characterize_library_instrumented(
            &lib,
            CharMethod::Analytical { sweep_points },
            Parallelism::auto(),
            ins,
        )
        .map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&charlib).map_err(|e| e.to_string())?;
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} cells to {path}", charlib.len());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_estimate(opts: &HashMap<String, String>, ins: Instruments<'_>) -> Result<(), CliError> {
    let n_cells: usize = opts
        .get("cells")
        .ok_or("--cells is required")?
        .parse()
        .map_err(|e| format!("--cells: {e}"))?;
    let die = opts.get("die").ok_or("--die is required (WxH in µm)")?;
    let (w, h) = die
        .split_once(['x', 'X'])
        .ok_or("--die must look like 800x600")?;
    let width: f64 = w.parse().map_err(|e| format!("--die width: {e}"))?;
    let height: f64 = h.parse().map_err(|e| format!("--die height: {e}"))?;
    let dmax: f64 = opts
        .get("dmax")
        .map(|v| v.parse().map_err(|e| format!("--dmax: {e}")))
        .transpose()?
        .unwrap_or(100.0);
    let p: f64 = opts
        .get("p")
        .map(|v| v.parse().map_err(|e| format!("--p: {e}")))
        .transpose()?
        .unwrap_or(0.5);
    let method = opts.get("method").map(String::as_str).unwrap_or("polar1d");

    let tech = Technology::cmos90();
    let charlib = load_or_characterize(opts, &tech, ins)?;
    let histogram = match opts.get("mix").map(String::as_str) {
        None | Some("uniform") => {
            UsageHistogram::uniform(charlib.len()).map_err(|e| e.to_string())?
        }
        Some(preset) => {
            use fullchip_leakage::cells::presets;
            let lib = CellLibrary::standard_62();
            match preset {
                "control" => presets::control_logic(&lib),
                "datapath" => presets::datapath(&lib),
                "memory" => presets::memory_dominated(&lib),
                "clock" => presets::clock_tree(&lib),
                other => {
                    return Err(CliError::Runtime(format!(
                        "unknown mix {other}; use uniform|control|datapath|memory|clock"
                    )))
                }
            }
            .map_err(|e| e.to_string())?
        }
    };
    let chars = HighLevelCharacteristics::builder()
        .histogram(histogram)
        .n_cells(n_cells)
        .die_dimensions(width, height)
        .signal_probability(p)
        .build()
        .map_err(|e| e.to_string())?;
    let wid = TentCorrelation::new(dmax).map_err(|e| e.to_string())?;
    let est = ChipLeakageEstimator::new(&charlib, &tech, chars, wid)
        .map_err(|e| e.to_string())?
        .with_vt_correction(&tech);
    let resilient = opts.contains_key("resilient");
    let strict = opts.contains_key("strict");
    if resilient && strict {
        return Err(CliError::Runtime(
            "--resilient and --strict are mutually exclusive".into(),
        ));
    }
    let (e, method) = if resilient {
        let res = est
            .estimate_resilient_instrumented(ins)
            .map_err(|e| match e {
                CoreError::EstimationExhausted { .. } => CliError::Exhausted(e.to_string()),
                other => CliError::Runtime(other.to_string()),
            })?;
        for line in res.report.rejection_lines() {
            eprintln!("degraded: {line}");
        }
        let stage = res
            .report
            .accepted()
            .expect("a successful ladder run has an accepted stage");
        (res.estimate, stage.name())
    } else {
        let stage = parse_stage(method)?;
        let e = if strict {
            est.estimate_strict_instrumented(stage, ins)
                .map_err(|e| CliError::StrictRefusal(e.to_string()))?
        } else {
            match stage {
                LadderStage::Linear => est.estimate_linear_instrumented(ins),
                LadderStage::Integral2d => est.estimate_integral_2d_instrumented(ins),
                LadderStage::Polar1d => est.estimate_polar_1d_instrumented(ins),
                // The O(n²) rung is only reachable through the guarded
                // modes: unguarded it is never a sensible first choice.
                LadderStage::ExactLattice => {
                    return Err(CliError::Runtime(
                        "--method exact-lattice requires --strict or --resilient".into(),
                    ))
                }
            }
            .map_err(|e| CliError::Runtime(e.to_string()))?
        };
        (e, stage.name())
    };

    println!("method:        {method}");
    println!("mean leakage:  {:.4e} A", e.mean);
    println!("std leakage:   {:.4e} A", e.std());
    println!("σ/μ:           {:.2}%", e.relative_std() * 100.0);
    let dist = LeakageDistribution::from_estimate(&e).map_err(|e| e.to_string())?;
    println!("95% budget:    {:.4e} A", dist.quantile(0.95));
    println!("99% budget:    {:.4e} A", dist.quantile(0.99));
    if let Some(budget) = opts.get("yield-budget") {
        let budget: f64 = budget.parse().map_err(|e| format!("--yield-budget: {e}"))?;
        println!(
            "yield at {budget:.3e} A: {:.2}%",
            dist.yield_at(budget) * 100.0
        );
    }
    Ok(())
}

fn cmd_estimate_file(opts: &HashMap<String, String>, ins: Instruments<'_>) -> Result<(), CliError> {
    use fullchip_leakage::cells::corrmap::CorrelationPolicy;
    use fullchip_leakage::netlist::io::read_placement;
    let path = opts.get("placement").ok_or("--placement is required")?;
    let dmax: f64 = opts
        .get("dmax")
        .map(|v| v.parse().map_err(|e| format!("--dmax: {e}")))
        .transpose()?
        .unwrap_or(100.0);
    let p: f64 = opts
        .get("p")
        .map(|v| v.parse().map_err(|e| format!("--p: {e}")))
        .transpose()?
        .unwrap_or(0.5);
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charlib = load_or_characterize(opts, &tech, ins)?;
    let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let placed = read_placement(std::io::BufReader::new(file), &lib)
        .map_err(|e| format!("reading {path}: {e}"))?;
    println!(
        "design {}: {} gates on {:.1} x {:.1} µm",
        placed.name(),
        placed.n_gates(),
        placed.width(),
        placed.height()
    );
    let chars = extract_characteristics(&placed, lib.len(), p).map_err(|e| e.to_string())?;
    let wid = TentCorrelation::new(dmax).map_err(|e| e.to_string())?;
    let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)
        .map_err(|e| e.to_string())?
        .estimate_linear_instrumented(ins)
        .map_err(|e| e.to_string())?;
    println!("RG estimate:   {:.4e} ± {:.4e} A", est.mean, est.std());
    if opts.get("exact").map(String::as_str) == Some("true") {
        use fullchip_leakage::core::estimator::{exact_placed_stats_tiled_instrumented, Tiling};
        let rho_c = tech.l_variation().d2d_variance_fraction();
        let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
        let pairwise = PairwiseCovariance::new_instrumented(
            &charlib,
            &placed.support(),
            p,
            CorrelationPolicy::Exact,
            ins,
        )
        .map_err(|e| e.to_string())?;
        // Tiled SoA kernel: bit-identical to the naive reference
        // (tests/determinism.rs), just fast enough for full-chip inputs.
        // The tent reaches exactly zero at its support radius, so ρ_total
        // is the constant ρ_c for every pair at or beyond it — the far
        // cutoff lets those pairs skip the ρ evaluation entirely.
        let truth = exact_placed_stats_tiled_instrumented(
            &placed.placement_soa(),
            &pairwise,
            &rho_total,
            Parallelism::auto(),
            Tiling {
                far_cutoff: wid.support_radius(),
                ..Tiling::default()
            },
            ins,
        );
        println!("O(n²) truth:   {:.4e} ± {:.4e} A", truth.mean, truth.std());
        println!(
            "σ error:       {:.2}%",
            (est.std() / truth.std() - 1.0).abs() * 100.0
        );
    }
    Ok(())
}

fn cmd_iscas85(opts: &HashMap<String, String>, ins: Instruments<'_>) -> Result<(), CliError> {
    let tech = Technology::cmos90();
    let charlib = load_or_characterize(opts, &tech, ins)?;
    let lib = CellLibrary::standard_62();
    let wid = TentCorrelation::new(100.0).map_err(|e| e.to_string())?;
    println!(
        "{:>8} {:>7} {:>13} {:>13} {:>8}",
        "circuit", "gates", "mean (A)", "std (A)", "σ/μ"
    );
    for spec in iscas85::TABLE1_SPECS {
        let placed = iscas85::build(spec, &lib).map_err(|e| e.to_string())?;
        let chars = extract_characteristics(&placed, lib.len(), 0.5).map_err(|e| e.to_string())?;
        let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)
            .map_err(|e| e.to_string())?
            .estimate_linear_instrumented(ins)
            .map_err(|e| e.to_string())?;
        println!(
            "{:>8} {:>7} {:>13.4e} {:>13.4e} {:>7.2}%",
            placed.name(),
            placed.n_gates(),
            est.mean,
            est.std(),
            est.relative_std() * 100.0
        );
    }
    Ok(())
}
