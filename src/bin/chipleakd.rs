//! `chipleakd` — the long-running batch estimation server.
//!
//! ```text
//! chipleakd [--socket PATH] [--workers N] [--resilient]
//!           [--cache-cap N] [--no-cache] [--max-line-bytes N]
//!           [--queue-cap N] [--default-deadline-ms N]
//!           [--write-timeout-ms N]
//!           [--metrics] [--metrics-json FILE]
//! ```
//!
//! Without `--socket`, serves newline-delimited JSON requests on stdin
//! and writes one response line per request to stdout, in request
//! order, until EOF or a `shutdown` job. With `--socket PATH`, binds a
//! unix socket and serves each connection the same way; a `shutdown`
//! job on any connection stops the server. See DESIGN.md §14 for the
//! protocol grammar.
//!
//! Expensive artifacts (characterized libraries, Eq. 17 correlation
//! tables, FFT plans) are cached behind content-addressed keys and
//! shared by every request and connection. `--no-cache` disables the
//! store; `--cache-cap N` bounds each family to N entries (FIFO
//! eviction, documented as trading counter determinism for memory).
//!
//! Overload survival (DESIGN.md §16): `--queue-cap N` bounds the work
//! queue — requests past the cap are answered with a typed
//! `overloaded` error instead of queueing without bound.
//! `--default-deadline-ms N` stamps a deadline on every request that
//! does not carry its own `deadline_ms`; expired requests answer
//! `deadline_exceeded`. `--write-timeout-ms N` bounds how long a slow
//! socket client can stall its connection thread's writes.
//!
//! `--metrics` prints the fleet counter snapshot to stderr on exit;
//! `--metrics-json FILE` writes it as JSON.
//!
//! # Exit codes
//!
//! * `0` — clean exit (EOF or `shutdown`);
//! * `1` — runtime I/O error while serving;
//! * `2` — usage error (unknown flag, malformed value, `--workers 0`);
//! * `3` — cannot bind the `--socket` path.

use fullchip_leakage::service::{CacheConfig, Service, ServiceConfig, WallClock};
use std::process::ExitCode;

const USAGE: &str = "usage: chipleakd [--socket PATH] [--workers N] [--resilient]\n\
                 \x20         [--cache-cap N] [--no-cache] [--max-line-bytes N]\n\
                 \x20         [--queue-cap N] [--default-deadline-ms N]\n\
                 \x20         [--write-timeout-ms N]\n\
                 \x20         [--metrics] [--metrics-json FILE]";

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["resilient", "no-cache", "metrics"];

/// Everything that can stop `chipleakd`, split by how operators need to
/// react. Supervisors restart on `Runtime`, page on `Bind` (the path is
/// almost always held by another instance or an unwritable directory),
/// and fix the command line on `Usage` — so each maps to its own exit
/// code and `Bind` keeps the os error text verbatim.
enum CliError {
    /// Bad command line: unknown flag, malformed value, `--workers 0`.
    Usage(String),
    /// `--socket PATH` could not be bound.
    Bind { path: String, err: std::io::Error },
    /// I/O failure while serving or writing metrics.
    Runtime(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Runtime(_) => ExitCode::from(1),
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Bind { .. } => ExitCode::from(3),
        }
    }
}

fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut opts = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg}"));
        };
        if BOOLEAN_FLAGS.contains(&key) {
            opts.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{key} requires a value"));
        };
        opts.insert(key.to_owned(), value.clone());
    }
    Ok(opts)
}

fn parse_usize(
    opts: &std::collections::HashMap<String, String>,
    key: &str,
) -> Result<Option<usize>, String> {
    match opts.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("--{key} must be a non-negative integer")),
    }
}

fn parse_u64(
    opts: &std::collections::HashMap<String, String>,
    key: &str,
) -> Result<Option<u64>, String> {
    match opts.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("--{key} must be a non-negative integer")),
    }
}

fn build_config(opts: &std::collections::HashMap<String, String>) -> Result<ServiceConfig, String> {
    let workers = match parse_usize(opts, "workers")? {
        // `--workers 0` used to silently become 1; an operator who typed
        // it meant something, so refuse loudly instead of guessing.
        Some(0) => return Err("--workers must be at least 1".to_owned()),
        Some(n) => n,
        None => 1,
    };
    let queue_cap = match parse_usize(opts, "queue-cap")? {
        Some(0) => return Err("--queue-cap must be at least 1".to_owned()),
        other => other,
    };
    Ok(ServiceConfig {
        workers,
        cache: CacheConfig {
            enabled: !opts.contains_key("no-cache"),
            capacity: parse_usize(opts, "cache-cap")?,
        },
        resilient_default: opts.contains_key("resilient"),
        max_line_bytes: parse_usize(opts, "max-line-bytes")?
            .unwrap_or(64 * 1024)
            .max(1024),
        queue_cap,
        default_deadline_ms: parse_u64(opts, "default-deadline-ms")?,
        write_timeout_ms: parse_u64(opts, "write-timeout-ms")?,
    })
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_flags(&args).map_err(CliError::Usage)?;
    for key in opts.keys() {
        if !matches!(
            key.as_str(),
            "socket"
                | "workers"
                | "resilient"
                | "cache-cap"
                | "no-cache"
                | "max-line-bytes"
                | "queue-cap"
                | "default-deadline-ms"
                | "write-timeout-ms"
                | "metrics"
                | "metrics-json"
        ) {
            return Err(CliError::Usage(format!("unknown flag --{key}")));
        }
    }
    let config = build_config(&opts).map_err(CliError::Usage)?;
    // Deadlines measure real elapsed time in the binary; library code and
    // tests inject `NullClock`/`FakeClock` instead (DESIGN.md §16.2).
    let service = Service::new(config).with_clock(std::sync::Arc::new(WallClock));

    match opts.get("socket") {
        Some(path) => {
            // Bind before serve so a held or unwritable path fails fast
            // with its own exit code, not as a generic serve error.
            let listener =
                Service::bind_unix(std::path::Path::new(path)).map_err(|err| CliError::Bind {
                    path: path.clone(),
                    err,
                })?;
            let connections = service
                .serve_listener(listener, std::path::Path::new(path))
                .map_err(|e| CliError::Runtime(format!("socket serve failed on {path}: {e}")))?;
            eprintln!("chipleakd: served {connections} connection(s), shutting down");
        }
        None => {
            let stdin = std::io::stdin();
            // `StdoutLock` is not `Send`; `Stdout` is, and line-buffers
            // identically for the writer thread.
            let summary = service
                .serve(stdin.lock(), std::io::stdout())
                .map_err(|e| CliError::Runtime(format!("stdio serve failed: {e}")))?;
            let how = if summary.shutdown { "shutdown" } else { "EOF" };
            eprintln!(
                "chipleakd: {} request(s), stopped on {how}",
                summary.requests
            );
        }
    }

    // Fleet metrics on exit. The snapshot is counters-only by
    // construction (see DESIGN.md §14.5), so the text dump is stable.
    let want_metrics = opts.contains_key("metrics") || opts.contains_key("metrics-json");
    if want_metrics {
        let snapshot = service.fleet_snapshot();
        if opts.contains_key("metrics") {
            eprintln!("--- chipleakd fleet metrics ---");
            for (name, value) in &snapshot.counters {
                eprintln!("{name}: {value}");
            }
        }
        if let Some(path) = opts.get("metrics-json") {
            let mut counters = std::collections::BTreeMap::new();
            for (name, value) in &snapshot.counters {
                counters.insert(
                    name.clone(),
                    fullchip_leakage::service::Json::Num(*value as f64),
                );
            }
            let doc = fullchip_leakage::service::Json::Obj(
                [(
                    "counters".to_owned(),
                    fullchip_leakage::service::Json::Obj(counters),
                )]
                .into_iter()
                .collect(),
            );
            let mut text = String::new();
            doc.write(&mut text);
            text.push('\n');
            std::fs::write(path, text)
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            match &e {
                CliError::Usage(msg) => eprintln!("error: {msg}\n{USAGE}"),
                CliError::Bind { path, err } => {
                    eprintln!("error: cannot bind socket {path}: {err}");
                }
                CliError::Runtime(msg) => eprintln!("error: {msg}"),
            }
            e.exit_code()
        }
    }
}
