//! `chipleakd` — the long-running batch estimation server.
//!
//! ```text
//! chipleakd [--socket PATH] [--workers N] [--resilient]
//!           [--cache-cap N] [--no-cache] [--max-line-bytes N]
//!           [--metrics] [--metrics-json FILE]
//! ```
//!
//! Without `--socket`, serves newline-delimited JSON requests on stdin
//! and writes one response line per request to stdout, in request
//! order, until EOF or a `shutdown` job. With `--socket PATH`, binds a
//! unix socket and serves each connection the same way; a `shutdown`
//! job on any connection stops the server. See DESIGN.md §14 for the
//! protocol grammar.
//!
//! Expensive artifacts (characterized libraries, Eq. 17 correlation
//! tables, FFT plans) are cached behind content-addressed keys and
//! shared by every request and connection. `--no-cache` disables the
//! store; `--cache-cap N` bounds each family to N entries (FIFO
//! eviction, documented as trading counter determinism for memory).
//!
//! `--metrics` prints the fleet counter snapshot to stderr on exit;
//! `--metrics-json FILE` writes it as JSON.
//!
//! # Exit codes
//!
//! * `0` — clean exit (EOF or `shutdown`);
//! * `1` — usage or I/O error.

use fullchip_leakage::service::{CacheConfig, Service, ServiceConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: chipleakd [--socket PATH] [--workers N] [--resilient]\n\
                 \x20         [--cache-cap N] [--no-cache] [--max-line-bytes N]\n\
                 \x20         [--metrics] [--metrics-json FILE]";

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["resilient", "no-cache", "metrics"];

fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, String> {
    let mut opts = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg}"));
        };
        if BOOLEAN_FLAGS.contains(&key) {
            opts.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("--{key} requires a value"));
        };
        opts.insert(key.to_owned(), value.clone());
    }
    Ok(opts)
}

fn parse_usize(
    opts: &std::collections::HashMap<String, String>,
    key: &str,
) -> Result<Option<usize>, String> {
    match opts.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<usize>()
            .map(Some)
            .map_err(|_| format!("--{key} must be a non-negative integer")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_flags(&args)?;
    for key in opts.keys() {
        if !matches!(
            key.as_str(),
            "socket"
                | "workers"
                | "resilient"
                | "cache-cap"
                | "no-cache"
                | "max-line-bytes"
                | "metrics"
                | "metrics-json"
        ) {
            return Err(format!("unknown flag --{key}"));
        }
    }
    let config = ServiceConfig {
        workers: parse_usize(&opts, "workers")?.unwrap_or(1).max(1),
        cache: CacheConfig {
            enabled: !opts.contains_key("no-cache"),
            capacity: parse_usize(&opts, "cache-cap")?,
        },
        resilient_default: opts.contains_key("resilient"),
        max_line_bytes: parse_usize(&opts, "max-line-bytes")?
            .unwrap_or(64 * 1024)
            .max(1024),
    };
    let service = Service::new(config);

    match opts.get("socket") {
        Some(path) => {
            let connections = service
                .serve_unix(std::path::Path::new(path))
                .map_err(|e| format!("socket serve failed on {path}: {e}"))?;
            eprintln!("chipleakd: served {connections} connection(s), shutting down");
        }
        None => {
            let stdin = std::io::stdin();
            // `StdoutLock` is not `Send`; `Stdout` is, and line-buffers
            // identically for the writer thread.
            let summary = service
                .serve(stdin.lock(), std::io::stdout())
                .map_err(|e| format!("stdio serve failed: {e}"))?;
            let how = if summary.shutdown { "shutdown" } else { "EOF" };
            eprintln!(
                "chipleakd: {} request(s), stopped on {how}",
                summary.requests
            );
        }
    }

    // Fleet metrics on exit. The snapshot is counters-only by
    // construction (see DESIGN.md §14.5), so the text dump is stable.
    let want_metrics = opts.contains_key("metrics") || opts.contains_key("metrics-json");
    if want_metrics {
        let snapshot = service.fleet_snapshot();
        if opts.contains_key("metrics") {
            eprintln!("--- chipleakd fleet metrics ---");
            for (name, value) in &snapshot.counters {
                eprintln!("{name}: {value}");
            }
        }
        if let Some(path) = opts.get("metrics-json") {
            let mut counters = std::collections::BTreeMap::new();
            for (name, value) in &snapshot.counters {
                counters.insert(
                    name.clone(),
                    fullchip_leakage::service::Json::Num(*value as f64),
                );
            }
            let doc = fullchip_leakage::service::Json::Obj(
                [(
                    "counters".to_owned(),
                    fullchip_leakage::service::Json::Obj(counters),
                )]
                .into_iter()
                .collect(),
            );
            let mut text = String::new();
            doc.write(&mut text);
            text.push('\n');
            std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
