//! Full-chip statistical leakage estimation with within-die correlation.
//!
//! This is the facade crate of the workspace — a single dependency that
//! re-exports every layer of the reproduction of Heloue, Azizi & Najm,
//! *"Modeling and Estimation of Full-Chip Leakage Current Considering
//! Within-Die Correlation"* (DAC 2007):
//!
//! * [`numeric`] — self-contained numerical kernels;
//! * [`process`] — D2D/WID variation, spatial correlation, field sampling;
//! * [`sim`] — transistor-level subthreshold leakage solver;
//! * [`cells`] — the 62-cell library and its statistical characterization;
//! * [`core`] — the Random Gate model and the O(n²)/O(n)/O(1) estimators;
//! * [`netlist`] — random circuits, placement, synthetic ISCAS85 suite;
//! * [`montecarlo`] — full-chip Monte-Carlo cross-checks.
//!
//! # Quickstart
//!
//! ```no_run
//! use fullchip_leakage::prelude::*;
//!
//! // 1. Technology + characterized library (shared across designs).
//! let tech = Technology::cmos90();
//! let lib = CellLibrary::standard_62();
//! let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
//!
//! // 2. High-level characteristics of the candidate design (early mode).
//! let chars = HighLevelCharacteristics::builder()
//!     .histogram(UsageHistogram::uniform(62)?)
//!     .n_cells(100_000)
//!     .die_dimensions(1_000.0, 1_000.0)
//!     .build()?;
//!
//! // 3. Estimate, in O(1) via the polar integral.
//! let wid = TentCorrelation::new(200.0)?;
//! let est = ChipLeakageEstimator::new(&charlib, &tech, chars, wid)?;
//! let e = est.estimate_polar_1d()?;
//! println!("full-chip leakage: {:.3e} ± {:.3e} A", e.mean, e.std());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use leakage_cells as cells;
pub use leakage_core as core;
pub use leakage_montecarlo as montecarlo;
pub use leakage_netlist as netlist;
pub use leakage_numeric as numeric;
pub use leakage_obs as obs;
pub use leakage_process as process;
pub use leakage_service as service;
pub use leakage_sim as sim;

/// Builds a late-mode estimator directly from a placed design: extracts
/// the high-level characteristics and binds them to the characterized
/// library and correlation model in one call.
///
/// # Errors
///
/// Propagates extraction and Random-Gate construction failures.
///
/// # Example
///
/// ```no_run
/// # use fullchip_leakage::prelude::*;
/// # use rand::SeedableRng;
/// let tech = Technology::cmos90();
/// let lib = CellLibrary::standard_62();
/// let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let circuit = RandomCircuitGenerator::new(UsageHistogram::uniform(62)?)
///     .generate_exact(1_000, &mut rng)?;
/// let placed = place(&circuit, &lib, PlacementStyle::RowMajor, 0.7)?;
/// let est = fullchip_leakage::late_mode_estimator(
///     &charlib, &tech, &placed, TentCorrelation::new(100.0)?, 0.5,
/// )?;
/// println!("{:.3e} A", est.estimate_linear()?.mean);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn late_mode_estimator<C: leakage_process::SpatialCorrelation>(
    charlib: &leakage_cells::model::CharacterizedLibrary,
    tech: &leakage_process::Technology,
    placed: &leakage_netlist::PlacedCircuit,
    wid: C,
    signal_probability: f64,
) -> Result<leakage_core::ChipLeakageEstimator<C>, leakage_netlist::NetlistError> {
    let chars = leakage_netlist::extract::extract_characteristics(
        placed,
        charlib.len(),
        signal_probability,
    )?;
    Ok(leakage_core::ChipLeakageEstimator::new(
        charlib, tech, chars, wid,
    )?)
}

/// One-import convenience prelude covering the common flow.
pub mod prelude {
    pub use leakage_cells::charax::{CharMethod, Characterizer};
    pub use leakage_cells::corrmap::CorrelationPolicy;
    pub use leakage_cells::library::{CellClass, CellLibrary};
    pub use leakage_cells::{CellId, LeakageTriplet, UsageHistogram};
    pub use leakage_core::estimator::{
        exact_placed_stats, EstimatorMethod, LeakageEstimate, PlacedGate,
    };
    pub use leakage_core::pairwise::PairwiseCovariance;
    pub use leakage_core::{
        ChipLeakageEstimator, HighLevelCharacteristics, LeakageDistribution, Parallelism,
        RandomGate,
    };
    pub use leakage_montecarlo::{ChipSampler, ChipSamplerBuilder};
    pub use leakage_netlist::generate::RandomCircuitGenerator;
    pub use leakage_netlist::placement::{place, place_in_die, PlacementStyle};
    pub use leakage_netlist::{Circuit, PlacedCircuit};
    pub use leakage_process::correlation::{
        ExponentialCorrelation, GaussianCorrelation, SpatialCorrelation, SphericalCorrelation,
        TentCorrelation, TotalCorrelation,
    };
    pub use leakage_process::{ParameterVariation, Technology};
}
