//! End-to-end integration tests spanning every crate: characterize the
//! real 62-cell library once, then drive the full estimation flows the
//! paper describes (early mode, late mode, O(n²)/O(n)/O(1) consistency,
//! placement independence, Monte-Carlo agreement).

use fullchip_leakage::cells::corrmap::CorrelationPolicy;
use fullchip_leakage::cells::model::CharacterizedLibrary;
use fullchip_leakage::netlist::extract::extract_characteristics;
use fullchip_leakage::netlist::iscas85;
use fullchip_leakage::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Ctx {
    tech: Technology,
    lib: CellLibrary,
    charlib: CharacterizedLibrary,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let tech = Technology::cmos90();
        let lib = CellLibrary::standard_62();
        let charlib = Characterizer::new(&tech)
            .characterize_library(&lib, CharMethod::Analytical { sweep_points: 9 })
            .expect("characterization");
        Ctx { tech, lib, charlib }
    })
}

fn wid() -> TentCorrelation {
    TentCorrelation::new(100.0).expect("static")
}

#[test]
fn full_library_characterizes_with_tight_fits() {
    let ctx = ctx();
    assert_eq!(ctx.charlib.len(), 62);
    for cell in &ctx.charlib.cells {
        for s in &cell.states {
            assert!(s.mean > 0.0, "{} state {}", cell.name, s.state);
            assert!(s.std > 0.0);
            assert!(
                s.fit_r2.expect("analytical") > 0.99,
                "{} state {}: r2 {:?}",
                cell.name,
                s.state,
                s.fit_r2
            );
        }
    }
}

#[test]
fn early_mode_estimate_is_sane() {
    let ctx = ctx();
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(62).expect("hist"))
        .n_cells(10_000)
        .die_dimensions(400.0, 400.0)
        .build()
        .expect("chars");
    let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, wid()).expect("est");
    let e = est.estimate_linear().expect("linear");
    // mean = n * per-gate mean
    assert!(e.mean > 0.0 && e.std() > 0.0);
    let per_gate = est.random_gate().mean();
    assert!((e.mean - 10_000.0 * per_gate).abs() / e.mean < 1e-12);
    // correlated variance must exceed the independent-gate floor and stay
    // below the fully-correlated ceiling
    let floor = 10_000.0 * est.random_gate().variance();
    let ceil = (10_000.0f64 * est.random_gate().std()).powi(2);
    assert!(e.variance > floor, "variance above iid floor");
    assert!(e.variance < ceil, "variance below full-correlation ceiling");
}

#[test]
fn three_estimators_agree_on_large_design() {
    let ctx = ctx();
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(62).expect("hist"))
        .n_cells(40_000)
        .die_dimensions(600.0, 600.0)
        .build()
        .expect("chars");
    let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, wid()).expect("est");
    let lin = est.estimate_linear().expect("linear");
    let i2d = est.estimate_integral_2d().expect("2d");
    let p1d = est.estimate_polar_1d().expect("polar");
    let rel = |a: f64, b: f64| (a / b - 1.0).abs();
    assert!(
        rel(i2d.std(), lin.std()) < 0.01,
        "2d vs linear: {}",
        rel(i2d.std(), lin.std())
    );
    assert!(rel(p1d.std(), lin.std()) < 0.01, "polar vs linear");
    assert!(
        rel(p1d.std(), i2d.std()) < 1e-4,
        "polar vs 2d (same continuum limit)"
    );
    assert_eq!(lin.mean, i2d.mean);
}

#[test]
fn late_mode_extraction_matches_true_leakage() {
    // A compact Table-1-style check on the smallest benchmark.
    let ctx = ctx();
    let spec = iscas85::TABLE1_SPECS
        .iter()
        .find(|s| s.name == "c432")
        .expect("c432");
    let placed = iscas85::build(spec, &ctx.lib).expect("build");
    let chars = extract_characteristics(&placed, ctx.lib.len(), 0.5).expect("extract");
    let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, wid())
        .expect("est")
        .estimate_linear()
        .expect("linear");
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let w = wid();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * w.rho(d);
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &placed.support(),
        0.5,
        CorrelationPolicy::Exact,
    )
    .expect("pairwise");
    let truth = exact_placed_stats(placed.gates(), &pairwise, &rho_total);
    let mean_err = (est.mean / truth.mean - 1.0).abs();
    let std_err = (est.std() / truth.std() - 1.0).abs();
    assert!(mean_err < 0.01, "mean err {mean_err}");
    assert!(std_err < 0.05, "std err {std_err}");
}

#[test]
fn placement_style_barely_moves_true_leakage() {
    // The RG thesis: designs sharing the characteristics have ~the same
    // leakage. Reshuffling or clustering the placement of one design must
    // not move its true std much (same histogram, same die).
    let ctx = ctx();
    let hist = UsageHistogram::uniform(62).expect("hist");
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let circuit = RandomCircuitGenerator::new(hist)
        .generate_exact(900, &mut rng)
        .expect("gen");
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let w = wid();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * w.rho(d);
    let mut stds = Vec::new();
    for style in [
        PlacementStyle::RowMajor,
        PlacementStyle::RandomShuffle { seed: 1 },
        PlacementStyle::RandomShuffle { seed: 2 },
        PlacementStyle::Clustered,
    ] {
        let placed = place(&circuit, &ctx.lib, style, 0.7).expect("place");
        let pairwise = PairwiseCovariance::new(
            &ctx.charlib,
            &placed.support(),
            0.5,
            CorrelationPolicy::Exact,
        )
        .expect("pairwise");
        stds.push(exact_placed_stats(placed.gates(), &pairwise, &rho_total).std());
    }
    let lo = stds.iter().fold(f64::INFINITY, |m, v| m.min(*v));
    let hi = stds.iter().fold(0.0_f64, |m, v| m.max(*v));
    assert!(
        hi / lo < 1.05,
        "placement styles move σ by {:.2}% ({stds:?})",
        (hi / lo - 1.0) * 100.0
    );
}

#[test]
fn monte_carlo_confirms_analytic_estimate() {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(62).expect("hist");
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let circuit = RandomCircuitGenerator::new(hist.clone())
        .generate_exact(600, &mut rng)
        .expect("gen");
    let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
    let w = wid();
    let chars = HighLevelCharacteristics::builder()
        .histogram(hist)
        .n_cells(placed.n_gates())
        .die_dimensions(placed.width(), placed.height())
        .build()
        .expect("chars");
    let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, &w)
        .expect("est")
        .estimate_linear()
        .expect("linear");
    let sampler = ChipSamplerBuilder::new(&placed, &ctx.charlib, &ctx.tech, &w)
        .build()
        .expect("sampler");
    let stats = sampler.run(3_000, &mut rng);
    let mean_err = (est.mean / stats.mean() - 1.0).abs();
    let std_err = (est.std() / stats.sample_std() - 1.0).abs();
    assert!(mean_err < 0.02, "mean err {mean_err}");
    assert!(std_err < 0.10, "std err {std_err}");
}

#[test]
fn vt_correction_scales_only_the_mean() {
    let ctx = ctx();
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(62).expect("hist"))
        .n_cells(5_000)
        .die_dimensions(300.0, 300.0)
        .build()
        .expect("chars");
    let plain = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars.clone(), wid())
        .expect("est")
        .estimate_linear()
        .expect("linear");
    let corrected = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, wid())
        .expect("est")
        .with_vt_correction(&ctx.tech)
        .estimate_linear()
        .expect("linear");
    assert!(corrected.mean > plain.mean * 1.02);
    assert_eq!(corrected.variance, plain.variance);
}

#[test]
fn late_mode_facade_matches_manual_flow() {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(62).expect("hist");
    let mut rng = rand::rngs::StdRng::seed_from_u64(33);
    let circuit = RandomCircuitGenerator::new(hist)
        .generate_exact(300, &mut rng)
        .expect("gen");
    let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
    let facade =
        fullchip_leakage::late_mode_estimator(&ctx.charlib, &ctx.tech, &placed, wid(), 0.5)
            .expect("facade")
            .estimate_linear()
            .expect("estimate");
    let manual_chars = extract_characteristics(&placed, ctx.lib.len(), 0.5).expect("extract");
    let manual = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, manual_chars, wid())
        .expect("estimator")
        .estimate_linear()
        .expect("estimate");
    assert_eq!(facade.mean, manual.mean);
    assert_eq!(facade.variance, manual.variance);
}

#[test]
fn simplified_policy_close_to_exact_full_library() {
    // §3.1.2 on the real library: < 2.8 % error in the std.
    let ctx = ctx();
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(62).expect("hist"))
        .n_cells(2_500)
        .die_dimensions(200.0, 200.0)
        .build()
        .expect("chars");
    let exact = ChipLeakageEstimator::with_policy(
        &ctx.charlib,
        &ctx.tech,
        chars.clone(),
        wid(),
        CorrelationPolicy::Exact,
    )
    .expect("est")
    .estimate_linear()
    .expect("linear");
    let simple = ChipLeakageEstimator::with_policy(
        &ctx.charlib,
        &ctx.tech,
        chars,
        wid(),
        CorrelationPolicy::Simplified,
    )
    .expect("est")
    .estimate_linear()
    .expect("linear");
    let err = (simple.std() / exact.std() - 1.0).abs();
    assert!(err < 0.028, "simplified vs exact σ error {err}");
}
