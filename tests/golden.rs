//! Golden regression tests pinning the headline numbers of the published
//! experiment tables (`results/table1_iscas85.md`,
//! `results/fig7_integration_error.md`). The whole flow is deterministic —
//! analytical characterization, seeded suite construction, fixed
//! quadrature — so these values must reproduce to the precision they were
//! published at. A drift here means an estimator, the characterization, or
//! the ISCAS85 suite changed behaviour, not just a flaky run.

use fullchip_leakage::cells::model::CharacterizedLibrary;
use fullchip_leakage::core::estimator::{
    exact_placed_mean, exact_placed_stats, integral_2d_variance, linear_time_variance,
    polar_1d_variance,
};
use fullchip_leakage::netlist::extract::extract_characteristics;
use fullchip_leakage::netlist::iscas85::build_suite;
use fullchip_leakage::prelude::*;
use fullchip_leakage::process::field::GridGeometry;

/// Canonical experiment configuration (mirrors `leakage_bench::context`):
/// cmos90, the 62-cell library, 13-point analytical fits, tent WID
/// correlation with a 100 µm cutoff, signal probability 0.5.
struct Golden {
    tech: Technology,
    lib: CellLibrary,
    charlib: CharacterizedLibrary,
}

const SIGNAL_P: f64 = 0.5;

fn golden() -> Golden {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charlib = Characterizer::new(&tech)
        .characterize_library(&lib, CharMethod::Analytical { sweep_points: 13 })
        .expect("characterization");
    Golden { tech, lib, charlib }
}

fn wid() -> TentCorrelation {
    TentCorrelation::new(100.0).expect("tent")
}

fn assert_rel(actual: f64, pinned: f64, tol: f64, what: &str) {
    let rel = (actual - pinned).abs() / pinned.abs();
    assert!(
        rel < tol,
        "{what}: {actual:e} drifted from pinned {pinned:e} (rel {rel:e} ≥ {tol:e})"
    );
}

/// Table 1 rows small enough for the O(n²) reference in a debug test run:
/// (circuit, gates, true σ, RG σ, σ err %). Values as published in
/// `results/table1_iscas85.md`. Unlike Fig. 7, the suite's gate mix comes
/// from a seeded `StdRng` stream, so the exact σ digits shift by ~0.2%
/// when the `rand` implementation behind that stream changes; the pins
/// here use a 0.5% band that holds across rand versions while still
/// catching any real estimator or characterization drift.
const TABLE1_SMALL: &[(&str, usize, f64, f64, f64)] = &[
    ("c432", 160, 2.261e-7, 2.270e-7, 0.36),
    ("c499", 202, 5.589e-7, 5.656e-7, 1.19),
    ("c880", 383, 5.190e-7, 5.192e-7, 0.03),
    ("c1355", 546, 1.419e-6, 1.427e-6, 0.55),
    ("c1908", 880, 2.192e-6, 2.196e-6, 0.17),
];

/// Gate counts of the full published suite, including the circuits whose
/// O(n²) reference is too slow for a unit test.
const TABLE1_GATES: &[(&str, usize)] = &[
    ("c432", 160),
    ("c499", 202),
    ("c880", 383),
    ("c1355", 546),
    ("c1908", 880),
    ("c2670", 1193),
    ("c5315", 2307),
    ("c6288", 2416),
    ("c7552", 3512),
];

#[test]
fn table1_iscas85_headline_numbers_hold() {
    let g = golden();
    let wid = wid();
    let rho_c = g.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let suite = build_suite(&g.lib).expect("suite");

    for &(name, gates, _, _, _) in TABLE1_SMALL {
        let placed = suite
            .iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("{name} missing from suite"));
        assert_eq!(placed.n_gates(), gates, "{name} gate count");

        let chars = extract_characteristics(placed, g.lib.len(), SIGNAL_P).expect("extraction");
        let est = ChipLeakageEstimator::new(&g.charlib, &g.tech, chars, &wid)
            .expect("estimator")
            .estimate_linear()
            .expect("linear");
        let pairwise = PairwiseCovariance::new(
            &g.charlib,
            &placed.support(),
            SIGNAL_P,
            CorrelationPolicy::Exact,
        )
        .expect("pairwise");
        let truth = exact_placed_stats(placed.gates(), &pairwise, &rho_total);

        let (_, _, true_sigma, rg_sigma, sigma_err) = TABLE1_SMALL
            .iter()
            .copied()
            .find(|r| r.0 == name)
            .expect("row");
        assert_rel(truth.std(), true_sigma, 5e-3, &format!("{name} true σ"));
        assert_rel(est.std(), rg_sigma, 5e-3, &format!("{name} RG σ"));
        // The σ error itself moves with the gate mix; pin its neighbourhood
        // and the paper's headline bound (all errors ≈ 1% or less).
        let err = (est.std() / truth.std() - 1.0).abs() * 100.0;
        assert!(
            (err - sigma_err).abs() < 0.6,
            "{name} σ err {err:.4}% drifted from pinned {sigma_err}%"
        );
        assert!(
            err < 2.0,
            "{name} σ err {err:.4}% breaks the headline bound"
        );
        // The headline claim of Table 1: RG mean errors are truly
        // negligible (published as 0.000%).
        let mean_err = (est.mean / exact_placed_mean(placed.gates(), &pairwise) - 1.0).abs();
        assert!(mean_err < 1e-5, "{name} μ err {:.5}%", mean_err * 100.0);
    }
}

#[test]
fn table1_suite_gate_counts_hold() {
    let lib = CellLibrary::standard_62();
    let suite = build_suite(&lib).expect("suite");
    for &(name, gates) in TABLE1_GATES {
        let placed = suite
            .iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("{name} missing from suite"));
        assert_eq!(placed.n_gates(), gates, "{name} gate count");
    }
}

/// Fig. 7 rows exercised here: (grid side, σ linear, 2-D err %, polar
/// err % or NaN when the method refuses). Values as published in
/// `results/fig7_integration_error.md` (5 significant digits / 4
/// decimals). The million-gate row is omitted on runtime grounds only.
const FIG7: &[(usize, f64, f64, f64)] = &[
    (10, 4.4881e-7, 5.7771, f64::NAN),
    (32, 3.9217e-6, 0.7601, f64::NAN),
    (71, 1.6862e-5, 0.2010, 0.2010),
    (100, 3.2310e-5, 0.1084, 0.1084),
];

#[test]
fn fig7_integration_error_headline_numbers_hold() {
    let g = golden();
    let wid = wid();
    let rho_c = g.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let hist = UsageHistogram::uniform(g.lib.len()).expect("hist");
    let rg = RandomGate::new(&g.charlib, &hist, SIGNAL_P, CorrelationPolicy::Exact)
        .expect("random gate");

    for &(side, sigma_lin, err_2d, err_1d) in FIG7 {
        let n = side * side;
        let grid = GridGeometry::new(side, side, 3.0, 3.0).expect("grid");
        let v_lin = linear_time_variance(&rg, &grid, &rho_total);
        assert_rel(v_lin.sqrt(), sigma_lin, 1e-4, &format!("n={n} σ linear"));

        let v_2d = integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 32, 8);
        let e_2d = ((v_2d.sqrt() / v_lin.sqrt()) - 1.0).abs() * 100.0;
        assert!(
            (e_2d - err_2d).abs() < 1e-3,
            "n={n} 2-D err {e_2d:.4}% drifted from pinned {err_2d}%"
        );

        let polar = polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 64, 16);
        if err_1d.is_nan() {
            // D_max = 100 µm exceeds the die: polar must refuse, exactly as
            // the published table's "n/a" rows record.
            assert!(polar.is_err(), "n={n} polar should be inapplicable");
        } else {
            let e_1d = ((polar.expect("polar").sqrt() / v_lin.sqrt()) - 1.0).abs() * 100.0;
            assert!(
                (e_1d - err_1d).abs() < 1e-3,
                "n={n} polar err {e_1d:.4}% drifted from pinned {err_1d}%"
            );
        }
    }
}
