//! Cache-semantics properties for the batch estimation service.
//!
//! The artifact store must be an invisible optimisation: every response
//! is a pure function of its own request line, independent of
//!
//! - whether the cache is enabled at all,
//! - which jobs ran before it (hit vs cold miss),
//! - how the stream is ordered, and
//! - how many workers drain the queue.
//!
//! The oracle for each job template is a fresh single-worker service
//! answering that one line with a cold cache. A random job stream —
//! any mix, any order, any duplication — must reproduce the oracle
//! byte-for-byte at every position, with caching on (arbitrary worker
//! count) and with caching off.

use fullchip_leakage::service::{CacheConfig, Service, ServiceConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Pure-math job templates (no montecarlo: RNG streams are pinned
/// elsewhere; no stats/shutdown: those are deliberately stateful).
/// Small sweeps keep characterization cheap; two distinct corners
/// (cmos90/3 and cmos65/5) exercise cross-corner cache keying.
const POOL: &[&str] = &[
    r#"{"kind":"ping"}"#,
    r#"{"kind":"characterize","sweep_points":3}"#,
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3}"#,
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3,"method":"linear","metrics":true}"#,
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3,"method":"integral2d","dmax":50,"p":0.3}"#,
    r#"{"kind":"estimate","cells":600,"die":[150,150],"sweep_points":5,"tech":"cmos65","mix":"control"}"#,
    r#"{"kind":"estimate","cells":16,"die":[100,100],"sweep_points":3,"mode":"resilient"}"#,
    r#"{"kind":"estimate","cells":400,"die":[100,100],"sweep_points":3,"method":"exact-lattice","mode":"strict"}"#,
];

fn request(template: usize) -> String {
    format!(
        r#"{{"v":1,"id":{template},"job":{}}}"#,
        POOL.get(template).expect("template index in pool")
    )
}

/// Cold-cache single-worker answer for each template, computed once.
fn oracle() -> &'static Vec<String> {
    static ORACLE: OnceLock<Vec<String>> = OnceLock::new();
    ORACLE.get_or_init(|| {
        (0..POOL.len())
            .map(|t| {
                let service = Service::new(ServiceConfig::default());
                let (line, shutdown) = service.handle_line(&request(t));
                assert!(!shutdown, "pool jobs never stop the stream");
                line
            })
            .collect()
    })
}

fn serve(sequence: &[usize], config: ServiceConfig) -> Vec<String> {
    let input: String = sequence.iter().map(|&t| request(t) + "\n").collect();
    let mut out: Vec<u8> = Vec::new();
    Service::new(config)
        .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
        .expect("serve stream");
    String::from_utf8(out)
        .expect("UTF-8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

fn assert_matches_oracle(sequence: &[usize], served: &[String]) {
    assert_eq!(served.len(), sequence.len(), "one response per request");
    for (i, (&t, line)) in sequence.iter().zip(served).enumerate() {
        assert_eq!(
            line,
            &oracle()[t],
            "position {i} (template {t}) diverged from the cold-cache oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cache hits, misses, and evictions never change a byte: any job
    /// stream reproduces the cold-cache oracle at every position, under
    /// any worker count.
    #[test]
    fn responses_are_pure_functions_of_their_request(
        sequence in proptest::collection::vec(0usize..POOL.len(), 2..8),
        workers in 1usize..=4,
    ) {
        let served = serve(&sequence, ServiceConfig { workers, ..ServiceConfig::default() });
        assert_matches_oracle(&sequence, &served);
    }

    /// Disabling the store entirely (every request recomputes) is
    /// byte-identical to serving with it on.
    #[test]
    fn disabled_cache_is_bit_identical(
        sequence in proptest::collection::vec(0usize..POOL.len(), 2..6),
    ) {
        let cold = ServiceConfig {
            cache: CacheConfig { enabled: false, capacity: None },
            ..ServiceConfig::default()
        };
        let served = serve(&sequence, cold);
        assert_matches_oracle(&sequence, &served);
    }

    /// A capacity-1 store thrashes (every corner switch evicts) but the
    /// responses still match the oracle — eviction is invisible too.
    #[test]
    fn tiny_capacity_evictions_are_invisible(
        sequence in proptest::collection::vec(0usize..POOL.len(), 2..6),
    ) {
        let tiny = ServiceConfig {
            cache: CacheConfig { enabled: true, capacity: Some(1) },
            ..ServiceConfig::default()
        };
        let served = serve(&sequence, tiny);
        assert_matches_oracle(&sequence, &served);
    }
}

/// Reordering a stream permutes the responses with it: position `i` of
/// the permuted stream answers the job that moved there, byte-for-byte.
/// (A deterministic Fisher–Yates keeps the permutation reproducible.)
#[test]
fn reordering_jobs_never_changes_an_individual_response() {
    let base: Vec<usize> = (0..POOL.len()).chain(2..POOL.len()).collect();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut step = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..4 {
        let mut sequence = base.clone();
        for i in (1..sequence.len()).rev() {
            let j = (step() % (i as u64 + 1)) as usize;
            sequence.swap(i, j);
        }
        let served = serve(
            &sequence,
            ServiceConfig {
                workers: 1 + round % 3,
                ..ServiceConfig::default()
            },
        );
        assert_matches_oracle(&sequence, &served);
    }
}
