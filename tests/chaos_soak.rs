//! Chaos soak for the `chipleakd` overload-survival layer (DESIGN.md
//! §16): drive the real server while a seeded [`ChaosPlan`] crashes
//! workers, stalls jobs past their deadlines, and slows client drains —
//! then hold it to the survival invariants:
//!
//! - **zero fleet deaths** — `serve` returns `Ok` through every storm;
//! - **exactly once** — every request line is answered at its sequence
//!   position with a typed outcome (`ok`, `internal`,
//!   `deadline_exceeded`), never dropped, never duplicated;
//! - **survivor byte-identity** — responses to unfaulted requests are
//!   byte-identical to a clean run, at 1 worker and at 4;
//! - **goldens unaffected** — the PR 7 protocol transcripts replay
//!   byte-for-byte with admission control and default deadlines armed.
//!
//! Every fault decision is a pure function of `(seed, seq)` (see
//! `crates/fault/src/chaos.rs`), so each storm reproduces exactly and
//! is identical at every worker count.

use fullchip_leakage::service::{FakeClock, Service, ServiceConfig};
use leakage_fault::{ChaosPlan, FaultPlan};
use std::sync::Arc;

const SOAK_SEED: u64 = 0xC4A0_5EED;
const REQUESTS: u64 = 40;

/// A cheap request mix: pings interleaved with histogram-only estimates
/// that share one characterized library. `deadline_ms` comes from the
/// caller so the stall scenario can give doomed requests a tight budget
/// and survivors an unreachable one.
fn request_line(seq: u64, deadline_ms: Option<u64>) -> String {
    let id = seq + 1;
    let job = if seq.is_multiple_of(3) {
        r#"{"kind":"ping"}"#.to_owned()
    } else {
        format!(
            r#"{{"kind":"estimate","cells":{},"die":[150,150],"sweep_points":3}}"#,
            600 + 10 * (seq % 4)
        )
    };
    match deadline_ms {
        Some(ms) => format!(r#"{{"v":1,"id":{id},"job":{job},"deadline_ms":{ms}}}"#),
        None => format!(r#"{{"v":1,"id":{id},"job":{job}}}"#),
    }
}

fn stream(deadline_for: impl Fn(u64) -> Option<u64>) -> String {
    (0..REQUESTS)
        .map(|seq| request_line(seq, deadline_for(seq)) + "\n")
        .collect()
}

/// Serves `input` and returns the response lines plus the fleet
/// counters. Reaching the return at all is the zero-fleet-deaths
/// assertion: an unsupervised panic would propagate out of the server's
/// scoped threads and abort the test.
fn serve(service: &Service, input: &str) -> (Vec<String>, std::collections::BTreeMap<String, u64>) {
    let mut out: Vec<u8> = Vec::new();
    service
        .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
        .expect("the fleet survives the storm");
    let lines = String::from_utf8(out)
        .expect("UTF-8 responses")
        .lines()
        .map(str::to_owned)
        .collect();
    (lines, service.fleet_snapshot().counters)
}

/// Exactly-once: one response per request, in seq order, ids echoed.
fn assert_answered_exactly_once(lines: &[String]) {
    assert_eq!(lines.len() as u64, REQUESTS, "one response per request");
    for (i, line) in lines.iter().enumerate() {
        let prefix = format!("{{\"v\":1,\"id\":{},", i + 1);
        assert!(
            line.starts_with(&prefix),
            "response {i} out of order or id not echoed: {line}"
        );
    }
}

/// Byte-equality with a CI-friendly failure mode: on mismatch the actual
/// transcript is written to `target/chaos-diff/NAME.actual.ndjson` (the
/// chaos-soak job uploads that directory as an artifact) before panicking.
fn assert_transcript_eq(name: &str, expected: &str, actual: &str, context: &str) {
    if expected == actual {
        return;
    }
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/chaos-diff");
    std::fs::create_dir_all(&dir).expect("create diff dir");
    let path = dir.join(format!("{name}.actual.ndjson"));
    std::fs::write(&path, actual).expect("write actual transcript");
    panic!("{context} (actual saved to {path:?})");
}

fn kind_of(line: &str) -> Option<&str> {
    let start = line.find("\"err\":{\"kind\":\"")? + "\"err\":{\"kind\":\"".len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

#[test]
fn panic_storm_answers_every_request_once_and_survivors_are_byte_identical() {
    let plan = FaultPlan::new(SOAK_SEED).chaos(0.3, 0.0);
    let crashed = plan.selected_panics(REQUESTS);
    assert!(
        !crashed.is_empty() && (crashed.len() as u64) < REQUESTS,
        "seed must produce a partial storm, got {} of {REQUESTS}",
        crashed.len()
    );
    let input = stream(|_| None);
    let (clean, _) = serve(&Service::new(ServiceConfig::default()), &input);

    let mut transcripts = Vec::new();
    for workers in [1usize, 4] {
        let service = Service::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
        .with_fault_hook(Arc::new(move |seq| {
            if plan.panics(seq) {
                panic!("chaos: injected worker crash at seq {seq}");
            }
        }));
        let (lines, counters) = serve(&service, &input);
        assert_answered_exactly_once(&lines);
        for (seq, line) in lines.iter().enumerate() {
            if plan.panics(seq as u64) {
                assert_eq!(kind_of(line), Some("internal"), "crashed seq {seq}: {line}");
                assert!(
                    line.contains("worker respawned"),
                    "crashed seq {seq}: {line}"
                );
            } else {
                assert_eq!(line, &clean[seq], "survivor {seq} diverged from clean run");
            }
        }
        assert_eq!(
            counters.get("service.supervisor.respawns"),
            Some(&(crashed.len() as u64)),
            "one respawn per crashed request"
        );
        transcripts.push(lines.join("\n"));
    }
    assert_transcript_eq(
        "panic_storm.workers4",
        &transcripts[0],
        &transcripts[1],
        "the storm transcript must be byte-identical at 1 and 4 workers",
    );
}

#[test]
fn stall_storm_expires_exactly_the_stalled_requests() {
    let plan = FaultPlan::new(SOAK_SEED).chaos(0.0, 0.25);
    let stalled = plan.selected_stalls(REQUESTS);
    assert!(
        !stalled.is_empty() && (stalled.len() as u64) < REQUESTS,
        "seed must produce a partial storm, got {} of {REQUESTS}",
        stalled.len()
    );
    // Doomed requests get a 1 ms budget, survivors an hour. A stall
    // advances the clock 10 s, so a stalled request is past its own
    // deadline at its first checkpoint, while 40 stalls' cumulative
    // 400 s cannot touch an hour-long budget.
    let deadline_for = |seq: u64| Some(if plan.stalls(seq) { 1 } else { 3_600_000 });
    let input = stream(deadline_for);
    // Clean run on the same (never-advanced) clock type: every request
    // beats its deadline, including the 1 ms ones.
    let (clean, _) = serve(
        &Service::new(ServiceConfig::default()).with_clock(Arc::new(FakeClock::new(0))),
        &input,
    );

    for workers in [1usize, 4] {
        let clock = Arc::new(FakeClock::new(0));
        let hook_clock = Arc::clone(&clock);
        let service = Service::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
        .with_clock(clock)
        .with_fault_hook(Arc::new(move |seq| {
            if plan.stalls(seq) {
                hook_clock.advance(10_000_000_000);
            }
        }));
        let (lines, counters) = serve(&service, &input);
        assert_answered_exactly_once(&lines);
        for (seq, line) in lines.iter().enumerate() {
            if plan.stalls(seq as u64) {
                // Whether the deadline died in-queue or at a checkpoint
                // depends on worker interleaving; the typed kind does not.
                assert_eq!(
                    kind_of(line),
                    Some("deadline_exceeded"),
                    "stalled seq {seq}: {line}"
                );
            } else {
                assert_eq!(line, &clean[seq], "survivor {seq} diverged from clean run");
            }
        }
        let expired = counters.get("service.deadline.queue_expired").unwrap_or(&0)
            + counters.get("service.deadline.cancelled").unwrap_or(&0);
        assert_eq!(
            expired,
            stalled.len() as u64,
            "every stall expires exactly once, in-queue or cooperatively"
        );
    }
}

#[test]
fn combined_storm_types_every_outcome_and_never_drops_a_request() {
    let plan = FaultPlan::new(SOAK_SEED).chaos(0.25, 0.25);
    let deadline_for = |seq: u64| Some(if plan.stalls(seq) { 1 } else { 3_600_000 });
    let input = stream(deadline_for);
    let (clean, _) = serve(
        &Service::new(ServiceConfig::default()).with_clock(Arc::new(FakeClock::new(0))),
        &input,
    );

    for workers in [1usize, 4] {
        let clock = Arc::new(FakeClock::new(0));
        let hook_clock = Arc::clone(&clock);
        let service = Service::new(ServiceConfig {
            workers,
            // Arm admission control too; the queue is never saturated
            // here, so it must not change a byte.
            queue_cap: Some(1024),
            ..ServiceConfig::default()
        })
        .with_clock(clock)
        .with_fault_hook(Arc::new(move |seq| {
            if plan.stalls(seq) {
                hook_clock.advance(10_000_000_000);
            }
            if plan.panics(seq) {
                panic!("chaos: injected worker crash at seq {seq}");
            }
        }));
        let (lines, counters) = serve(&service, &input);
        assert_answered_exactly_once(&lines);
        let mut respawn_floor = 0u64;
        for (seq, line) in lines.iter().enumerate() {
            let seq_u = seq as u64;
            match (plan.panics(seq_u), plan.stalls(seq_u)) {
                (true, false) => {
                    assert_eq!(kind_of(line), Some("internal"), "seq {seq}: {line}");
                    respawn_floor += 1;
                }
                (false, true) => {
                    assert_eq!(
                        kind_of(line),
                        Some("deadline_exceeded"),
                        "seq {seq}: {line}"
                    );
                }
                (true, true) => {
                    // A doubly-faulted request may die of its deadline
                    // in-queue before the worker can crash on it; either
                    // way the outcome is typed.
                    let kind = kind_of(line);
                    assert!(
                        kind == Some("internal") || kind == Some("deadline_exceeded"),
                        "seq {seq}: {line}"
                    );
                }
                (false, false) => {
                    assert_eq!(line, &clean[seq], "survivor {seq} diverged from clean run");
                }
            }
        }
        let respawns = *counters.get("service.supervisor.respawns").unwrap_or(&0);
        let panic_ceiling = plan.selected_panics(REQUESTS).len() as u64;
        assert!(
            (respawn_floor..=panic_ceiling).contains(&respawns),
            "respawns {respawns} outside [{respawn_floor}, {panic_ceiling}]"
        );
        assert_eq!(*counters.get("service.shed.overload").unwrap_or(&0), 0);
    }
}

/// Slow-client scenario (unix sockets only): the client drains its
/// responses on a seeded stop-and-go schedule while the server's write
/// timeout bounds how long any single stalled write can hold the
/// connection thread. The session must still complete cleanly with
/// every response intact and in order.
#[cfg(unix)]
#[test]
fn slow_client_drain_completes_under_write_timeouts() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;

    const SLOW_REQUESTS: u64 = 12;
    let plan: ChaosPlan = FaultPlan::new(SOAK_SEED).chaos(0.0, 0.0);
    let path = std::env::temp_dir().join(format!("chipleakd-chaos-{}.sock", std::process::id()));
    // A stale socket from a recycled pid would satisfy the exists-poll
    // below before the server thread replaces it; clear it up front so
    // the path only reappears once the listener is actually bound.
    let _ = std::fs::remove_file(&path);
    let service = Arc::new(Service::new(ServiceConfig {
        workers: 2,
        write_timeout_ms: Some(2_000),
        ..ServiceConfig::default()
    }));

    let server = {
        let service = Arc::clone(&service);
        let path = path.clone();
        std::thread::spawn(move || service.serve_unix(&path))
    };
    for _ in 0..500 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(path.exists(), "server never bound {path:?}");

    let mut stream = UnixStream::connect(&path).expect("connect");
    for seq in 0..SLOW_REQUESTS {
        writeln!(stream, "{}", request_line(seq, None)).expect("write request");
    }
    stream.flush().expect("flush requests");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    for k in 0..SLOW_REQUESTS {
        // Stop-and-go: pause before each read so the server's writes
        // back up against a sluggish consumer.
        std::thread::sleep(std::time::Duration::from_millis(
            plan.client_pause_ms(k, 20),
        ));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        assert!(
            line.starts_with(&format!("{{\"v\":1,\"id\":{},", k + 1)),
            "response {k} out of order: {line}"
        );
    }
    writeln!(stream, r#"{{"v":1,"id":99,"job":{{"kind":"shutdown"}}}}"#).expect("send shutdown");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read shutdown ack");
    assert!(line.contains("\"ok\""), "shutdown not acknowledged: {line}");
    server
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");
}

/// The PR 7 golden transcripts must replay byte-for-byte with the
/// overload features armed (bounded queue, default deadline on the
/// default `NullClock`): robustness machinery at rest is invisible.
#[test]
fn goldens_replay_unchanged_with_overload_features_armed() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/service");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dir).expect("golden dir exists") {
        let path = entry.expect("readable dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let Some(stem) = name.strip_suffix(".in.ndjson") else {
            continue;
        };
        let input = std::fs::read_to_string(&path).expect("read golden input");
        let expected = std::fs::read_to_string(path.with_file_name(format!("{stem}.out.ndjson")))
            .expect("read golden output");
        let service = Service::new(ServiceConfig {
            workers: 2,
            queue_cap: Some(4096),
            default_deadline_ms: Some(3_600_000),
            ..ServiceConfig::default()
        });
        let mut out: Vec<u8> = Vec::new();
        service
            .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
            .expect("serve golden");
        assert_transcript_eq(
            stem,
            &expected,
            &String::from_utf8(out).expect("UTF-8"),
            &format!("golden {stem} diverged with overload features armed"),
        );
        checked += 1;
    }
    assert!(checked > 0, "no golden transcripts found");
}
