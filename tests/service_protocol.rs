//! Golden protocol-transcript suite for `chipleakd`.
//!
//! Each `tests/golden/service/NAME.in.ndjson` is a recorded request
//! stream; `NAME.out.ndjson` is the byte-exact response stream the
//! server must produce for it — happy path, every estimation method,
//! resilient degradation, and the full typed-error taxonomy. The replay
//! runs three ways and demands identical bytes from each:
//!
//! - in-process [`Service`] with one worker (the reference ordering);
//! - in-process with four workers (pins the reorder buffer: worker
//!   count must never change a byte);
//! - the real `chipleakd` binary over stdin/stdout (pins the bin
//!   wiring).
//!
//! On mismatch the actual bytes are written to
//! `target/golden-diff/NAME.actual.ndjson` (CI uploads them as an
//! artifact) and the test prints the first differing line. Regenerate
//! intentionally with `UPDATE_GOLDENS=1 cargo test --test
//! service_protocol`.

use fullchip_leakage::service::{Service, ServiceConfig};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/service")
}

fn transcripts() -> Vec<(String, PathBuf, PathBuf)> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(golden_dir()).expect("golden dir exists") {
        let path = entry.expect("readable dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if let Some(stem) = name.strip_suffix(".in.ndjson") {
            let out = path.with_file_name(format!("{stem}.out.ndjson"));
            found.push((stem.to_owned(), path.clone(), out));
        }
    }
    found.sort();
    assert!(!found.is_empty(), "no golden transcripts found");
    found
}

fn serve_in_process(input: &str, workers: usize) -> String {
    let service = Service::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    let mut out: Vec<u8> = Vec::new();
    service
        .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
        .expect("serve transcript");
    String::from_utf8(out).expect("responses are UTF-8")
}

fn serve_via_binary(input: &str) -> String {
    use std::io::Write as _;
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_chipleakd"))
        .args(["--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn chipleakd");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("chipleakd exits");
    assert!(
        output.status.success(),
        "chipleakd failed: {}",
        output.status
    );
    String::from_utf8(output.stdout).expect("responses are UTF-8")
}

fn first_diff_line(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!(
                "first difference at line {}:\n  expected: {e}\n  actual:   {a}",
                i + 1
            );
        }
    }
    format!(
        "line count differs: expected {}, actual {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

fn check_or_update(name: &str, out_path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::write(out_path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(out_path)
        .unwrap_or_else(|_| panic!("missing golden {out_path:?}; run with UPDATE_GOLDENS=1"));
    if expected != actual {
        let diff_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/golden-diff");
        std::fs::create_dir_all(&diff_dir).expect("create diff dir");
        let actual_path = diff_dir.join(format!("{name}.actual.ndjson"));
        std::fs::write(&actual_path, actual).expect("write actual");
        panic!(
            "golden mismatch for {name} (actual saved to {actual_path:?})\n{}",
            first_diff_line(&expected, actual)
        );
    }
}

#[test]
fn transcripts_replay_byte_exact_serial() {
    for (name, in_path, out_path) in transcripts() {
        let input = std::fs::read_to_string(&in_path).expect("read transcript");
        let actual = serve_in_process(&input, 1);
        check_or_update(&name, &out_path, &actual);
    }
}

#[test]
fn transcripts_replay_byte_exact_parallel() {
    for (name, in_path, out_path) in transcripts() {
        if std::env::var_os("UPDATE_GOLDENS").is_some() {
            continue; // the serial test owns regeneration
        }
        let input = std::fs::read_to_string(&in_path).expect("read transcript");
        let actual = serve_in_process(&input, 4);
        check_or_update(&format!("{name}.parallel"), &out_path, &actual);
    }
}

#[test]
fn transcripts_replay_byte_exact_through_binary() {
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        return;
    }
    for (name, in_path, out_path) in transcripts() {
        let input = std::fs::read_to_string(&in_path).expect("read transcript");
        let actual = serve_via_binary(&input);
        check_or_update(&format!("{name}.binary"), &out_path, &actual);
    }
}

#[test]
fn every_request_line_gets_exactly_one_response() {
    for (_, in_path, _) in transcripts() {
        let input = std::fs::read_to_string(&in_path).expect("read transcript");
        let served = serve_in_process(&input, 1);
        // A shutdown line stops the reader; lines after it get nothing.
        let effective: Vec<&str> = {
            let mut kept = Vec::new();
            for line in input.lines().filter(|l| !l.trim().is_empty()) {
                kept.push(line);
                if line.contains("\"shutdown\"") {
                    break;
                }
            }
            kept
        };
        assert_eq!(
            served.lines().count(),
            effective.len(),
            "one response per request in {in_path:?}"
        );
        for line in served.lines() {
            assert!(
                line.starts_with("{\"v\":1,\"id\":"),
                "response shape: {line}"
            );
        }
    }
}
