//! Concurrency smoke test: several unix-socket clients hammer one
//! `chipleakd` service with histogram-only estimate jobs that share a
//! single characterized library. The single-flight artifact store must
//! characterize exactly once — every other request either waits on the
//! in-flight computation or hits the finished entry — and every
//! response must be byte-identical to a cold single-worker oracle.
#![cfg(unix)]

use fullchip_leakage::service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// Histogram-only jobs over ONE corner (cmos90, 3 sweep points): a
/// single library entry serves all of them, while dmax/p/method/die
/// variation spreads work across distinct distance tables.
const JOBS: &[&str] = &[
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3}"#,
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3,"dmax":50}"#,
    r#"{"kind":"estimate","cells":800,"die":[160,160],"sweep_points":3,"p":0.3,"method":"linear"}"#,
    r#"{"kind":"estimate","cells":1200,"die":[240,200],"sweep_points":3,"method":"integral2d"}"#,
    r#"{"kind":"estimate","cells":1000,"die":[200,200],"sweep_points":3,"metrics":true}"#,
];

const CLIENTS: usize = 6;
const JOBS_PER_CLIENT: usize = 20;

fn request(template: usize) -> String {
    format!(
        r#"{{"v":1,"id":{template},"job":{}}}"#,
        JOBS.get(template).expect("template index in pool")
    )
}

/// Cold-cache single-worker answers, one fresh service per template.
fn oracle() -> Vec<String> {
    (0..JOBS.len())
        .map(|t| {
            let service = Service::new(ServiceConfig::default());
            let (line, _) = service.handle_line(&request(t));
            line
        })
        .collect()
}

fn socket_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("chipleakd-smoke-{}.sock", std::process::id()))
}

#[test]
fn many_clients_share_one_characterization() {
    let oracle = oracle();
    let service = Arc::new(Service::new(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let path = socket_path();

    let server = {
        let service = Arc::clone(&service);
        let path = path.clone();
        std::thread::spawn(move || service.serve_unix(&path))
    };
    for _ in 0..500 {
        if path.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(path.exists(), "server never bound {path:?}");

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let path = path.clone();
            std::thread::spawn(move || -> Vec<(usize, String)> {
                let mut stream = UnixStream::connect(&path).expect("connect");
                // Each client walks the pool from a different offset so
                // the very first requests already collide on the library.
                let sequence: Vec<usize> =
                    (0..JOBS_PER_CLIENT).map(|i| (c + i) % JOBS.len()).collect();
                for &t in &sequence {
                    writeln!(stream, "{}", request(t)).expect("send request");
                }
                stream.flush().expect("flush requests");
                stream
                    .shutdown(std::net::Shutdown::Write)
                    .expect("half-close");
                let reader = BufReader::new(stream);
                let responses: Vec<String> =
                    reader.lines().map(|l| l.expect("read response")).collect();
                sequence.into_iter().zip(responses).collect()
            })
        })
        .collect();

    for (c, client) in clients.into_iter().enumerate() {
        let answered = client.join().expect("client thread");
        assert_eq!(
            answered.len(),
            JOBS_PER_CLIENT,
            "client {c} got every response"
        );
        for (i, (t, line)) in answered.iter().enumerate() {
            assert_eq!(
                line, &oracle[*t],
                "client {c} response {i} (template {t}) diverged from the serial oracle"
            );
        }
    }

    let mut stop = UnixStream::connect(&path).expect("connect for shutdown");
    writeln!(stop, r#"{{"v":1,"id":"stop","job":{{"kind":"shutdown"}}}}"#).expect("send shutdown");
    let mut ack = String::new();
    BufReader::new(&stop).read_line(&mut ack).expect("read ack");
    assert_eq!(
        ack.trim_end(),
        r#"{"v":1,"id":"stop","ok":{"kind":"shutdown"}}"#
    );
    let connections = server
        .join()
        .expect("server thread")
        .expect("serve_unix result");
    assert_eq!(connections, CLIENTS as u64 + 1);

    let counters = service.fleet_snapshot().counters;
    let get = |k: &str| counters.get(k).copied().unwrap_or(0);
    assert_eq!(
        get("service.characterizations"),
        1,
        "exactly one characterization"
    );
    assert_eq!(get("service.cache.lib.misses"), 1, "one cold library miss");
    assert_eq!(
        get("service.cache.lib.hits"),
        (CLIENTS * JOBS_PER_CLIENT) as u64 - 1,
        "every other job reused the shared library"
    );
    assert_eq!(
        get("service.requests"),
        (CLIENTS * JOBS_PER_CLIENT) as u64 + 1
    );
    assert_eq!(get("service.responses.err"), 0);
    assert_eq!(get("service.connections"), CLIENTS as u64 + 1);
}
