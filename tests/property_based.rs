//! Property-based tests (proptest) on the core mathematical invariants:
//! cell-moment closed forms, the correlation mapping, the Random Gate
//! kernel, and the estimator identities that the paper's derivations rest
//! on.

use fullchip_leakage::cells::corrmap::{
    cross_moment, state_leakage_correlation, CorrelationPolicy,
};
use fullchip_leakage::cells::model::{CharacterizedCell, CharacterizedLibrary, StateModel};
use fullchip_leakage::cells::state::state_probabilities;
use fullchip_leakage::core::estimator::{
    exact_placed_stats_tiled_instrumented, exact_placed_stats_with, integral_2d_variance,
    linear_time_variance, polar_1d_variance, quadratic_lattice_variance, PlacementSoA, Tiling,
};
use fullchip_leakage::numeric::integrate::gauss_legendre;
use fullchip_leakage::obs::Instruments;
use fullchip_leakage::prelude::*;
use fullchip_leakage::process::field::GridGeometry;
use proptest::prelude::*;

/// Realistic triplet parameter ranges (see the characterized library:
/// |b| ≈ 0.03–0.09 per nm, c small and positive).
fn triplet_strategy() -> impl Strategy<Value = LeakageTriplet> {
    (1e-10_f64..1e-8, -0.09_f64..-0.02, 1e-5_f64..2e-3)
        .prop_map(|(a, b, c)| LeakageTriplet::new(a, b, c).expect("valid triplet"))
}

fn sigma_strategy() -> impl Strategy<Value = f64> {
    1.0_f64..8.0
}

/// One-cell, one-state characterized library: the Random Gate then *is*
/// every placed instance, which lets the RG estimators be checked against
/// the placed O(n²) reference without any model mismatch.
fn single_cell_lib(t: LeakageTriplet, sigma: f64) -> CharacterizedLibrary {
    CharacterizedLibrary {
        cells: vec![CharacterizedCell {
            id: CellId(0),
            name: "c".into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(sigma).expect("mean"),
                std: t.std(sigma).expect("std"),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        }],
        l_sigma: sigma,
    }
}

/// Multi-type library for the tiled-kernel properties: one state per cell,
/// triplets supplied by the strategy.
fn multi_cell_lib(triplets: Vec<LeakageTriplet>, sigma: f64) -> CharacterizedLibrary {
    CharacterizedLibrary {
        cells: triplets
            .into_iter()
            .enumerate()
            .map(|(i, t)| CharacterizedCell {
                id: CellId(i),
                name: format!("c{i}"),
                n_inputs: 0,
                states: vec![StateModel {
                    state: 0,
                    mean: t.mean(sigma).expect("mean"),
                    std: t.std(sigma).expect("std"),
                    triplet: Some(t),
                    fit_r2: Some(1.0),
                }],
            })
            .collect(),
        l_sigma: sigma,
    }
}

/// Random placement: (type ∈ {0,1,2}, x, y) per gate.
fn placement_strategy() -> impl Strategy<Value = Vec<(usize, f64, f64)>> {
    proptest::collection::vec((0usize..3, 0.0_f64..200.0, 0.0_f64..150.0), 1..100)
}

fn single_cell_rg(lib: &CharacterizedLibrary) -> RandomGate {
    RandomGate::new(
        lib,
        &UsageHistogram::uniform(1).expect("hist"),
        0.5,
        CorrelationPolicy::Exact,
    )
    .expect("random gate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triplet_moments_match_quadrature(t in triplet_strategy(), sigma in sigma_strategy()) {
        let mean = t.mean(sigma).unwrap();
        let second = t.second_moment(sigma).unwrap();
        // quadrature cross-checks of both moments
        let q_mean = gauss_legendre(
            |dl| {
                let z = dl / sigma;
                t.eval(dl) * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            },
            -12.0 * sigma, 12.0 * sigma, 196,
        );
        prop_assert!((mean - q_mean).abs() / q_mean < 1e-6, "mean {mean} vs {q_mean}");
        let q_second = gauss_legendre(
            |dl| {
                let z = dl / sigma;
                let x = t.eval(dl);
                x * x * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            },
            -12.0 * sigma, 12.0 * sigma, 196,
        );
        prop_assert!((second - q_second).abs() / q_second < 1e-6);
        // Jensen: mean of the convex exponential exceeds nominal value.
        prop_assert!(mean >= t.eval(0.0));
        prop_assert!(second >= mean * mean);
    }

    #[test]
    fn correlation_mapping_is_bounded_monotone(
        ta in triplet_strategy(),
        tb in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let mut prev = -1.1;
        for k in 0..=10 {
            let rho = k as f64 / 10.0;
            let f = state_leakage_correlation(&ta, &tb, sigma, rho).unwrap();
            prop_assert!((-1.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12, "monotone in rho");
            prev = f;
        }
        // f(0) = 0 always.
        let f0 = state_leakage_correlation(&ta, &tb, sigma, 0.0).unwrap();
        prop_assert!(f0.abs() < 1e-9);
    }

    #[test]
    fn cross_moment_cauchy_schwarz(
        ta in triplet_strategy(),
        tb in triplet_strategy(),
        sigma in sigma_strategy(),
        rho in 0.0_f64..1.0,
    ) {
        let e_ab = cross_moment(&ta, &tb, sigma, rho).unwrap();
        let e_aa = ta.second_moment(sigma).unwrap();
        let e_bb = tb.second_moment(sigma).unwrap();
        prop_assert!(e_ab > 0.0);
        prop_assert!(e_ab * e_ab <= e_aa * e_bb * (1.0 + 1e-9), "cauchy-schwarz");
    }

    #[test]
    fn state_probabilities_form_distribution(n in 0usize..6, p in 0.0_f64..=1.0) {
        let probs = state_probabilities(n, p).unwrap();
        prop_assert_eq!(probs.len(), 1usize << n);
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
        prop_assert!(probs.iter().all(|q| (0.0..=1.0 + 1e-12).contains(q)));
    }

    #[test]
    fn histogram_sampling_stays_in_support(weights in proptest::collection::vec(0.0_f64..10.0, 2..8), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let hist = UsageHistogram::from_weights(weights.clone()).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let id = hist.sample(&mut rng);
            prop_assert!(id.0 < weights.len());
            prop_assert!(hist.alpha(id) > 0.0, "sampled zero-probability cell");
        }
    }

    #[test]
    fn linear_sum_equals_quadratic_sum(
        rows in 1usize..7,
        cols in 1usize..7,
        dmax in 2.0_f64..50.0,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let cell = CharacterizedCell {
            id: CellId(0),
            name: "c".into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(sigma).unwrap(),
                std: t.std(sigma).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let lib = CharacterizedLibrary { cells: vec![cell], l_sigma: sigma };
        let rg = RandomGate::new(
            &lib,
            &UsageHistogram::uniform(1).unwrap(),
            0.5,
            CorrelationPolicy::Exact,
        ).unwrap();
        let grid = GridGeometry::new(rows, cols, 2.5, 3.5).unwrap();
        let corr = move |d: f64| (1.0 - d / dmax).max(0.0);
        let lin = linear_time_variance(&rg, &grid, &corr);
        let quad = quadratic_lattice_variance(&rg, &grid, &corr);
        prop_assert!((lin - quad).abs() / quad < 1e-12);
    }

    #[test]
    fn chip_variance_bounded_by_iid_and_full_correlation(
        n_side in 2usize..12,
        dmax in 1.0_f64..200.0,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let cell = CharacterizedCell {
            id: CellId(0),
            name: "c".into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(sigma).unwrap(),
                std: t.std(sigma).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let var_gate = cell.states[0].std * cell.states[0].std;
        let lib = CharacterizedLibrary { cells: vec![cell], l_sigma: sigma };
        let rg = RandomGate::new(
            &lib,
            &UsageHistogram::uniform(1).unwrap(),
            0.5,
            CorrelationPolicy::Exact,
        ).unwrap();
        let grid = GridGeometry::new(n_side, n_side, 3.0, 3.0).unwrap();
        let corr = move |d: f64| (1.0 - d / dmax).max(0.0);
        let var = linear_time_variance(&rg, &grid, &corr);
        let n = grid.n_sites() as f64;
        prop_assert!(var >= n * var_gate * (1.0 - 1e-9), "≥ iid floor");
        prop_assert!(var <= n * n * var_gate * (1.0 + 1e-9), "≤ full-correlation ceiling");
    }

    #[test]
    fn tent_correlation_contract(dmax in 0.1_f64..1e4, d in 0.0_f64..1e5) {
        let c = TentCorrelation::new(dmax).unwrap();
        let r = c.rho(d);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(c.rho(0.0), 1.0);
        if d >= dmax {
            prop_assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn total_correlation_floor_holds(rho_c in 0.0_f64..1.0, d in 0.0_f64..1e5) {
        let wid = TentCorrelation::new(50.0).unwrap();
        let t = TotalCorrelation::new(wid, rho_c).unwrap();
        let r = t.rho(d);
        prop_assert!(r >= rho_c - 1e-12);
        prop_assert!(r <= 1.0 + 1e-12);
    }

    #[test]
    fn grid_distances_are_a_metric_sample(
        rows in 1usize..9,
        cols in 1usize..9,
        px in 0.5_f64..10.0,
        py in 0.5_f64..10.0,
    ) {
        let g = GridGeometry::new(rows, cols, px, py).unwrap();
        // symmetry + identity for a handful of site pairs
        for a in 0..(rows * cols).min(6) {
            for b in 0..(rows * cols).min(6) {
                let sa = (a / cols, a % cols);
                let sb = (b / cols, b % cols);
                let dab = g.site_distance(sa, sb);
                let dba = g.site_distance(sb, sa);
                prop_assert!((dab - dba).abs() < 1e-12);
                if a == b {
                    prop_assert_eq!(dab, 0.0);
                } else {
                    prop_assert!(dab > 0.0);
                }
            }
        }
    }

    #[test]
    fn eq17_matches_exact_pairwise_reference_on_lattice(
        rows in 1usize..8,
        cols in 1usize..8,
        dmax in 5.0_f64..80.0,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        // Oracle: the O(n) multiplicity sum (Eq. 17) against the O(n²)
        // placed reference on the very lattice it models — one-cell
        // library, gates at the grid's site centres. ρ is quantized to
        // eighths because those are the shared knots of the RG kernel
        // (41 knots) and the pairwise table (33 knots): both interpolants
        // then return the identical tabulated covariance, so any residual
        // disagreement is summation error, not model error.
        let lib = single_cell_lib(t, sigma);
        let rg = single_cell_rg(&lib);
        // Power-of-two pitches keep site-centre differences bit-identical
        // to the offset distances Eq. 17 sums over.
        let grid = GridGeometry::new(rows, cols, 2.0, 4.0).unwrap();
        let rho_total = move |d: f64| ((1.0 - d / dmax).max(0.0) * 8.0).round() / 8.0;
        let eq17 = linear_time_variance(&rg, &grid, &rho_total);
        let pairwise =
            PairwiseCovariance::new(&lib, &[CellId(0)], 0.5, CorrelationPolicy::Exact).unwrap();
        let mut gates = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let (x, y) = grid.site_center(r, c);
                gates.push(PlacedGate { cell: CellId(0), x, y });
            }
        }
        let exact = exact_placed_stats(&gates, &pairwise, &rho_total);
        prop_assert!(exact.variance > 0.0);
        let rel = (eq17 - exact.variance).abs() / exact.variance;
        prop_assert!(rel < 1e-9, "Eq.17 {eq17} vs exact {} (rel {rel:e})", exact.variance);
    }

    #[test]
    fn estimator_variances_are_nonnegative(
        side in 2usize..24,
        dmax in 1.0_f64..500.0,
        rho_c in 0.0_f64..1.0,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let lib = single_cell_lib(t, sigma);
        let rg = single_cell_rg(&lib);
        let grid = GridGeometry::new(side, side, 3.0, 3.0).unwrap();
        let wid = TentCorrelation::new(dmax).unwrap();
        let rho_total = move |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
        let n = grid.n_sites();
        let lin = linear_time_variance(&rg, &grid, &rho_total);
        prop_assert!(lin >= 0.0, "linear {lin}");
        let i2d =
            integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 16, 4);
        prop_assert!(i2d >= 0.0, "integral-2d {i2d}");
        // Polar is only applicable while the correlation support fits the
        // die (D_max ≤ min(W, H)); out of range it must refuse, not return
        // garbage.
        match polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 32, 8) {
            Ok(pol) => prop_assert!(pol >= 0.0, "polar-1d {pol}"),
            Err(e) => prop_assert!(dmax > grid.width().min(grid.height()), "{e}"),
        }
        if side <= 8 {
            let quad = quadratic_lattice_variance(&rg, &grid, &rho_total);
            prop_assert!(quad >= 0.0, "quadratic {quad}");
        }
    }

    #[test]
    fn placement_soa_round_trips_any_placement(placements in placement_strategy()) {
        let gates: Vec<PlacedGate> = placements
            .iter()
            .map(|&(t, x, y)| PlacedGate { cell: CellId(t), x, y })
            .collect();
        let soa = PlacementSoA::from_gates(&gates);
        prop_assert_eq!(soa.len(), gates.len());
        // Per-gate accessor and the bulk conversion both restore the exact
        // AoS view: same type, coordinates bit-for-bit, original order.
        let back = soa.to_gates();
        prop_assert_eq!(back.len(), gates.len());
        for (i, g) in gates.iter().enumerate() {
            let r = soa.gate(i);
            prop_assert_eq!(g.cell, r.cell);
            prop_assert_eq!(g.x.to_bits(), r.x.to_bits());
            prop_assert_eq!(g.y.to_bits(), r.y.to_bits());
            prop_assert_eq!(g.cell, back[i].cell);
            prop_assert_eq!(g.x.to_bits(), back[i].x.to_bits());
            prop_assert_eq!(g.y.to_bits(), back[i].y.to_bits());
        }
        // Support is the sorted set of distinct types actually used.
        let mut expect: Vec<CellId> = gates.iter().map(|g| g.cell).collect();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(soa.support().to_vec(), expect);
    }

    #[test]
    fn tiled_kernel_is_bit_identical_to_naive(
        placements in placement_strategy(),
        ta in triplet_strategy(),
        tb in triplet_strategy(),
        tc in triplet_strategy(),
        sigma in sigma_strategy(),
        dmax in 5.0_f64..120.0,
        tile_sel in 0usize..11,
    ) {
        // Tile-size cases: degenerate 1×1, small odd shapes, the default's
        // neighborhood, and ≥ n (one tile spans the whole triangle).
        let tile_rows = match tile_sel {
            0 => 1,
            9 => 64,
            10 => 4096,
            k => k, // 1..=8
        };
        let lib = multi_cell_lib(vec![ta, tb, tc], sigma);
        let gates: Vec<PlacedGate> = placements
            .iter()
            .map(|&(t, x, y)| PlacedGate { cell: CellId(t), x, y })
            .collect();
        let mut support: Vec<CellId> = gates.iter().map(|g| g.cell).collect();
        support.sort();
        support.dedup();
        let pairwise =
            PairwiseCovariance::new(&lib, &support, 0.5, CorrelationPolicy::Exact).unwrap();
        let rho_total = move |d: f64| (1.0 - d / dmax).max(0.0);
        let naive =
            exact_placed_stats_with(&gates, &pairwise, &rho_total, Parallelism::serial());
        let soa = PlacementSoA::from_gates(&gates);
        for par in [
            Parallelism::threads(1),
            Parallelism::threads(2),
            Parallelism::threads(8),
        ] {
            // `Some(dmax)` exercises the far-pair fast path (the tent is
            // exactly zero at and beyond its support radius), `None` the
            // always-evaluated path; both must reproduce naive bits.
            for far_cutoff in [None, Some(dmax)] {
                let tiled = exact_placed_stats_tiled_instrumented(
                    &soa,
                    &pairwise,
                    &rho_total,
                    par,
                    Tiling { rows: tile_rows, far_cutoff },
                    Instruments::none(),
                );
                prop_assert_eq!(
                    naive.mean.to_bits(),
                    tiled.mean.to_bits(),
                    "mean: tile {} threads {} far {:?}",
                    tile_rows, par.thread_count(), far_cutoff
                );
                prop_assert_eq!(
                    naive.variance.to_bits(),
                    tiled.variance.to_bits(),
                    "variance: tile {} threads {} far {:?}",
                    tile_rows, par.thread_count(), far_cutoff
                );
            }
        }
    }

    #[test]
    fn variance_is_monotone_in_d2d_fraction(
        side in 3usize..14,
        dmax_frac in 0.1_f64..0.95,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        // ρ_total(d) = ρ_c + (1−ρ_c)·ρ_WID(d) rises pointwise with ρ_c, and
        // the covariance kernel F is monotone in ρ, so every estimator's
        // variance must be non-decreasing in the D2D fraction.
        let lib = single_cell_lib(t, sigma);
        let rg = single_cell_rg(&lib);
        let grid = GridGeometry::new(side, side, 3.0, 3.0).unwrap();
        // Keep the correlation support inside the die so polar stays
        // applicable for every case.
        let wid = TentCorrelation::new(dmax_frac * grid.width()).unwrap();
        let n = grid.n_sites();
        let (mut prev_lin, mut prev_i2d, mut prev_pol) = (0.0_f64, 0.0_f64, 0.0_f64);
        for k in 0..=8 {
            let rho_c = k as f64 / 8.0;
            let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
            let lin = linear_time_variance(&rg, &grid, &rho_total);
            let i2d =
                integral_2d_variance(&rg, n, grid.width(), grid.height(), &rho_total, 16, 4);
            let pol =
                polar_1d_variance(&rg, n, grid.width(), grid.height(), &wid, rho_c, 32, 8)
                    .unwrap();
            prop_assert!(lin >= prev_lin * (1.0 - 1e-12), "linear at rho_c {rho_c}");
            prop_assert!(i2d >= prev_i2d * (1.0 - 1e-12), "integral-2d at rho_c {rho_c}");
            prop_assert!(pol >= prev_pol * (1.0 - 1e-12), "polar-1d at rho_c {rho_c}");
            prev_lin = lin;
            prev_i2d = i2d;
            prev_pol = pol;
        }
    }
}
