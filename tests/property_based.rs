//! Property-based tests (proptest) on the core mathematical invariants:
//! cell-moment closed forms, the correlation mapping, the Random Gate
//! kernel, and the estimator identities that the paper's derivations rest
//! on.

use fullchip_leakage::cells::corrmap::{
    cross_moment, state_leakage_correlation, CorrelationPolicy,
};
use fullchip_leakage::cells::model::{CharacterizedCell, CharacterizedLibrary, StateModel};
use fullchip_leakage::cells::state::state_probabilities;
use fullchip_leakage::core::estimator::{linear_time_variance, quadratic_lattice_variance};
use fullchip_leakage::numeric::integrate::gauss_legendre;
use fullchip_leakage::prelude::*;
use fullchip_leakage::process::field::GridGeometry;
use proptest::prelude::*;

/// Realistic triplet parameter ranges (see the characterized library:
/// |b| ≈ 0.03–0.09 per nm, c small and positive).
fn triplet_strategy() -> impl Strategy<Value = LeakageTriplet> {
    (1e-10_f64..1e-8, -0.09_f64..-0.02, 1e-5_f64..2e-3)
        .prop_map(|(a, b, c)| LeakageTriplet::new(a, b, c).expect("valid triplet"))
}

fn sigma_strategy() -> impl Strategy<Value = f64> {
    1.0_f64..8.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triplet_moments_match_quadrature(t in triplet_strategy(), sigma in sigma_strategy()) {
        let mean = t.mean(sigma).unwrap();
        let second = t.second_moment(sigma).unwrap();
        // quadrature cross-checks of both moments
        let q_mean = gauss_legendre(
            |dl| {
                let z = dl / sigma;
                t.eval(dl) * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            },
            -12.0 * sigma, 12.0 * sigma, 196,
        );
        prop_assert!((mean - q_mean).abs() / q_mean < 1e-6, "mean {mean} vs {q_mean}");
        let q_second = gauss_legendre(
            |dl| {
                let z = dl / sigma;
                let x = t.eval(dl);
                x * x * (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
            },
            -12.0 * sigma, 12.0 * sigma, 196,
        );
        prop_assert!((second - q_second).abs() / q_second < 1e-6);
        // Jensen: mean of the convex exponential exceeds nominal value.
        prop_assert!(mean >= t.eval(0.0));
        prop_assert!(second >= mean * mean);
    }

    #[test]
    fn correlation_mapping_is_bounded_monotone(
        ta in triplet_strategy(),
        tb in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let mut prev = -1.1;
        for k in 0..=10 {
            let rho = k as f64 / 10.0;
            let f = state_leakage_correlation(&ta, &tb, sigma, rho).unwrap();
            prop_assert!((-1.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12, "monotone in rho");
            prev = f;
        }
        // f(0) = 0 always.
        let f0 = state_leakage_correlation(&ta, &tb, sigma, 0.0).unwrap();
        prop_assert!(f0.abs() < 1e-9);
    }

    #[test]
    fn cross_moment_cauchy_schwarz(
        ta in triplet_strategy(),
        tb in triplet_strategy(),
        sigma in sigma_strategy(),
        rho in 0.0_f64..1.0,
    ) {
        let e_ab = cross_moment(&ta, &tb, sigma, rho).unwrap();
        let e_aa = ta.second_moment(sigma).unwrap();
        let e_bb = tb.second_moment(sigma).unwrap();
        prop_assert!(e_ab > 0.0);
        prop_assert!(e_ab * e_ab <= e_aa * e_bb * (1.0 + 1e-9), "cauchy-schwarz");
    }

    #[test]
    fn state_probabilities_form_distribution(n in 0usize..6, p in 0.0_f64..=1.0) {
        let probs = state_probabilities(n, p).unwrap();
        prop_assert_eq!(probs.len(), 1usize << n);
        let total: f64 = probs.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
        prop_assert!(probs.iter().all(|q| (0.0..=1.0 + 1e-12).contains(q)));
    }

    #[test]
    fn histogram_sampling_stays_in_support(weights in proptest::collection::vec(0.0_f64..10.0, 2..8), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let hist = UsageHistogram::from_weights(weights.clone()).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let id = hist.sample(&mut rng);
            prop_assert!(id.0 < weights.len());
            prop_assert!(hist.alpha(id) > 0.0, "sampled zero-probability cell");
        }
    }

    #[test]
    fn linear_sum_equals_quadratic_sum(
        rows in 1usize..7,
        cols in 1usize..7,
        dmax in 2.0_f64..50.0,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let cell = CharacterizedCell {
            id: CellId(0),
            name: "c".into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(sigma).unwrap(),
                std: t.std(sigma).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let lib = CharacterizedLibrary { cells: vec![cell], l_sigma: sigma };
        let rg = RandomGate::new(
            &lib,
            &UsageHistogram::uniform(1).unwrap(),
            0.5,
            CorrelationPolicy::Exact,
        ).unwrap();
        let grid = GridGeometry::new(rows, cols, 2.5, 3.5).unwrap();
        let corr = move |d: f64| (1.0 - d / dmax).max(0.0);
        let lin = linear_time_variance(&rg, &grid, &corr);
        let quad = quadratic_lattice_variance(&rg, &grid, &corr);
        prop_assert!((lin - quad).abs() / quad < 1e-12);
    }

    #[test]
    fn chip_variance_bounded_by_iid_and_full_correlation(
        n_side in 2usize..12,
        dmax in 1.0_f64..200.0,
        t in triplet_strategy(),
        sigma in sigma_strategy(),
    ) {
        let cell = CharacterizedCell {
            id: CellId(0),
            name: "c".into(),
            n_inputs: 0,
            states: vec![StateModel {
                state: 0,
                mean: t.mean(sigma).unwrap(),
                std: t.std(sigma).unwrap(),
                triplet: Some(t),
                fit_r2: Some(1.0),
            }],
        };
        let var_gate = cell.states[0].std * cell.states[0].std;
        let lib = CharacterizedLibrary { cells: vec![cell], l_sigma: sigma };
        let rg = RandomGate::new(
            &lib,
            &UsageHistogram::uniform(1).unwrap(),
            0.5,
            CorrelationPolicy::Exact,
        ).unwrap();
        let grid = GridGeometry::new(n_side, n_side, 3.0, 3.0).unwrap();
        let corr = move |d: f64| (1.0 - d / dmax).max(0.0);
        let var = linear_time_variance(&rg, &grid, &corr);
        let n = grid.n_sites() as f64;
        prop_assert!(var >= n * var_gate * (1.0 - 1e-9), "≥ iid floor");
        prop_assert!(var <= n * n * var_gate * (1.0 + 1e-9), "≤ full-correlation ceiling");
    }

    #[test]
    fn tent_correlation_contract(dmax in 0.1_f64..1e4, d in 0.0_f64..1e5) {
        let c = TentCorrelation::new(dmax).unwrap();
        let r = c.rho(d);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert_eq!(c.rho(0.0), 1.0);
        if d >= dmax {
            prop_assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn total_correlation_floor_holds(rho_c in 0.0_f64..1.0, d in 0.0_f64..1e5) {
        let wid = TentCorrelation::new(50.0).unwrap();
        let t = TotalCorrelation::new(wid, rho_c).unwrap();
        let r = t.rho(d);
        prop_assert!(r >= rho_c - 1e-12);
        prop_assert!(r <= 1.0 + 1e-12);
    }

    #[test]
    fn grid_distances_are_a_metric_sample(
        rows in 1usize..9,
        cols in 1usize..9,
        px in 0.5_f64..10.0,
        py in 0.5_f64..10.0,
    ) {
        let g = GridGeometry::new(rows, cols, px, py).unwrap();
        // symmetry + identity for a handful of site pairs
        for a in 0..(rows * cols).min(6) {
            for b in 0..(rows * cols).min(6) {
                let sa = (a / cols, a % cols);
                let sb = (b / cols, b % cols);
                let dab = g.site_distance(sa, sb);
                let dba = g.site_distance(sb, sa);
                prop_assert!((dab - dba).abs() < 1e-12);
                if a == b {
                    prop_assert_eq!(dab, 0.0);
                } else {
                    prop_assert!(dab > 0.0);
                }
            }
        }
    }
}
