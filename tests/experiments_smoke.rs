//! Small-scale smoke versions of every experiment flow, so the logic
//! behind each figure/table binary is exercised in the ordinary test
//! suite (the full binaries live in `leakage-bench`).

use fullchip_leakage::cells::corrmap::{state_leakage_correlation, CorrelationPolicy};
use fullchip_leakage::cells::state::{design_stats_at_probability, max_mean_signal_probability};
use fullchip_leakage::core::estimator::{integral_2d_variance, linear_time_variance};
use fullchip_leakage::core::LeakageDistribution;
use fullchip_leakage::montecarlo::pair::pair_leakage_correlation_mc;
use fullchip_leakage::netlist::iscas85;
use fullchip_leakage::prelude::*;
use fullchip_leakage::process::field::GridGeometry;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Ctx {
    tech: Technology,
    lib: CellLibrary,
    charlib: fullchip_leakage::cells::model::CharacterizedLibrary,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let tech = Technology::cmos90();
        let lib = CellLibrary::standard_62();
        let charlib = Characterizer::new(&tech)
            .characterize_library(&lib, CharMethod::Analytical { sweep_points: 7 })
            .expect("characterization");
        Ctx { tech, lib, charlib }
    })
}

/// E1 in miniature: analytic vs MC moments for a few representative cells.
#[test]
fn e1_cell_accuracy_smoke() {
    let ctx = ctx();
    let charax = Characterizer::new(&ctx.tech);
    for name in ["inv_x1", "nand3_x1", "sram6t"] {
        let cell = ctx.lib.cell_by_name(name).expect("cell");
        let model = ctx.charlib.cell(cell.id()).expect("characterized");
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xE1);
        let (mc_mean, mc_std) = charax
            .mc_state(cell.netlist(), 0, 20_000, &mut rng)
            .expect("mc");
        let s = &model.states[0];
        assert!((s.mean - mc_mean).abs() / mc_mean < 0.02, "{name}");
        assert!((s.std - mc_std).abs() / mc_std < 0.10, "{name}");
    }
}

/// E2 in miniature: MC and analytic correlation mapping agree, near y=x.
#[test]
fn e2_corr_map_smoke() {
    let ctx = ctx();
    let charax = Characterizer::new(&ctx.tech);
    let a = ctx.lib.cell_by_name("inv_x1").expect("cell");
    let b = ctx.lib.cell_by_name("nand2_x1").expect("cell");
    let curve_a = charax.tabulate_state(a.netlist(), 0, 41).expect("curve");
    let curve_b = charax.tabulate_state(b.netlist(), 0, 41).expect("curve");
    let ta = ctx.charlib.cell(a.id()).unwrap().states[0]
        .triplet
        .expect("triplet");
    let tb = ctx.charlib.cell(b.id()).unwrap().states[0]
        .triplet
        .expect("triplet");
    let sigma = ctx.charlib.l_sigma;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE2);
    for rho in [0.3, 0.7] {
        let analytic = state_leakage_correlation(&ta, &tb, sigma, rho).expect("map");
        let mc = pair_leakage_correlation_mc(&curve_a, &curve_b, sigma, rho, 30_000, &mut rng)
            .expect("mc");
        assert!(
            (analytic - mc).abs() < 0.03,
            "rho {rho}: {analytic} vs {mc}"
        );
        assert!((analytic - rho).abs() < 0.05, "near identity at {rho}");
    }
}

/// E3 in miniature: design-level spread is muted; optimum is found.
#[test]
fn e3_signal_probability_smoke() {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("hist");
    let (m0, _) = design_stats_at_probability(&ctx.charlib, &hist, 0.0).expect("stats");
    let (m1, _) = design_stats_at_probability(&ctx.charlib, &hist, 1.0).expect("stats");
    let spread = m0.max(m1) / m0.min(m1);
    assert!(spread < 3.0, "design-level spread is muted, got {spread}");
    let opt = max_mean_signal_probability(&ctx.charlib, &hist, 21).expect("search");
    assert!(opt.mean >= m0.max(m1) - 1e-18);
    // single gates can spread much more
    let leakiest_spread = ctx
        .charlib
        .cells
        .iter()
        .map(|c| c.state_spread())
        .fold(0.0_f64, f64::max);
    assert!(
        leakiest_spread > 5.0,
        "single-gate spread {leakiest_spread}"
    );
}

/// E4 in miniature: one random design's true stats near the RG estimate.
#[test]
fn e4_convergence_smoke() {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("hist");
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE4);
    let circuit = RandomCircuitGenerator::new(hist.clone())
        .generate_exact(900, &mut rng)
        .expect("gen");
    let placed = place(&circuit, &ctx.lib, PlacementStyle::RowMajor, 0.7).expect("place");
    let wid = TentCorrelation::new(100.0).expect("model");
    let rho_c = ctx.tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let pairwise = PairwiseCovariance::new(
        &ctx.charlib,
        &placed.support(),
        0.5,
        CorrelationPolicy::Exact,
    )
    .expect("pairwise");
    let truth = exact_placed_stats(placed.gates(), &pairwise, &rho_total);
    let chars = HighLevelCharacteristics::builder()
        .histogram(hist)
        .n_cells(placed.n_gates())
        .die_dimensions(placed.width(), placed.height())
        .build()
        .expect("chars");
    let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, &wid)
        .expect("estimator")
        .estimate_linear()
        .expect("estimate");
    assert!((est.std() / truth.std() - 1.0).abs() < 0.05);
}

/// E5 in miniature: the smallest ISCAS85 benchmark late-mode flow.
#[test]
fn e5_iscas_smoke() {
    let ctx = ctx();
    let spec = iscas85::TABLE1_SPECS
        .iter()
        .find(|s| s.name == "c432")
        .expect("spec");
    let placed = iscas85::build(spec, &ctx.lib).expect("build");
    let wid = TentCorrelation::new(100.0).expect("model");
    let est = fullchip_leakage::late_mode_estimator(&ctx.charlib, &ctx.tech, &placed, &wid, 0.5)
        .expect("facade")
        .estimate_all()
        .expect("estimates");
    assert!(est.len() >= 2);
    for e in &est {
        assert!(e.mean > 0.0 && e.std() > 0.0, "{e}");
    }
}

/// E7 in miniature: the integral error shrinks between two sizes.
#[test]
fn e7_integration_error_smoke() {
    let ctx = ctx();
    let hist = UsageHistogram::uniform(ctx.lib.len()).expect("hist");
    let rg = RandomGate::new(&ctx.charlib, &hist, 0.5, CorrelationPolicy::Exact).expect("rg");
    let wid = TentCorrelation::new(60.0).expect("model");
    let rho_total = |d: f64| wid.rho(d);
    let mut errs = Vec::new();
    for side in [12usize, 48] {
        let grid =
            GridGeometry::new(side, side, 180.0 / side as f64, 180.0 / side as f64).expect("grid");
        let lin = linear_time_variance(&rg, &grid, &rho_total);
        let int = integral_2d_variance(
            &rg,
            grid.n_sites(),
            grid.width(),
            grid.height(),
            &rho_total,
            16,
            4,
        );
        errs.push((int - lin).abs() / lin);
    }
    assert!(errs[1] < errs[0], "error shrinks with n: {errs:?}");
}

/// Yield flow: budget quantiles invert, larger budgets yield more.
#[test]
fn yield_smoke() {
    let ctx = ctx();
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(ctx.lib.len()).expect("hist"))
        .n_cells(5_000)
        .die_dimensions(250.0, 250.0)
        .build()
        .expect("chars");
    let wid = TentCorrelation::new(100.0).expect("model");
    let est = ChipLeakageEstimator::new(&ctx.charlib, &ctx.tech, chars, wid)
        .expect("estimator")
        .estimate_linear()
        .expect("estimate");
    let dist = LeakageDistribution::from_estimate(&est).expect("distribution");
    let b95 = dist.quantile(0.95);
    assert!(b95 > est.mean, "95% budget above the mean");
    assert!((dist.yield_at(b95) - 0.95).abs() < 1e-6);
    assert!(dist.yield_at(2.0 * b95) > 0.99);
}
