//! Determinism guarantees: every seeded flow must produce bit-identical
//! results across runs — experiments cite exact numbers, so silent
//! nondeterminism would invalidate EXPERIMENTS.md.

use fullchip_leakage::netlist::iscas85;
use fullchip_leakage::prelude::*;
use rand::SeedableRng;

#[test]
fn circuit_generation_is_seed_deterministic() {
    let hist = UsageHistogram::from_weights(vec![1.0, 2.0, 3.0]).expect("hist");
    let gen = RandomCircuitGenerator::new(hist);
    let a = gen
        .generate(500, &mut rand::rngs::StdRng::seed_from_u64(7))
        .expect("gen");
    let b = gen
        .generate(500, &mut rand::rngs::StdRng::seed_from_u64(7))
        .expect("gen");
    assert_eq!(a.gates(), b.gates());
    let c = gen
        .generate(500, &mut rand::rngs::StdRng::seed_from_u64(8))
        .expect("gen");
    assert_ne!(a.gates(), c.gates());
}

#[test]
fn iscas_suite_is_bit_stable() {
    let lib = CellLibrary::standard_62();
    let a = iscas85::build_suite(&lib).expect("suite");
    let b = iscas85::build_suite(&lib).expect("suite");
    assert_eq!(a, b);
}

#[test]
fn characterization_is_deterministic() {
    // The analytical path involves no randomness at all; two passes must
    // agree exactly.
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charax = Characterizer::new(&tech);
    let inv = lib.cell_by_name("inv_x1").expect("cell");
    let m1 = charax
        .characterize_cell(inv, CharMethod::Analytical { sweep_points: 9 })
        .expect("charax");
    let m2 = charax
        .characterize_cell(inv, CharMethod::Analytical { sweep_points: 9 })
        .expect("charax");
    assert_eq!(m1, m2);
}

#[test]
fn field_samplers_are_seed_deterministic() {
    use fullchip_leakage::process::field::{CirculantFieldSampler, FieldSampler, GridGeometry};
    let grid = GridGeometry::new(6, 6, 3.0, 3.0).expect("grid");
    let corr = TentCorrelation::new(20.0).expect("model");
    let s = CirculantFieldSampler::new(grid, &corr, 1.0).expect("sampler");
    let a = s.sample(&mut rand::rngs::StdRng::seed_from_u64(5));
    let b = s.sample(&mut rand::rngs::StdRng::seed_from_u64(5));
    assert_eq!(a, b);
}

/// Builds a small placed design plus the pairwise table used by the
/// thread-count invariance tests below.
fn placed_design(
    n: usize,
) -> (
    PlacedCircuit,
    fullchip_leakage::cells::model::CharacterizedLibrary,
    Technology,
) {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charlib = Characterizer::new(&tech)
        .characterize_library(&lib, CharMethod::Analytical { sweep_points: 7 })
        .expect("charax");
    let hist = UsageHistogram::uniform(lib.len()).expect("hist");
    let circuit = RandomCircuitGenerator::new(hist)
        .generate_exact(n, &mut rand::rngs::StdRng::seed_from_u64(n as u64))
        .expect("gen");
    let placed = place(&circuit, &lib, PlacementStyle::RowMajor, 0.7).expect("place");
    (placed, charlib, tech)
}

#[test]
fn exact_estimator_is_identical_for_any_thread_count() {
    use fullchip_leakage::core::estimator::exact_placed_stats_with;
    let (placed, charlib, tech) = placed_design(600);
    let wid = TentCorrelation::new(50.0).expect("model");
    let rho_c = tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let pairwise =
        PairwiseCovariance::new(&charlib, &placed.support(), 0.5, CorrelationPolicy::Exact)
            .expect("pairwise");
    let serial =
        exact_placed_stats_with(placed.gates(), &pairwise, &rho_total, Parallelism::serial());
    for par in [
        Parallelism::threads(2),
        Parallelism::auto(), // max (or CHIPLEAK_THREADS when set)
    ] {
        let parallel = exact_placed_stats_with(placed.gates(), &pairwise, &rho_total, par);
        assert_eq!(
            serial.mean.to_bits(),
            parallel.mean.to_bits(),
            "mean, {} threads",
            par.thread_count()
        );
        assert_eq!(
            serial.variance.to_bits(),
            parallel.variance.to_bits(),
            "variance, {} threads",
            par.thread_count()
        );
    }
}

#[test]
fn tiled_exact_estimator_is_identical_to_naive_for_any_thread_count() {
    use fullchip_leakage::core::estimator::{
        exact_placed_stats_tiled_with, exact_placed_stats_with,
    };
    let (placed, charlib, tech) = placed_design(600);
    let wid = TentCorrelation::new(50.0).expect("model");
    let rho_c = tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let pairwise =
        PairwiseCovariance::new(&charlib, &placed.support(), 0.5, CorrelationPolicy::Exact)
            .expect("pairwise");
    let soa = placed.placement_soa();
    let naive =
        exact_placed_stats_with(placed.gates(), &pairwise, &rho_total, Parallelism::serial());
    for par in [
        Parallelism::serial(),
        Parallelism::threads(2),
        Parallelism::threads(8),
        Parallelism::auto(), // max (or CHIPLEAK_THREADS when set)
    ] {
        let tiled = exact_placed_stats_tiled_with(&soa, &pairwise, &rho_total, par);
        assert_eq!(
            naive.mean.to_bits(),
            tiled.mean.to_bits(),
            "mean, {} threads",
            par.thread_count()
        );
        assert_eq!(
            naive.variance.to_bits(),
            tiled.variance.to_bits(),
            "variance, {} threads",
            par.thread_count()
        );
    }
}

#[test]
fn monte_carlo_run_is_identical_for_any_thread_count() {
    let (placed, charlib, tech) = placed_design(300);
    let wid = TentCorrelation::new(50.0).expect("model");
    let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
        .build()
        .expect("sampler");
    let serial = sampler.run_seeded_with(301, 99, Parallelism::serial());
    assert_eq!(serial.count(), 301);
    for par in [Parallelism::threads(2), Parallelism::auto()] {
        let parallel = sampler.run_seeded_with(301, 99, par);
        assert_eq!(serial, parallel, "{} threads", par.thread_count());
    }
    // And a different seed must actually change the statistics.
    assert_ne!(serial, sampler.run_seeded(301, 100));
}

#[test]
fn metrics_are_identical_for_any_thread_count() {
    // The observability layer's core guarantee: an instrumented run
    // produces the same `MetricsSnapshot` — bit for bit, down to the JSON
    // serialization — no matter how many worker threads did the work.
    // Worker threads only perform commutative integer counter adds; spans
    // and f64 observations happen on the calling thread after the
    // chunk-ordered reduction. `FakeClock` removes wall-clock noise so the
    // span durations and derived rates are comparable too.
    use fullchip_leakage::cells::charax::Characterizer;
    use fullchip_leakage::core::estimator::{
        exact_placed_stats_instrumented, exact_placed_stats_tiled_instrumented, Tiling,
    };
    use fullchip_leakage::numeric::fft::FftPlanCache;
    use fullchip_leakage::obs::{AggregatingRecorder, FakeClock, Instruments};
    use fullchip_leakage::process::field::{CirculantFieldSampler, GridGeometry};

    let (placed, charlib, tech) = placed_design(400);
    let lib = CellLibrary::standard_62();
    let wid = TentCorrelation::new(50.0).expect("model");
    let rho_c = tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);
    let pairwise =
        PairwiseCovariance::new(&charlib, &placed.support(), 0.5, CorrelationPolicy::Exact)
            .expect("pairwise");
    let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid)
        .build()
        .expect("sampler");

    let soa = placed.placement_soa();
    let run = |par: Parallelism| {
        let recorder = AggregatingRecorder::new();
        let clock = FakeClock::new(17);
        let ins = Instruments::new(&recorder, &clock);
        let _ = exact_placed_stats_instrumented(placed.gates(), &pairwise, &rho_total, par, ins);
        let _ = exact_placed_stats_tiled_instrumented(
            &soa,
            &pairwise,
            &rho_total,
            par,
            Tiling::default(),
            ins,
        );
        // Plan-cache hit/miss counters are part of the snapshot too: one
        // miss (first build) and one hit (same torus shape).
        let cache = FftPlanCache::new();
        let grid = GridGeometry::new(6, 6, 3.0, 3.0).expect("grid");
        let _ = CirculantFieldSampler::new_with_plan_cache(grid, &wid, 1.0, par, &cache, ins)
            .expect("sampler");
        let _ = CirculantFieldSampler::new_with_plan_cache(grid, &wid, 1.0, par, &cache, ins)
            .expect("sampler");
        let _ = sampler.run_seeded_instrumented(101, 42, par, ins);
        let _ = Characterizer::new(&tech)
            .characterize_library_instrumented(
                &lib,
                CharMethod::Analytical { sweep_points: 5 },
                par,
                ins,
            )
            .expect("charax");
        recorder.snapshot()
    };

    let serial = run(Parallelism::serial());
    assert!(!serial.is_empty(), "instrumented run recorded nothing");
    for par in [
        Parallelism::threads(1),
        Parallelism::threads(2),
        Parallelism::threads(8),
        Parallelism::auto(), // max (or CHIPLEAK_THREADS when set)
    ] {
        let parallel = run(par);
        assert_eq!(serial, parallel, "{} threads", par.thread_count());
        assert_eq!(
            serial.to_json_string(),
            parallel.to_json_string(),
            "{} threads (JSON)",
            par.thread_count()
        );
    }
}

#[test]
fn estimators_are_pure_functions() {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    let charlib = Characterizer::new(&tech)
        .characterize_library(&lib, CharMethod::Analytical { sweep_points: 7 })
        .expect("charax");
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(lib.len()).expect("hist"))
        .n_cells(2_000)
        .die_dimensions(150.0, 150.0)
        .build()
        .expect("chars");
    let wid = TentCorrelation::new(100.0).expect("model");
    let est = ChipLeakageEstimator::new(&charlib, &tech, chars, wid).expect("estimator");
    let a = est.estimate_linear().expect("estimate");
    let b = est.estimate_linear().expect("estimate");
    assert_eq!(a, b);
    let c = est.estimate_integral_2d().expect("estimate");
    let d = est.estimate_integral_2d().expect("estimate");
    assert_eq!(c, d);
}
