//! `chipleakd` command-line contract: exit codes and flag validation.
//!
//! Operators script around these codes (restart on 1, page on 3, fix
//! the invocation on 2 — see docs/operations.md), so each failure class
//! is pinned through the real binary:
//!
//! * `2` — usage errors: unknown flags, malformed values, `--workers 0`
//!   (which used to silently become 1);
//! * `3` — an unbindable `--socket` path, with the OS error on stderr.

use std::process::{Command, Output, Stdio};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chipleakd"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .output()
        .expect("spawn chipleakd")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn zero_workers_is_a_usage_error_not_a_silent_fallback() {
    let output = run(&["--workers", "0"]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("--workers must be at least 1"), "{stderr}");
    assert!(stderr.contains("usage:"), "usage shown on usage errors");
}

#[test]
fn unknown_flags_and_malformed_values_exit_2() {
    for args in [
        &["--bogus"][..],
        &["--workers", "many"][..],
        &["--queue-cap", "0"][..],
        &["--queue-cap", "-3"][..],
        &["--default-deadline-ms", "soon"][..],
        &["--workers"][..],
        &["stray-positional"][..],
    ] {
        let output = run(args);
        assert_eq!(
            output.status.code(),
            Some(2),
            "args {args:?}: {}",
            stderr_of(&output)
        );
        assert!(
            stderr_of(&output).contains("usage:"),
            "args {args:?} must print usage"
        );
    }
}

#[cfg(unix)]
#[test]
fn unbindable_socket_path_exits_3_with_the_os_error() {
    let output = run(&["--socket", "/nonexistent-chipleakd-dir/d.sock"]);
    assert_eq!(output.status.code(), Some(3), "{}", stderr_of(&output));
    let stderr = stderr_of(&output);
    assert!(
        stderr.contains("cannot bind socket /nonexistent-chipleakd-dir/d.sock"),
        "{stderr}"
    );
    // The bind failure is an operator problem, not a CLI problem: no
    // usage banner, and the OS error text is preserved verbatim.
    assert!(!stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("os error"), "{stderr}");
}

#[test]
fn valid_overload_flags_are_accepted() {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_chipleakd"))
        .args([
            "--workers",
            "2",
            "--queue-cap",
            "16",
            "--default-deadline-ms",
            "60000",
            "--write-timeout-ms",
            "1000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn chipleakd");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"{\"v\":1,\"id\":1,\"job\":{\"kind\":\"ping\"}}\n")
        .expect("write request");
    let output = child.wait_with_output().expect("chipleakd exits");
    assert_eq!(output.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&output.stdout),
        "{\"v\":1,\"id\":1,\"ok\":{\"kind\":\"pong\",\"protocol\":1}}\n"
    );
}
