//! Integration tests of the `chipleak` CLI binary (spawned as a process
//! via the `CARGO_BIN_EXE_*` environment Cargo provides to integration
//! tests).

use std::process::Command;

fn chipleak() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chipleak"))
}

fn charlib_path() -> std::path::PathBuf {
    // Characterize once per test binary run and cache in the target dir.
    static ONCE: std::sync::OnceLock<std::path::PathBuf> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| {
        let path = std::env::temp_dir().join("chipleak_test_charlib.json");
        let out = chipleak()
            .args([
                "characterize",
                "--sweep-points",
                "7",
                "--out",
                path.to_str().expect("utf-8 temp path"),
            ])
            .output()
            .expect("spawn chipleak");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        path
    })
    .clone()
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = chipleak().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails() {
    let out = chipleak().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn estimate_requires_cells_flag() {
    let out = chipleak()
        .args(["estimate", "--die", "100x100"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cells"));
}

#[test]
fn estimate_rejects_malformed_die() {
    let lib = charlib_path();
    let out = chipleak()
        .args([
            "estimate",
            "--cells",
            "100",
            "--die",
            "100by100",
            "--library",
            lib.to_str().expect("utf-8"),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("800x600"));
}

#[test]
fn characterize_then_estimate_roundtrip() {
    let lib = charlib_path();
    let out = chipleak()
        .args([
            "estimate",
            "--cells",
            "10000",
            "--die",
            "400x400",
            "--library",
            lib.to_str().expect("utf-8"),
            "--yield-budget",
            "1e-3",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mean leakage"), "{stdout}");
    assert!(stdout.contains("95% budget"), "{stdout}");
    assert!(stdout.contains("yield at"), "{stdout}");
}

#[test]
fn estimate_file_flow_works() {
    let lib = charlib_path();
    let placement = std::env::temp_dir().join("chipleak_test_design.txt");
    std::fs::write(
        &placement,
        "design demo 40 40\nu0 inv_x1 5 5\nu1 nand2_x1 15 5\nu2 nor2_x1 25 5\n",
    )
    .expect("write placement");
    let out = chipleak()
        .args([
            "estimate-file",
            "--placement",
            placement.to_str().expect("utf-8"),
            "--library",
            lib.to_str().expect("utf-8"),
            "--exact",
            "true",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RG estimate"), "{stdout}");
    assert!(stdout.contains("O(n²) truth"), "{stdout}");
}

#[test]
fn estimate_file_reports_unknown_cells() {
    let lib = charlib_path();
    let placement = std::env::temp_dir().join("chipleak_test_bad_design.txt");
    std::fs::write(&placement, "design demo 40 40\nu0 flux_capacitor 5 5\n")
        .expect("write placement");
    let out = chipleak()
        .args([
            "estimate-file",
            "--placement",
            placement.to_str().expect("utf-8"),
            "--library",
            lib.to_str().expect("utf-8"),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("flux_capacitor"));
}

#[test]
fn estimate_supports_mix_presets() {
    let lib = charlib_path();
    for (mix, should_pass) in [("datapath", true), ("memory", true), ("bogus", false)] {
        let out = chipleak()
            .args([
                "estimate",
                "--cells",
                "5000",
                "--die",
                "300x300",
                "--mix",
                mix,
                "--library",
                lib.to_str().expect("utf-8"),
            ])
            .output()
            .expect("spawn");
        assert_eq!(out.status.success(), should_pass, "mix {mix}");
        if !should_pass {
            assert!(String::from_utf8_lossy(&out.stderr).contains("unknown mix"));
        }
    }
}

#[test]
fn resilient_mode_degrades_and_reports_the_rejected_rung() {
    // dmax 100 on a 50x50 die invalidates polar1d; the ladder must land
    // on integral2d, say so on stderr, and still exit 0.
    let out = chipleak()
        .args([
            "estimate",
            "--cells",
            "2000",
            "--die",
            "50x50",
            "--dmax",
            "100",
            "--resilient",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("degraded: polar1d"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("method:        integral2d"), "{stdout}");
}

#[test]
fn strict_mode_refuses_with_exit_code_2() {
    let out = chipleak()
        .args([
            "estimate", "--cells", "2000", "--die", "50x50", "--dmax", "100", "--method",
            "polar1d", "--strict",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("strict mode refuses degradation"),
        "{stderr}"
    );
}

#[test]
fn resilient_and_strict_are_mutually_exclusive() {
    let out = chipleak()
        .args([
            "estimate",
            "--cells",
            "2000",
            "--die",
            "50x50",
            "--resilient",
            "--strict",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn exact_lattice_method_needs_a_guarded_mode() {
    let out = chipleak()
        .args([
            "estimate",
            "--cells",
            "500",
            "--die",
            "50x50",
            "--method",
            "exact-lattice",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --strict or --resilient"));
    let ok = chipleak()
        .args([
            "estimate",
            "--cells",
            "500",
            "--die",
            "50x50",
            "--method",
            "exact-lattice",
            "--strict",
        ])
        .output()
        .expect("spawn");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("exact-lattice"));
}

#[test]
fn polar_method_rejected_when_dmax_exceeds_die() {
    let lib = charlib_path();
    let out = chipleak()
        .args([
            "estimate",
            "--cells",
            "1000",
            "--die",
            "50x50",
            "--dmax",
            "100",
            "--method",
            "polar1d",
            "--library",
            lib.to_str().expect("utf-8"),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not applicable"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
