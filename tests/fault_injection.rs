//! Deterministic fault-injection suite: every injected fault class must
//! end in a typed error or a recorded degradation — never a panic, an
//! abort, or a silently propagated NaN — and the observability metrics
//! must stay bit-identical across thread counts even while faults fire.
//!
//! All fault sites derive from a [`FaultPlan`] seed through pure functions
//! of the site (distance bits, chunk index, byte offset), so a failure
//! here reproduces exactly on re-run.

use fullchip_leakage::core::estimator::LadderStage;
use fullchip_leakage::core::CoreError;
use fullchip_leakage::netlist::io::{read_placement, write_placement};
use fullchip_leakage::netlist::{iscas85, NetlistError};
use fullchip_leakage::obs::{AggregatingRecorder, FakeClock, Instruments};
use fullchip_leakage::prelude::*;
use fullchip_leakage::sim::{CellNetlist, LeakageSolver, SimError};
use leakage_fault::FaultPlan;

fn charlib() -> fullchip_leakage::cells::model::CharacterizedLibrary {
    let tech = Technology::cmos90();
    Characterizer::new(&tech)
        .characterize_library(
            &CellLibrary::standard_62(),
            CharMethod::Analytical { sweep_points: 7 },
        )
        .expect("charax")
}

fn chars(n_cells: usize, w: f64, h: f64) -> HighLevelCharacteristics {
    HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(62).expect("hist"))
        .n_cells(n_cells)
        .die_dimensions(w, h)
        .build()
        .expect("chars")
}

// ---------------------------------------------------------------------
// Fault class 1: NaN poisoning of the correlation model.
// ---------------------------------------------------------------------

#[test]
fn full_nan_poisoning_exhausts_the_ladder_with_a_typed_error() {
    let plan = FaultPlan::new(0xDEAD);
    let wid = plan.nan_correlation(TentCorrelation::new(50.0).expect("model"), 1.0);
    let est = ChipLeakageEstimator::new(
        &charlib(),
        &Technology::cmos90(),
        chars(5_000, 400.0, 300.0),
        wid,
    )
    .expect("estimator");
    match est.estimate_resilient() {
        Err(CoreError::EstimationExhausted { attempts, summary }) => {
            assert_eq!(attempts, 4, "{summary}");
            assert!(summary.contains("non-finite"), "{summary}");
        }
        other => panic!("expected EstimationExhausted, got {other:?}"),
    }
}

#[test]
fn partial_nan_poisoning_never_escapes_unrecorded() {
    // At a 30 % poison rate some rungs may survive (their quadrature may
    // miss every poisoned distance); whatever happens must be a finite
    // accepted estimate with an honest report, or a typed exhaustion.
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed);
        let wid = plan.nan_correlation(TentCorrelation::new(50.0).expect("model"), 0.3);
        let est = ChipLeakageEstimator::new(
            &charlib(),
            &Technology::cmos90(),
            chars(2_000, 250.0, 200.0),
            wid,
        )
        .expect("estimator");
        match est.estimate_resilient() {
            Ok(res) => {
                assert!(res.estimate.variance.is_finite(), "seed {seed}");
                assert!(res.estimate.variance >= 0.0, "seed {seed}");
                assert_eq!(res.report.accepted(), Some(stage_of(&res)), "seed {seed}");
            }
            Err(CoreError::EstimationExhausted { .. }) => {}
            Err(other) => panic!("seed {seed}: untyped failure {other:?}"),
        }
    }
}

fn stage_of(res: &fullchip_leakage::core::ResilientEstimate) -> LadderStage {
    res.report.accepted().expect("accepted stage")
}

#[test]
fn nan_poisoned_ladder_is_deterministic_and_its_degradation_is_observable() {
    let run = || {
        let plan = FaultPlan::new(7);
        let wid = plan.nan_correlation(TentCorrelation::new(50.0).expect("model"), 1.0);
        let est = ChipLeakageEstimator::new(
            &charlib(),
            &Technology::cmos90(),
            chars(2_000, 250.0, 200.0),
            wid,
        )
        .expect("estimator");
        let recorder = AggregatingRecorder::new();
        let clock = FakeClock::new(3);
        let ins = Instruments::new(&recorder, &clock);
        let outcome = est.estimate_resilient_instrumented(ins);
        (outcome, recorder.snapshot())
    };
    let (a, snap_a) = run();
    let (b, snap_b) = run();
    assert_eq!(a, b);
    // The poisoned runs legitimately record NaN observations, and
    // NaN != NaN under PartialEq — compare the serialized form instead.
    assert_eq!(snap_a.to_json_string(), snap_b.to_json_string());
    // The exhaustion left a trace: every rung's rejection was counted.
    let json = snap_a.to_json_string();
    assert!(json.contains("core.resilient.exhausted"), "{json}");
    assert!(json.contains("core.resilient.rejected.polar1d"), "{json}");
    assert!(
        json.contains("core.resilient.rejected.exact_lattice"),
        "{json}"
    );
}

// ---------------------------------------------------------------------
// Fault class 2: forced solver non-convergence.
// ---------------------------------------------------------------------

#[test]
fn starved_solver_fails_typed_with_scale_and_budget() {
    let plan = FaultPlan::new(11);
    let solver = LeakageSolver::new(&Technology::cmos90());
    let nand = CellNetlist::nand(2, 1.0, 2.0);
    let err = solver
        .solve_with_options(&nand, 0, 0.0, &[], &plan.unconverging_solver())
        .expect_err("1 iteration cannot converge");
    match err {
        SimError::Unconverged {
            residual,
            residual_scale,
            iterations,
            recovery_attempted,
            ..
        } => {
            assert!(residual.is_finite());
            assert!(residual_scale > 0.0);
            assert_eq!(iterations, 1);
            assert!(!recovery_attempted);
        }
        other => panic!("expected Unconverged, got {other:?}"),
    }
}

#[test]
fn starved_solver_with_recovery_ends_typed_or_rescued() {
    let plan = FaultPlan::new(11);
    let solver = LeakageSolver::new(&Technology::cmos90());
    let reference = solver
        .solve(&CellNetlist::nand(2, 1.0, 2.0), 0, 0.0, &[])
        .expect("healthy solve");
    match solver.solve_with_options(
        &CellNetlist::nand(2, 1.0, 2.0),
        0,
        0.0,
        &[],
        &plan.starved_recovering_solver(),
    ) {
        Ok(sol) => {
            // Rescued by the ladder: the answer must still be physical.
            assert!(sol.leakage.is_finite() && sol.leakage > 0.0);
            assert!((sol.leakage - reference.leakage).abs() / reference.leakage < 1e-3);
        }
        Err(SimError::Unconverged {
            recovery_attempted, ..
        }) => assert!(recovery_attempted),
        Err(other) => panic!("untyped failure {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Fault class 3: truncated / duplicated / NaN-corrupted input text.
// ---------------------------------------------------------------------

fn reference_placement_text() -> String {
    let lib = CellLibrary::standard_62();
    let specs = iscas85::build_suite(&lib).expect("suite");
    let mut buf = Vec::new();
    write_placement(&mut buf, &specs[0], &lib).expect("write");
    String::from_utf8(buf).expect("utf8")
}

#[test]
fn corrupted_placements_yield_typed_errors_never_panics() {
    let lib = CellLibrary::standard_62();
    let clean = reference_placement_text();
    assert!(
        read_placement(clean.as_bytes(), &lib).is_ok(),
        "reference must parse"
    );
    let mut at_least_one_error = 0usize;
    for seed in 0..16u64 {
        let plan = FaultPlan::new(seed);
        for (class, corrupted) in [
            ("truncated", plan.truncated(&clean)),
            ("duplicated", plan.duplicated(&clean)),
            ("nan-number", plan.nan_number(&clean)),
        ] {
            match read_placement(corrupted.as_bytes(), &lib) {
                // A cut at a line boundary can legitimately still parse.
                Ok(_) => {}
                Err(NetlistError::InvalidArgument { reason }) => {
                    assert!(!reason.is_empty(), "seed {seed} {class}");
                    at_least_one_error += 1;
                }
                Err(other) => panic!("seed {seed} {class}: unexpected error kind {other:?}"),
            }
        }
    }
    assert!(
        at_least_one_error >= 16,
        "corruption was ineffective: only {at_least_one_error} rejections"
    );
}

#[test]
fn duplicated_instance_lines_are_rejected_with_the_line_number() {
    let lib = CellLibrary::standard_62();
    let clean = reference_placement_text();
    // Deterministically duplicate a gate line (not the header): the parser
    // must refuse the duplicate instance name, citing the line.
    let gate_line = clean
        .lines()
        .find(|l| !l.trim().is_empty() && !l.starts_with('#') && !l.starts_with("design"))
        .expect("gate line");
    let corrupted = format!("{clean}{gate_line}\n");
    match read_placement(corrupted.as_bytes(), &lib) {
        Err(NetlistError::InvalidArgument { reason }) => {
            assert!(reason.contains("duplicate instance"), "{reason}");
            assert!(reason.contains("line"), "{reason}");
        }
        other => panic!("expected duplicate-instance rejection, got {other:?}"),
    }
}

#[test]
fn nan_coordinates_are_rejected_as_non_finite() {
    let lib = CellLibrary::standard_62();
    let text = "design d 100.0 100.0\ng0 inv_x1 NaN 5.0\n";
    match read_placement(text.as_bytes(), &lib) {
        Err(NetlistError::InvalidArgument { reason }) => {
            assert!(reason.contains("finite"), "{reason}");
        }
        other => panic!("expected non-finite rejection, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Fault class 4: worker-thread panics inside parallel regions.
// ---------------------------------------------------------------------

#[test]
fn worker_panics_become_typed_errors_bit_identical_across_thread_counts() {
    use fullchip_leakage::numeric::NumericError;
    use std::sync::atomic::{AtomicUsize, Ordering};

    let plan = FaultPlan::new(21);
    let injector = plan.panic_injector(0.25);
    let n_chunks = 32usize;
    let expected_chunk = *injector
        .selected(n_chunks)
        .first()
        .expect("rate 0.25 over 32 chunks must select at least one");

    let mut outcomes = Vec::new();
    for par in [
        Parallelism::serial(),
        Parallelism::threads(2),
        Parallelism::threads(8),
    ] {
        let attempted = AtomicUsize::new(0);
        let result = par.try_map_chunks(n_chunks, |i| {
            attempted.fetch_add(1, Ordering::Relaxed);
            injector.maybe_panic(i);
            i as f64
        });
        // Every chunk ran exactly once despite the panics: caller-visible
        // side effects (obs counters in real kernels) are thread-invariant.
        assert_eq!(
            attempted.load(Ordering::Relaxed),
            n_chunks,
            "{} threads",
            par.thread_count()
        );
        match result {
            Err(NumericError::WorkerPanic { chunk, message }) => {
                assert_eq!(chunk, expected_chunk, "{} threads", par.thread_count());
                outcomes.push((chunk, message));
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
    assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn panic_free_fault_runs_leave_healthy_results_intact() {
    // rate 0 ⇒ the injector must be fully transparent.
    let plan = FaultPlan::new(3);
    let injector = plan.panic_injector(0.0);
    let healthy = Parallelism::threads(4)
        .try_map_chunks(16, |i| {
            injector.maybe_panic(i);
            i * 2
        })
        .expect("no faults");
    assert_eq!(healthy, (0..16).map(|i| i * 2).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------
// Fault classes 7-8: corrupted chipleakd request streams. Torn, replayed,
// NaN-poisoned, oversized, and prematurely closed NDJSON input must each
// end in a typed wire error for the damaged line while the rest of the
// stream is served normally — never a panic, never a dropped healthy
// response — and the fleet counters must stay bit-identical across
// worker counts even while the faults fire.
// ---------------------------------------------------------------------

mod requests {
    use fullchip_leakage::service::{Service, ServiceConfig};
    use leakage_fault::FaultPlan;
    use std::collections::BTreeMap;

    /// A healthy request stream with cheap jobs (3-point sweeps) spanning
    /// every response family: pong, characterize, estimate, typed error.
    fn healthy_stream() -> String {
        [
            r#"{"v":1,"id":1,"job":{"kind":"ping"}}"#,
            r#"{"v":1,"id":2,"job":{"kind":"characterize","sweep_points":3}}"#,
            r#"{"v":1,"id":3,"job":{"kind":"estimate","cells":600,"die":[150,150],"sweep_points":3}}"#,
            r#"{"v":1,"id":4,"job":{"kind":"estimate","cells":600,"die":[150,150],"sweep_points":3,"method":"linear"}}"#,
            r#"{"v":1,"id":5,"job":{"kind":"estimate","cells":600,"die":[150,150],"sweep_points":3,"p":2.0}}"#,
            r#"{"v":1,"id":6,"job":{"kind":"ping"}}"#,
        ]
        .map(|l| format!("{l}\n"))
        .concat()
    }

    const LINE_CAP: usize = 512;

    /// Serves `input` on a fresh service and returns the response lines
    /// plus the fleet counter snapshot. Reaching the return at all is the
    /// zero-panic assertion: a worker panic would propagate out of the
    /// server's scoped threads and fail the test.
    fn serve(input: &str, workers: usize) -> (Vec<String>, BTreeMap<String, u64>) {
        let service = Service::new(ServiceConfig {
            workers,
            max_line_bytes: LINE_CAP,
            ..ServiceConfig::default()
        });
        let mut out: Vec<u8> = Vec::new();
        service
            .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
            .expect("serve never fails on an in-memory stream");
        let lines = String::from_utf8(out)
            .expect("UTF-8 responses")
            .lines()
            .map(str::to_owned)
            .collect();
        (lines, service.fleet_snapshot().counters)
    }

    fn assert_well_formed(lines: &[String]) {
        for line in lines {
            assert!(
                line.starts_with("{\"v\":1,\"id\":"),
                "malformed response: {line}"
            );
        }
    }

    fn count_errs(lines: &[String], kind: &str) -> usize {
        let tag = format!("\"err\":{{\"kind\":{kind:?}");
        lines.iter().filter(|l| l.contains(&tag)).count()
    }

    /// Every corruption class, applied at several seeds: the damaged line
    /// draws its typed error, the healthy lines are all answered, and the
    /// server reaches EOF without panicking.
    #[test]
    fn corrupted_streams_yield_typed_errors_and_healthy_lines_survive() {
        let clean = healthy_stream();
        let n = clean.lines().count();
        for seed in [11, 23, 47] {
            let plan = FaultPlan::new(seed);

            // Torn write: one line clipped, the rest arrives.
            let (lines, _) = serve(&plan.clipped_request(&clean), 2);
            assert_well_formed(&lines);
            assert_eq!(lines.len(), n, "clipped line still gets a response");
            assert_eq!(count_errs(&lines, "parse"), 1, "seed {seed}: {lines:?}");

            // Replayed line: jobs are idempotent, so a duplicate is just
            // answered twice — no new errors appear.
            let (lines, _) = serve(&plan.duplicated(&clean), 2);
            assert_well_formed(&lines);
            assert_eq!(lines.len(), n + 1);
            assert_eq!(count_errs(&lines, "parse"), 0);

            // NaN-corrupted numeric token: bare NaN is not JSON.
            let (lines, _) = serve(&plan.nan_request_number(&clean), 2);
            assert_well_formed(&lines);
            assert_eq!(lines.len(), n);
            assert_eq!(count_errs(&lines, "parse"), 1, "seed {seed}: {lines:?}");

            // Oversized job: rejected by the line cap before parsing.
            let (lines, _) = serve(&plan.oversized_request(&clean, LINE_CAP), 2);
            assert_well_formed(&lines);
            assert_eq!(lines.len(), n);
            assert_eq!(count_errs(&lines, "oversized"), 1, "seed {seed}: {lines:?}");
            let cap_msg = format!("request line exceeds {LINE_CAP} bytes");
            assert!(
                lines.iter().any(|l| l.contains(&cap_msg)),
                "typed message names the cap: {lines:?}"
            );

            // Mid-stream EOF: the connection dies at a seeded byte. The
            // complete prefix is served; a final torn fragment still gets
            // an in-order response (parse error or, rarely, a clean cut).
            let cut = plan.truncated(&clean);
            let (lines, _) = serve(&cut, 2);
            assert_well_formed(&lines);
            assert_eq!(
                lines.len(),
                cut.lines().filter(|l| !l.trim().is_empty()).count(),
                "every surviving line is answered, seed {seed}"
            );
        }
    }

    /// The healthy-line invariant, sharpened: responses for undamaged
    /// request lines are byte-identical to their responses in a clean run.
    #[test]
    fn undamaged_lines_answer_exactly_as_in_a_clean_run() {
        let clean = healthy_stream();
        let (reference, _) = serve(&clean, 1);
        let plan = FaultPlan::new(0xFA);
        let corrupted = plan.clipped_request(&clean);
        let (lines, _) = serve(&corrupted, 2);
        let mut matched = 0;
        for (req, resp) in corrupted.lines().zip(&lines) {
            if let Some(i) = clean.lines().position(|l| l == req) {
                assert_eq!(resp, &reference[i], "undamaged line {i} diverged");
                matched += 1;
            }
        }
        assert_eq!(matched, clean.lines().count() - 1);
    }

    /// Worker-count invariance under fire: the response bytes AND the
    /// fleet counter snapshot must not depend on how many workers drained
    /// the corrupted stream.
    #[test]
    fn fleet_snapshots_are_bit_identical_across_worker_counts_under_faults() {
        let clean = healthy_stream();
        let plan = FaultPlan::new(0xC0FFEE);
        for corrupted in [
            plan.clipped_request(&clean),
            plan.duplicated(&clean),
            plan.nan_request_number(&clean),
            plan.oversized_request(&clean, LINE_CAP),
            plan.truncated(&clean),
        ] {
            let (ref_lines, ref_counters) = serve(&corrupted, 1);
            for workers in [2, 8] {
                let (lines, counters) = serve(&corrupted, workers);
                assert_eq!(lines, ref_lines, "{workers} workers changed a byte");
                assert_eq!(
                    counters, ref_counters,
                    "{workers} workers changed a counter"
                );
            }
        }
    }

    /// The supervision counters obey the same discipline: a seeded
    /// panic storm crashes the same (seq-keyed) requests at every
    /// worker count, so `service.supervisor.respawns` — and the whole
    /// snapshot with it — stays bit-identical across 1/2/8 workers.
    #[test]
    fn respawn_counters_are_bit_identical_across_worker_counts() {
        let input = healthy_stream();
        let chaos = FaultPlan::new(0xC0FFEE).chaos(0.4, 0.0);
        let crashed = chaos.selected_panics(input.lines().count() as u64);
        assert!(!crashed.is_empty(), "seed must crash something");
        let serve_stormy = |workers: usize| {
            let service = Service::new(ServiceConfig {
                workers,
                max_line_bytes: LINE_CAP,
                ..ServiceConfig::default()
            })
            .with_fault_hook(std::sync::Arc::new(move |seq| {
                if chaos.panics(seq) {
                    panic!("fault plan: crash at seq {seq}");
                }
            }));
            let mut out: Vec<u8> = Vec::new();
            service
                .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
                .expect("the fleet survives the storm");
            let lines: Vec<String> = String::from_utf8(out)
                .expect("UTF-8 responses")
                .lines()
                .map(str::to_owned)
                .collect();
            (lines, service.fleet_snapshot().counters)
        };
        let (ref_lines, ref_counters) = serve_stormy(1);
        assert_well_formed(&ref_lines);
        assert_eq!(count_errs(&ref_lines, "internal"), crashed.len());
        assert_eq!(
            ref_counters.get("service.supervisor.respawns"),
            Some(&(crashed.len() as u64))
        );
        // Unbounded queue: the occupancy high-water counter must be
        // absent, not zero — it exists only where admission control
        // already traded snapshot determinism for boundedness.
        assert!(!ref_counters.contains_key("service.queue.depth"));
        for workers in [2, 8] {
            let (lines, counters) = serve_stormy(workers);
            assert_eq!(lines, ref_lines, "{workers} workers changed a byte");
            assert_eq!(
                counters, ref_counters,
                "{workers} workers changed a counter"
            );
        }
    }

    /// With a queue cap configured the occupancy high-water mark joins
    /// the snapshot (its value is drain-speed dependent by design and
    /// bounded by the cap).
    #[test]
    fn bounded_mode_reports_the_queue_high_water_mark() {
        let cap = 3;
        let service = Service::new(ServiceConfig {
            workers: 1,
            max_line_bytes: LINE_CAP,
            queue_cap: Some(cap),
            ..ServiceConfig::default()
        });
        let mut out: Vec<u8> = Vec::new();
        service
            .serve(
                std::io::BufReader::new(healthy_stream().as_bytes()),
                &mut out,
            )
            .expect("serve");
        let counters = service.fleet_snapshot().counters;
        let depth = counters
            .get("service.queue.depth")
            .expect("bounded mode always reports the high-water mark");
        assert!(*depth <= cap as u64, "high water {depth} exceeds cap {cap}");
    }
}
