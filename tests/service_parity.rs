//! The headline acceptance test for `chipleakd`: a cold start followed
//! by 100 histogram-only estimate jobs performs EXACTLY ONE
//! characterization (pinned through the obs fleet counters), and every
//! cached response is bit-identical to what the one-shot `chipleak` CLI
//! computes for the same job with no cache anywhere in sight.
//!
//! The CLI prints `{:.4e}`-rounded amperes; the service wire format
//! carries full-precision floats. Parity is checked by rendering the
//! service's numbers through the CLI's own format string, which is
//! exact: two f64 values that agree to 5 significant digits AND come
//! from the same estimator path are the same value or the test catches
//! the drift at the 5th digit.

use fullchip_leakage::service::{Service, ServiceConfig};

/// Distinct histogram-only jobs, all on the cmos90 corner at the default
/// 13-point sweep — CLI-expressible (method × mix × floorplan variation).
struct Config {
    job: &'static str,
    cli: &'static [&'static str],
}

const CONFIGS: &[Config] = &[
    Config {
        job: r#"{"cells":10000,"die":[500,500]}"#,
        cli: &["--cells", "10000", "--die", "500x500"],
    },
    Config {
        job: r#"{"cells":10000,"die":[500,500],"method":"linear"}"#,
        cli: &["--cells", "10000", "--die", "500x500", "--method", "linear"],
    },
    Config {
        job: r#"{"cells":8000,"die":[400,300],"method":"integral2d","dmax":50,"p":0.3}"#,
        cli: &[
            "--cells",
            "8000",
            "--die",
            "400x300",
            "--method",
            "integral2d",
            "--dmax",
            "50",
            "--p",
            "0.3",
        ],
    },
    Config {
        job: r#"{"cells":20000,"die":[600,600],"mix":"memory"}"#,
        cli: &["--cells", "20000", "--die", "600x600", "--mix", "memory"],
    },
    Config {
        job: r#"{"cells":5000,"die":[350,350],"mix":"control","dmax":80}"#,
        cli: &[
            "--cells", "5000", "--die", "350x350", "--mix", "control", "--dmax", "80",
        ],
    },
];

const TOTAL_JOBS: usize = 100;

fn request(i: usize) -> String {
    let config = &CONFIGS[i % CONFIGS.len()];
    let body = config
        .job
        .strip_prefix('{')
        .expect("job template is an object");
    format!(r#"{{"v":1,"id":{i},"job":{{"kind":"estimate",{body}}}"#)
}

/// Pulls the f64 after `"key":` out of a wire response line.
fn field(line: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}")) + tag.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("terminated value in {line}"));
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("{key}={} : {e}", &rest[..end]))
}

/// Pulls the `{:.4e}`-formatted amperes off a labelled CLI stdout line.
fn cli_number(stdout: &str, label: &str) -> String {
    let line = stdout
        .lines()
        .find(|l| l.starts_with(label))
        .unwrap_or_else(|| panic!("{label:?} in {stdout}"));
    let rest = line[label.len()..].trim();
    rest.strip_suffix(" A")
        .unwrap_or_else(|| panic!("amperes suffix in {line:?}"))
        .to_string()
}

fn run_cli(args: &[&str]) -> String {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_chipleak"))
        .arg("estimate")
        .args(args)
        .output()
        .expect("run chipleak");
    assert!(
        output.status.success(),
        "chipleak estimate {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("UTF-8 stdout")
}

#[test]
fn hundred_cached_jobs_one_characterization_cli_identical() {
    // Cold start + 100 jobs over 5 distinct configs, one service.
    let input: String = (0..TOTAL_JOBS).map(|i| request(i) + "\n").collect();
    let service = Service::new(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let mut out: Vec<u8> = Vec::new();
    service
        .serve(std::io::BufReader::new(input.as_bytes()), &mut out)
        .expect("serve jobs");
    let responses: Vec<String> = String::from_utf8(out)
        .expect("UTF-8 responses")
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(responses.len(), TOTAL_JOBS);

    // Exactly one characterization: the first job misses, the other 99
    // (including 95 exact repeats) reuse the shared library entry.
    let counters = service.fleet_snapshot().counters;
    let get = |k: &str| counters.get(k).copied().unwrap_or(0);
    assert_eq!(get("service.characterizations"), 1);
    assert_eq!(get("service.cache.lib.misses"), 1);
    assert_eq!(get("service.cache.lib.hits"), TOTAL_JOBS as u64 - 1);
    assert_eq!(get("service.responses.ok"), TOTAL_JOBS as u64);
    assert_eq!(get("service.responses.err"), 0);

    // Cached repeats are bit-identical to the first (cold) answer modulo
    // the echoed id: every config's 20 occurrences collapse to one body.
    for (i, line) in responses.iter().enumerate() {
        let first = &responses[i % CONFIGS.len()];
        let body = line.split_once("\"ok\":").expect("ok body").1;
        let first_body = first.split_once("\"ok\":").expect("ok body").1;
        assert_eq!(body, first_body, "job {i} diverged from its cold twin");
    }

    // And the cold answers themselves match the one-shot CLI, rendered
    // through the CLI's own format strings.
    for (t, config) in CONFIGS.iter().enumerate() {
        let stdout = run_cli(config.cli);
        let line = &responses[t];
        assert!(line.contains("\"ok\""), "config {t} errored: {line}");
        for (label, key) in [
            ("mean leakage:", "mean"),
            ("std leakage:", "std"),
            ("95% budget:", "q95"),
            ("99% budget:", "q99"),
        ] {
            assert_eq!(
                format!("{:.4e}", field(line, key)),
                cli_number(&stdout, label),
                "config {t}: service {key} drifted from `chipleak estimate {:?}`",
                config.cli
            );
        }
    }
}
