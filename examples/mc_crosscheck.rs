//! Analytic estimate vs full-chip Monte-Carlo: place a random design,
//! estimate its leakage with the Random Gate model, then verify both the
//! mean and the standard deviation against direct sampling of correlated
//! channel-length fields.
//!
//! ```sh
//! cargo run --release --example mc_crosscheck
//! ```

use fullchip_leakage::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;

    // A 2,000-gate random design over the full library.
    let hist = UsageHistogram::uniform(lib.len())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let circuit = RandomCircuitGenerator::new(hist.clone()).generate_exact(2_000, &mut rng)?;
    let placed = place(
        &circuit,
        &lib,
        PlacementStyle::RandomShuffle { seed: 7 },
        0.7,
    )?;
    println!(
        "design: {} gates on a {:.0} x {:.0} µm die",
        placed.n_gates(),
        placed.width(),
        placed.height()
    );

    let wid = TentCorrelation::new(100.0)?;

    // Analytic estimate from the high-level characteristics.
    let chars = HighLevelCharacteristics::builder()
        .histogram(hist)
        .n_cells(placed.n_gates())
        .die_dimensions(placed.width(), placed.height())
        .build()?;
    let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?.estimate_linear()?;

    // Monte-Carlo ground truth on the same placed design.
    println!("sampling 4,000 chip instances ...");
    let sampler = ChipSamplerBuilder::new(&placed, &charlib, &tech, &wid).build()?;
    let stats = sampler.run(4_000, &mut rng);

    println!("\n{:>22} {:>14} {:>14}", "", "mean (A)", "std (A)");
    println!(
        "{:>22} {:>14.4e} {:>14.4e}",
        "Random Gate (O(n))",
        est.mean,
        est.std()
    );
    println!(
        "{:>22} {:>14.4e} {:>14.4e}",
        "Monte-Carlo (4k)",
        stats.mean(),
        stats.sample_std()
    );
    println!(
        "{:>22} {:>13.2}% {:>13.2}%",
        "difference",
        (est.mean / stats.mean() - 1.0) * 100.0,
        (est.std() / stats.sample_std() - 1.0) * 100.0
    );
    Ok(())
}
