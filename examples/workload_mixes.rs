//! Early-mode comparison of workload mixes: the same die and gate count
//! under control-logic, datapath, memory-dominated and clock-tree usage
//! histograms — how the *expected* mix (the one characteristic a planner
//! controls) moves the leakage budget.
//!
//! ```sh
//! cargo run --release --example workload_mixes
//! ```

use fullchip_leakage::cells::presets;
use fullchip_leakage::core::LeakageDistribution;
use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
    let wid = TentCorrelation::new(150.0)?;

    let mixes = [
        ("control logic", presets::control_logic(&lib)?),
        ("datapath", presets::datapath(&lib)?),
        ("memory-dominated", presets::memory_dominated(&lib)?),
        ("clock tree", presets::clock_tree(&lib)?),
    ];

    println!(
        "\n{:>18} {:>13} {:>13} {:>8} {:>13}",
        "mix", "mean (A)", "std (A)", "σ/μ", "99% budget"
    );
    for (name, hist) in mixes {
        let chars = HighLevelCharacteristics::builder()
            .histogram(hist)
            .n_cells(100_000)
            .die_dimensions(1_000.0, 1_000.0)
            .build()?;
        let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?
            .with_vt_correction(&tech)
            .estimate_polar_1d()?;
        let dist = LeakageDistribution::from_estimate(&est)?;
        println!(
            "{name:>18} {:>13.4e} {:>13.4e} {:>7.2}% {:>13.4e}",
            est.mean,
            est.std(),
            est.relative_std() * 100.0,
            dist.quantile(0.99)
        );
    }
    println!(
        "\nsame die, same gate count: the usage histogram alone moves the mean\n\
         several-fold — exactly why it is one of the paper's four high-level\n\
         characteristics."
    );
    Ok(())
}
