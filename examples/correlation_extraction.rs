//! End-to-end extraction pipeline: noisy test-structure measurements →
//! robust correlation extraction (the paper's ref [5] step) → full-chip
//! estimate, compared against an estimate using the true correlation.
//!
//! ```sh
//! cargo run --release --example correlation_extraction
//! ```

use fullchip_leakage::prelude::*;
use fullchip_leakage::process::extraction::{
    extract_correlation, CorrelationSample, ExtractionOptions,
};
use rand::Rng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;

    // The fab's true (unknown to us) WID correlation.
    let truth = TentCorrelation::new(120.0)?;

    // Simulated test-structure measurements: sample correlations at a few
    // distances, each from a finite number of device pairs → noisy, can
    // violate monotonicity.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let mut samples = Vec::new();
    for i in 1..=14 {
        let d = i as f64 * 12.0;
        let pairs = 300;
        let noise: f64 = rng.gen_range(-0.05..0.05);
        samples.push(CorrelationSample {
            distance: d,
            correlation: truth.rho(d) + noise,
            count: pairs,
        });
    }
    println!("raw measurements (distance, sample ρ):");
    for s in &samples {
        println!("  {:>6.0} µm  {:+.3}", s.distance, s.correlation);
    }

    // Robust extraction: monotone, clamped, compact support.
    let extracted = extract_correlation(&samples, ExtractionOptions::default())?;
    println!(
        "\nextracted model: ρ(60) = {:.3} (truth {:.3}), support = {:?} µm",
        extracted.rho(60.0),
        truth.rho(60.0),
        extracted.support_radius()
    );

    // How much does measurement noise cost in the final estimate?
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(lib.len())?)
        .n_cells(50_000)
        .die_dimensions(700.0, 700.0)
        .build()?;
    let with_truth =
        ChipLeakageEstimator::new(&charlib, &tech, chars.clone(), &truth)?.estimate_linear()?;
    let with_extracted =
        ChipLeakageEstimator::new(&charlib, &tech, chars, &extracted)?.estimate_linear()?;
    println!(
        "\nσ with true correlation:      {:.4e} A\nσ with extracted correlation: {:.4e} A ({:+.2}%)",
        with_truth.std(),
        with_extracted.std(),
        (with_extracted.std() / with_truth.std() - 1.0) * 100.0
    );
    Ok(())
}
