//! Signal-probability analysis (paper §2.1.4 / Fig. 3): sweep the global
//! signal probability, observe the muted effect at design level, and find
//! the conservative (max-mean) setting.
//!
//! ```sh
//! cargo run --release --example signal_probability
//! ```

use fullchip_leakage::cells::state::{design_stats_at_probability, max_mean_signal_probability};
use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
    let hist = UsageHistogram::uniform(lib.len())?;

    // Single-gate spread first: the strongest state-to-state ratio in the
    // library, to contrast with the design-level curve.
    let mut worst: (String, f64) = (String::new(), 0.0);
    for cell in &charlib.cells {
        let lo = cell
            .states
            .iter()
            .map(|s| s.mean)
            .fold(f64::INFINITY, f64::min);
        let hi = cell.states.iter().map(|s| s.mean).fold(0.0, f64::max);
        if hi / lo > worst.1 {
            worst = (cell.name.clone(), hi / lo);
        }
    }
    println!(
        "largest single-gate state spread: {} at {:.1}x (paper: up to 10x)",
        worst.0, worst.1
    );

    println!(
        "\n{:>6} {:>14} {:>14}",
        "p", "mean/gate (A)", "std/gate (A)"
    );
    let mut lo = f64::INFINITY;
    let mut hi: f64 = 0.0;
    for k in 0..=20 {
        let p = k as f64 / 20.0;
        let (mean, std) = design_stats_at_probability(&charlib, &hist, p)?;
        lo = lo.min(mean);
        hi = hi.max(mean);
        if k % 2 == 0 {
            println!("{p:>6.2} {mean:>14.4e} {std:>14.4e}");
        }
    }
    println!(
        "\ndesign-level spread across all p: {:.2}x — far below the single-gate spread",
        hi / lo
    );

    let opt = max_mean_signal_probability(&charlib, &hist, 101)?;
    println!(
        "conservative setting: p* = {:.2}, mean/gate = {:.4e} A, std/gate = {:.4e} A",
        opt.p, opt.mean, opt.std
    );
    Ok(())
}
