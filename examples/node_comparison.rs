//! Cross-node comparison: the same design estimated on the 90 nm and
//! 65 nm technology cards — the scaling trend (more leakage, more
//! spread, more WID share) that motivated statistical leakage analysis.
//!
//! ```sh
//! cargo run --release --example node_comparison
//! ```

use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::standard_62();
    let hist = UsageHistogram::uniform(lib.len())?;
    let wid = TentCorrelation::new(150.0)?;

    println!(
        "{:>14} {:>13} {:>13} {:>8} {:>10}",
        "node", "mean (A)", "std (A)", "σ/μ", "d2d share"
    );
    for tech in [Technology::cmos90(), Technology::cmos65()] {
        // Each node needs its own characterization pass.
        let charlib =
            Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
        let chars = HighLevelCharacteristics::builder()
            .histogram(hist.clone())
            .n_cells(100_000)
            .die_dimensions(1_000.0, 1_000.0)
            .build()?;
        let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?
            .with_vt_correction(&tech)
            .estimate_polar_1d()?;
        println!(
            "{:>14} {:>13.4e} {:>13.4e} {:>7.2}% {:>9.2}",
            tech.name(),
            est.mean,
            est.std(),
            est.relative_std() * 100.0,
            tech.l_variation().d2d_variance_fraction()
        );
    }
    println!("\nscaling 90 → 65 nm: absolute leakage rises several-fold, while the");
    println!("chip-level σ/μ is pinned by the D2D floor — which shrinks at 65 nm, so");
    println!("the (harder) within-die correlation detail carries more of the spread.");
    Ok(())
}
