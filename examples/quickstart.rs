//! Quickstart: early-mode full-chip leakage estimate in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Technology and characterized cell library — computed once per
    //    process node and shared by every design.
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;

    // 2. High-level characteristics of the candidate design. In early
    //    mode these are *expected* values from planning, not a netlist.
    let chars = HighLevelCharacteristics::builder()
        .histogram(UsageHistogram::uniform(lib.len())?)
        .n_cells(250_000)
        .die_dimensions(1_500.0, 1_500.0) // µm
        .signal_probability(0.5)
        .build()?;

    // 3. Within-die spatial correlation of channel length: linear decay
    //    reaching zero at 200 µm (D2D share comes from the technology).
    let wid = TentCorrelation::new(200.0)?;

    // 4. Estimate. The polar O(1) method applies because the correlation
    //    support fits inside the die.
    let estimator =
        ChipLeakageEstimator::new(&charlib, &tech, chars, wid)?.with_vt_correction(&tech);
    let polar = estimator.estimate_polar_1d()?;
    let linear = estimator.estimate_linear()?;

    println!(
        "full-chip leakage (O(1) polar):  {:.4e} A ± {:.4e} A",
        polar.mean,
        polar.std()
    );
    println!(
        "full-chip leakage (O(n) linear): {:.4e} A ± {:.4e} A",
        linear.mean,
        linear.std()
    );
    println!("relative spread σ/μ: {:.2}%", polar.relative_std() * 100.0);
    Ok(())
}
