//! Late-mode sign-off: extract high-level characteristics from placed
//! ISCAS85-class benchmarks and compare the O(n) Random-Gate estimate to
//! the O(n²) "true leakage" of each specific design (the paper's Table 1
//! flow).
//!
//! ```sh
//! cargo run --release --example late_signoff_iscas
//! ```

use fullchip_leakage::cells::corrmap::CorrelationPolicy;
use fullchip_leakage::netlist::extract::extract_characteristics;
use fullchip_leakage::netlist::iscas85;
use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
    let wid = TentCorrelation::new(100.0)?;
    let rho_c = tech.l_variation().d2d_variance_fraction();
    let rho_total = |d: f64| rho_c + (1.0 - rho_c) * wid.rho(d);

    println!(
        "\n{:>8} {:>7} {:>13} {:>13} {:>9}",
        "circuit", "gates", "true σ (A)", "RG σ (A)", "σ err"
    );
    for spec in iscas85::TABLE1_SPECS.iter().take(5) {
        let placed = iscas85::build(spec, &lib)?;

        // Late mode: linear-time extraction from the placement ...
        let chars = extract_characteristics(&placed, lib.len(), 0.5)?;
        let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?.estimate_linear()?;

        // ... versus the O(n²) true leakage of this exact placement.
        let pairwise =
            PairwiseCovariance::new(&charlib, &placed.support(), 0.5, CorrelationPolicy::Exact)?;
        let truth = exact_placed_stats(placed.gates(), &pairwise, &rho_total);

        println!(
            "{:>8} {:>7} {:>13.4e} {:>13.4e} {:>8.2}%",
            placed.name(),
            placed.n_gates(),
            truth.std(),
            est.std(),
            (est.std() / truth.std() - 1.0).abs() * 100.0
        );
    }
    println!("\npaper Table 1 reports 0.2–1.4% σ errors on this suite");
    Ok(())
}
