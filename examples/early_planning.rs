//! Early-mode design planning: sweep die size and gate count to see how
//! leakage mean and spread respond — the paper's motivating use case
//! (budgeting power before a netlist exists).
//!
//! ```sh
//! cargo run --release --example early_planning
//! ```

use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos90();
    let lib = CellLibrary::standard_62();
    println!("characterizing {} cells ...", lib.len());
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
    let hist = UsageHistogram::uniform(lib.len())?;
    let wid = TentCorrelation::new(150.0)?;

    println!("\n--- sweep 1: gate count at fixed 1 mm² die ---");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "gates", "mean (A)", "std (A)", "σ/μ"
    );
    for n in [10_000usize, 50_000, 100_000, 500_000, 1_000_000] {
        let chars = HighLevelCharacteristics::builder()
            .histogram(hist.clone())
            .n_cells(n)
            .die_dimensions(1_000.0, 1_000.0)
            .build()?;
        let e = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?.estimate_polar_1d()?;
        println!(
            "{n:>10} {:>14.4e} {:>14.4e} {:>7.2}%",
            e.mean,
            e.std(),
            e.relative_std() * 100.0
        );
    }

    println!("\n--- sweep 2: die area at fixed 100k gates ---");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "side (µm)", "mean (A)", "std (A)", "σ/μ"
    );
    for side in [500.0, 800.0, 1_200.0, 2_000.0, 4_000.0] {
        let chars = HighLevelCharacteristics::builder()
            .histogram(hist.clone())
            .n_cells(100_000)
            .die_dimensions(side, side)
            .build()?;
        let e = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?.estimate_polar_1d()?;
        println!(
            "{side:>10} {:>14.4e} {:>14.4e} {:>7.2}%",
            e.mean,
            e.std(),
            e.relative_std() * 100.0
        );
    }
    println!(
        "\nnote: spreading the same gates over a larger die decorrelates them,\n\
         so the mean is unchanged while σ/μ falls toward the D2D floor."
    );
    Ok(())
}
