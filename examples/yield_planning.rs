//! Leakage-yield planning: turn the estimator's two moments into the
//! decision quantities a power planner actually asks for — budgets that
//! cover a target fraction of dies, and yields at a fixed budget — across
//! temperature corners.
//!
//! ```sh
//! cargo run --release --example yield_planning
//! ```

use fullchip_leakage::core::LeakageDistribution;
use fullchip_leakage::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::standard_62();
    let hist = UsageHistogram::uniform(lib.len())?;
    let wid = TentCorrelation::new(150.0)?;

    println!(
        "{:>8} {:>13} {:>13} {:>13} {:>13}",
        "T (K)", "mean (A)", "std (A)", "95% budget", "99% budget"
    );
    let mut budget_25c = 0.0;
    for kelvin in [248.0, 300.0, 348.0, 398.0] {
        // Each corner needs its own characterization: the subthreshold
        // slope scales with kT/q, so leakage rises steeply with T.
        let tech = Technology::cmos90().with_temperature(kelvin)?;
        let charlib =
            Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
        let chars = HighLevelCharacteristics::builder()
            .histogram(hist.clone())
            .n_cells(100_000)
            .die_dimensions(1_000.0, 1_000.0)
            .build()?;
        let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?
            .with_vt_correction(&tech)
            .estimate_polar_1d()?;
        let dist = LeakageDistribution::from_estimate(&est)?;
        println!(
            "{kelvin:>8} {:>13.4e} {:>13.4e} {:>13.4e} {:>13.4e}",
            est.mean,
            est.std(),
            dist.quantile(0.95),
            dist.quantile(0.99)
        );
        if kelvin == 300.0 {
            budget_25c = dist.quantile(0.95);
        }
    }

    // What fraction of dies stays within the room-temperature budget at
    // the hot corner?
    let tech = Technology::cmos90().with_temperature(398.0)?;
    let charlib = Characterizer::new(&tech).characterize_library(&lib, CharMethod::default())?;
    let chars = HighLevelCharacteristics::builder()
        .histogram(hist)
        .n_cells(100_000)
        .die_dimensions(1_000.0, 1_000.0)
        .build()?;
    let est = ChipLeakageEstimator::new(&charlib, &tech, chars, &wid)?
        .with_vt_correction(&tech)
        .estimate_polar_1d()?;
    let dist = LeakageDistribution::from_estimate(&est)?;
    println!(
        "\nyield at 398 K against the 300 K 95% budget ({budget_25c:.3e} A): {:.2}%",
        dist.yield_at(budget_25c) * 100.0
    );
    Ok(())
}
